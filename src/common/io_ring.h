// Minimal io_uring wrapper over the raw syscalls (the toolchain image
// ships no liburing). Two consumers:
//   - net/event_engine.cc runs the server's readiness loop on poll SQEs,
//   - mindex/storage.cc batches segment reads in DiskStorage::FetchMany.
// Both only need a small slice of io_uring: batched SQE preparation, one
// submit-and-wait entry point, and completion reaping — which is exactly
// what this class exposes. Single-threaded by design: one IoRing belongs
// to one owner thread (the event loop, or the FetchMany caller under the
// storage lock); there is no internal locking.
//
// Creation probes the kernel: io_uring_setup fails with ENOSYS on old
// kernels and EPERM in seccomp-restricted containers, and callers are
// expected to fall back to their portable path (epoll / pread).

#ifndef SIMCLOUD_COMMON_IO_RING_H_
#define SIMCLOUD_COMMON_IO_RING_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"

struct io_uring_sqe;  // <linux/io_uring.h>, kept out of this header

namespace simcloud {

/// One io_uring instance: SQ/CQ rings plus the SQE array, mmap'd.
class IoRing {
 public:
  /// One reaped completion.
  struct Cqe {
    uint64_t user_data = 0;
    int32_t res = 0;    ///< result (negated errno on failure)
    uint32_t flags = 0; ///< IORING_CQE_F_* bits
  };

  /// Sets up a ring with `entries` SQ slots (rounded up by the kernel).
  /// Fails on kernels/sandboxes without io_uring — callers fall back.
  static Result<std::unique_ptr<IoRing>> Create(unsigned entries);
  ~IoRing();

  IoRing(const IoRing&) = delete;
  IoRing& operator=(const IoRing&) = delete;

  /// SQE preparation. Each returns false when the submission queue is
  /// full — submit first, then retry.
  bool PrepPollAdd(int fd, uint32_t poll_mask, uint64_t user_data,
                   bool multishot);
  /// Cancels the pending poll whose user_data is `target_user_data`.
  bool PrepPollRemove(uint64_t target_user_data, uint64_t user_data);
  bool PrepRead(int fd, void* buf, uint32_t len, uint64_t file_offset,
                uint64_t user_data);

  /// Submits every prepared SQE without waiting.
  Status Submit();
  /// Submits, then blocks until at least `min_complete` completions are
  /// available (or a pending one already is).
  Status SubmitAndWait(unsigned min_complete);

  /// Reaps every available completion into `out` (appended); returns the
  /// number reaped. Never blocks.
  size_t DrainCompletions(std::vector<Cqe>* out);

  /// Free SQ slots right now.
  unsigned SqSpaceLeft() const;

 private:
  IoRing() = default;
  /// Claims the next free SQE slot (zeroed), or nullptr when full.
  struct io_uring_sqe* NextSqe();

  int ring_fd_ = -1;
  unsigned sq_entries_ = 0;
  unsigned cq_entries_ = 0;

  // SQ ring mapping.
  void* sq_ring_ = nullptr;
  size_t sq_ring_bytes_ = 0;
  unsigned* sq_head_ = nullptr;    // kernel-written consumer head
  unsigned* sq_tail_ = nullptr;    // our producer tail (release-stored)
  unsigned sq_mask_ = 0;
  unsigned* sq_array_ = nullptr;
  struct io_uring_sqe* sqes_ = nullptr;
  size_t sqes_bytes_ = 0;

  // CQ ring mapping (may alias sq_ring_ with IORING_FEAT_SINGLE_MMAP).
  void* cq_ring_ = nullptr;
  size_t cq_ring_bytes_ = 0;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  void* cqes_ = nullptr;

  unsigned local_sq_tail_ = 0;  // SQEs prepared, not yet visible to kernel
  unsigned to_submit_ = 0;      // prepared since the last io_uring_enter
};

}  // namespace simcloud

#endif  // SIMCLOUD_COMMON_IO_RING_H_
