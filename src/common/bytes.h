// Byte-buffer type and hex helpers used throughout simcloud.

#ifndef SIMCLOUD_COMMON_BYTES_H_
#define SIMCLOUD_COMMON_BYTES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace simcloud {

/// Owned mutable byte sequence (ciphertexts, wire messages, serialized
/// objects). A plain vector keeps interop with <algorithm> and iterators.
using Bytes = std::vector<uint8_t>;

/// Encodes `data` as a lowercase hex string ("deadbeef").
std::string ToHex(const Bytes& data);
/// Encodes `len` bytes at `data` as a lowercase hex string.
std::string ToHex(const uint8_t* data, size_t len);

/// Decodes a hex string (case-insensitive, even length) into bytes.
Result<Bytes> FromHex(const std::string& hex);

/// Constant-time byte-sequence comparison (for MAC verification).
/// Returns true iff `a` and `b` have equal length and contents.
bool ConstantTimeEquals(const Bytes& a, const Bytes& b);

/// Overwrites `data`'s contents with zeros through a volatile pointer
/// (so the store cannot be optimized away) and then clears the buffer.
/// Key-holding types call this from their destructors and move
/// operations so key material does not linger in freed heap memory.
void WipeBytes(Bytes* data);

}  // namespace simcloud

#endif  // SIMCLOUD_COMMON_BYTES_H_
