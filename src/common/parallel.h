// Minimal fork-join loop for the query engine's batch evaluation.
//
// ParallelFor runs fn(0) .. fn(n-1) across a small set of workers with
// dynamic index claiming (an atomic counter, so uneven per-index cost —
// one query hitting a dense tree region while another prunes instantly —
// balances itself). The caller's thread participates as one worker and
// the spawned threads are joined before returning: no work escapes the
// call, which is what makes it safe to parallelize const query paths
// under the index's reader lock.

#ifndef SIMCLOUD_COMMON_PARALLEL_H_
#define SIMCLOUD_COMMON_PARALLEL_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"

namespace simcloud {

/// Runs `fn(i)` for every i in [0, n) using up to `threads` workers
/// (including the calling thread). `threads <= 1` or `n <= 1` degrades to
/// the plain serial loop — same calls, same order, zero threading cost.
///
/// `fn` must be safe to call concurrently for distinct indices. On
/// failure the error with the smallest index is returned; indices not
/// yet claimed when a failure is observed may be skipped (like the
/// serial loop, which stops at the first error).
template <typename Fn>
Status ParallelFor(int threads, size_t n, Fn&& fn) {
  if (threads <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) {
      SIMCLOUD_RETURN_NOT_OK(fn(i));
    }
    return Status::OK();
  }

  const size_t workers =
      std::min(static_cast<size_t>(threads), n);
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::vector<Status> errors(n, Status::OK());

  auto work = [&]() {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || failed.load(std::memory_order_relaxed)) return;
      Status status = fn(i);
      if (!status.ok()) {
        errors[i] = std::move(status);
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (size_t t = 0; t + 1 < workers; ++t) pool.emplace_back(work);
  work();
  for (std::thread& thread : pool) thread.join();

  if (failed.load(std::memory_order_relaxed)) {
    for (Status& error : errors) {
      if (!error.ok()) return std::move(error);
    }
  }
  return Status::OK();
}

}  // namespace simcloud

#endif  // SIMCLOUD_COMMON_PARALLEL_H_
