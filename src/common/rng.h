// Deterministic pseudo-random number generation for data synthesis and
// reproducible experiments.
//
// All simcloud experiments are seeded; given the same seed the synthetic
// data sets, pivot selection, and query workloads are bit-identical across
// runs and platforms (no dependence on std::mt19937 distribution quirks).

#ifndef SIMCLOUD_COMMON_RNG_H_
#define SIMCLOUD_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace simcloud {

/// xoshiro256** PRNG (Blackman & Vigna) seeded via splitmix64.
/// Fast, high-quality, and fully deterministic across platforms.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t seed) { Seed(seed); }

  /// Re-seeds the generator.
  void Seed(uint64_t seed);

  /// Next 64 uniformly random bits.
  uint64_t NextU64();

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  /// bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float NextFloat() {
    return static_cast<float>(NextU64() >> 40) * 0x1.0p-24f;
  }

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal sample (Marsaglia polar method, cached pair).
  double NextGaussian();

  /// Normal sample with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Exponential sample with the given rate lambda (> 0).
  double NextExponential(double lambda) {
    return -std::log(1.0 - NextDouble()) / lambda;
  }

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace simcloud

#endif  // SIMCLOUD_COMMON_RNG_H_
