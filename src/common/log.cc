#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace simcloud {

namespace {
LogLevel InitialLevel() {
  const char* env = std::getenv("SIMCLOUD_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "ERROR") == 0) return LogLevel::kError;
  if (std::strcmp(env, "WARN") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "INFO") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "DEBUG") == 0) return LogLevel::kDebug;
  return LogLevel::kWarn;
}

std::atomic<int> g_level{static_cast<int>(InitialLevel())};
std::mutex g_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void LogMessage(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) > g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[simcloud %s] %s\n", LevelName(level), msg.c_str());
}

}  // namespace simcloud
