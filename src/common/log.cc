#include "common/log.h"

#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace simcloud {

namespace {

/// Kernel thread id; cheaper and shorter than std::this_thread::get_id()
/// and matches what strace/perf report. Cached — gettid is a syscall.
long ThisThreadId() {
  static thread_local const long tid =
      static_cast<long>(::syscall(SYS_gettid));
  return tid;
}

/// Monotonic seconds since process start (first call), so concurrent
/// lines sort by time and restarts restart the clock.
double MonotonicSeconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

LogLevel InitialLevel() {
  const char* env = std::getenv("SIMCLOUD_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "ERROR") == 0) return LogLevel::kError;
  if (std::strcmp(env, "WARN") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "INFO") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "DEBUG") == 0) return LogLevel::kDebug;
  // Warn (at the default threshold, so it is visible) rather than
  // silently downgrading a typo like SIMCLOUD_LOG_LEVEL=debug.
  char warning[160];
  const int warning_len = std::snprintf(
      warning, sizeof(warning),
      "[simcloud %.6f WARN t%ld] invalid SIMCLOUD_LOG_LEVEL=\"%s\" "
      "(want ERROR|WARN|INFO|DEBUG); defaulting to WARN\n",
      MonotonicSeconds(), ThisThreadId(), env);
  if (warning_len > 0) {
    ssize_t ignored = ::write(STDERR_FILENO, warning,
                              static_cast<size_t>(warning_len) <
                                      sizeof(warning)
                                  ? static_cast<size_t>(warning_len)
                                  : sizeof(warning) - 1);
    (void)ignored;
  }
  return LogLevel::kWarn;
}

std::atomic<int> g_level{static_cast<int>(InitialLevel())};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void LogMessage(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) > g_level.load(std::memory_order_relaxed)) return;
  // One write() per line: POSIX makes the whole buffer a single atomic
  // append for pipes/regular files within PIPE_BUF-ish sizes, so
  // concurrent threads never interleave partial lines the way the old
  // mutex-less fprintf path could across processes sharing stderr.
  char prefix[96];
  int prefix_len =
      std::snprintf(prefix, sizeof(prefix), "[simcloud %.6f %s t%ld] ",
                    MonotonicSeconds(), LevelName(level), ThisThreadId());
  if (prefix_len < 0) prefix_len = 0;
  if (static_cast<size_t>(prefix_len) >= sizeof(prefix)) {
    prefix_len = sizeof(prefix) - 1;
  }
  std::string line;
  line.reserve(static_cast<size_t>(prefix_len) + msg.size() + 1);
  line.append(prefix, static_cast<size_t>(prefix_len));
  line.append(msg);
  line.push_back('\n');
  ssize_t ignored = ::write(STDERR_FILENO, line.data(), line.size());
  (void)ignored;
}

}  // namespace simcloud
