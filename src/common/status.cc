#include "common/status.h"

namespace simcloud {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kIoError: return "IoError";
    case StatusCode::kNotSupported: return "NotSupported";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kPermissionDenied: return "PermissionDenied";
    case StatusCode::kNetworkError: return "NetworkError";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace simcloud
