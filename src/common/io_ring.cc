#include "common/io_ring.h"

#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace simcloud {

namespace {

int SysIoUringSetup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int SysIoUringEnter(int ring_fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

template <typename T>
T* RingPtr(void* base, uint32_t offset) {
  return reinterpret_cast<T*>(static_cast<uint8_t*>(base) + offset);
}

}  // namespace

Result<std::unique_ptr<IoRing>> IoRing::Create(unsigned entries) {
  io_uring_params params;
  std::memset(&params, 0, sizeof(params));
  const int ring_fd = SysIoUringSetup(entries, &params);
  if (ring_fd < 0) {
    return Status::NotSupported(std::string("io_uring_setup failed: ") +
                               std::strerror(errno));
  }

  auto ring = std::unique_ptr<IoRing>(new IoRing());
  ring->ring_fd_ = ring_fd;
  ring->sq_entries_ = params.sq_entries;
  ring->cq_entries_ = params.cq_entries;

  size_t sq_bytes =
      params.sq_off.array + params.sq_entries * sizeof(unsigned);
  size_t cq_bytes =
      params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
  const bool single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap) {
    sq_bytes = cq_bytes = sq_bytes > cq_bytes ? sq_bytes : cq_bytes;
  }

  ring->sq_ring_ = ::mmap(nullptr, sq_bytes, PROT_READ | PROT_WRITE,
                          MAP_SHARED | MAP_POPULATE, ring_fd,
                          IORING_OFF_SQ_RING);
  if (ring->sq_ring_ == MAP_FAILED) {
    ring->sq_ring_ = nullptr;
    return Status::NotSupported(std::string("io_uring SQ mmap failed: ") +
                               std::strerror(errno));
  }
  ring->sq_ring_bytes_ = sq_bytes;

  if (single_mmap) {
    ring->cq_ring_ = ring->sq_ring_;
    ring->cq_ring_bytes_ = 0;  // owned by the SQ mapping
  } else {
    ring->cq_ring_ = ::mmap(nullptr, cq_bytes, PROT_READ | PROT_WRITE,
                            MAP_SHARED | MAP_POPULATE, ring_fd,
                            IORING_OFF_CQ_RING);
    if (ring->cq_ring_ == MAP_FAILED) {
      ring->cq_ring_ = nullptr;
      return Status::NotSupported(std::string("io_uring CQ mmap failed: ") +
                                 std::strerror(errno));
    }
    ring->cq_ring_bytes_ = cq_bytes;
  }

  ring->sqes_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
  void* sqes = ::mmap(nullptr, ring->sqes_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_SQES);
  if (sqes == MAP_FAILED) {
    return Status::NotSupported(std::string("io_uring SQE mmap failed: ") +
                               std::strerror(errno));
  }
  ring->sqes_ = static_cast<io_uring_sqe*>(sqes);

  ring->sq_head_ = RingPtr<unsigned>(ring->sq_ring_, params.sq_off.head);
  ring->sq_tail_ = RingPtr<unsigned>(ring->sq_ring_, params.sq_off.tail);
  ring->sq_mask_ =
      *RingPtr<unsigned>(ring->sq_ring_, params.sq_off.ring_mask);
  ring->sq_array_ = RingPtr<unsigned>(ring->sq_ring_, params.sq_off.array);
  ring->cq_head_ = RingPtr<unsigned>(ring->cq_ring_, params.cq_off.head);
  ring->cq_tail_ = RingPtr<unsigned>(ring->cq_ring_, params.cq_off.tail);
  ring->cq_mask_ =
      *RingPtr<unsigned>(ring->cq_ring_, params.cq_off.ring_mask);
  ring->cqes_ = RingPtr<io_uring_cqe>(ring->cq_ring_, params.cq_off.cqes);
  ring->local_sq_tail_ = *ring->sq_tail_;
  return ring;
}

IoRing::~IoRing() {
  if (sqes_ != nullptr) ::munmap(sqes_, sqes_bytes_);
  if (cq_ring_ != nullptr && cq_ring_ != sq_ring_) {
    ::munmap(cq_ring_, cq_ring_bytes_);
  }
  if (sq_ring_ != nullptr) ::munmap(sq_ring_, sq_ring_bytes_);
  if (ring_fd_ >= 0) ::close(ring_fd_);
}

unsigned IoRing::SqSpaceLeft() const {
  const unsigned head = __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
  return sq_entries_ - (local_sq_tail_ - head);
}

io_uring_sqe* IoRing::NextSqe() {
  if (SqSpaceLeft() == 0) return nullptr;
  const unsigned index = local_sq_tail_ & sq_mask_;
  io_uring_sqe* sqe = &sqes_[index];
  std::memset(sqe, 0, sizeof(*sqe));
  sq_array_[index] = index;
  ++local_sq_tail_;
  ++to_submit_;
  return sqe;
}

bool IoRing::PrepPollAdd(int fd, uint32_t poll_mask, uint64_t user_data,
                         bool multishot) {
  io_uring_sqe* sqe = NextSqe();
  if (sqe == nullptr) return false;
  sqe->opcode = IORING_OP_POLL_ADD;
  sqe->fd = fd;
  sqe->poll32_events = poll_mask;  // x86 is little-endian: no word swap
  if (multishot) sqe->len = IORING_POLL_ADD_MULTI;
  sqe->user_data = user_data;
  return true;
}

bool IoRing::PrepPollRemove(uint64_t target_user_data, uint64_t user_data) {
  io_uring_sqe* sqe = NextSqe();
  if (sqe == nullptr) return false;
  sqe->opcode = IORING_OP_POLL_REMOVE;
  sqe->fd = -1;
  sqe->addr = target_user_data;
  sqe->user_data = user_data;
  return true;
}

bool IoRing::PrepRead(int fd, void* buf, uint32_t len, uint64_t file_offset,
                      uint64_t user_data) {
  io_uring_sqe* sqe = NextSqe();
  if (sqe == nullptr) return false;
  sqe->opcode = IORING_OP_READ;
  sqe->fd = fd;
  sqe->addr = reinterpret_cast<uint64_t>(buf);
  sqe->len = len;
  sqe->off = file_offset;
  sqe->user_data = user_data;
  return true;
}

Status IoRing::Submit() { return SubmitAndWait(0); }

Status IoRing::SubmitAndWait(unsigned min_complete) {
  // Publish prepared SQEs to the kernel before entering.
  __atomic_store_n(sq_tail_, local_sq_tail_, __ATOMIC_RELEASE);
  const unsigned to_submit = to_submit_;
  to_submit_ = 0;
  for (;;) {
    const int n = SysIoUringEnter(
        ring_fd_, to_submit, min_complete,
        min_complete > 0 ? IORING_ENTER_GETEVENTS : 0);
    if (n < 0) {
      if (errno == EINTR) {
        // Submission may have partially happened only on success; with
        // EINTR nothing was consumed — retry the identical call.
        continue;
      }
      return Status::Internal(std::string("io_uring_enter failed: ") +
                              std::strerror(errno));
    }
    // The kernel consumes all `to_submit` SQEs on success (no SQPOLL).
    return Status::OK();
  }
}

size_t IoRing::DrainCompletions(std::vector<Cqe>* out) {
  unsigned head = *cq_head_;  // we are the only consumer
  const unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
  size_t reaped = 0;
  while (head != tail) {
    const io_uring_cqe* cqe =
        &static_cast<const io_uring_cqe*>(cqes_)[head & cq_mask_];
    out->push_back(Cqe{cqe->user_data, cqe->res, cqe->flags});
    ++head;
    ++reaped;
  }
  __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
  return reaped;
}

}  // namespace simcloud
