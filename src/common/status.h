// Status / Result error-handling primitives for simcloud.
//
// The library does not throw exceptions across public API boundaries;
// recoverable failures are reported through Status (for void operations)
// and Result<T> (for value-returning operations), in the style of
// RocksDB's rocksdb::Status and Arrow's arrow::Result.

#ifndef SIMCLOUD_COMMON_STATUS_H_
#define SIMCLOUD_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace simcloud {

/// Error category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller passed a malformed or out-of-range value.
  kNotFound = 2,          ///< Requested entity does not exist.
  kAlreadyExists = 3,     ///< Entity with the same identity already present.
  kOutOfRange = 4,        ///< Index/offset beyond the valid range.
  kCorruption = 5,        ///< Stored or received bytes failed validation.
  kIoError = 6,           ///< Filesystem or socket operation failed.
  kNotSupported = 7,      ///< Operation not implemented for this configuration.
  kFailedPrecondition = 8,///< Object not in the required state.
  kPermissionDenied = 9,  ///< Caller lacks the secret key / authorization.
  kNetworkError = 10,     ///< Transport-level failure (framing, disconnect).
  kInternal = 11,         ///< Invariant violation inside the library.
  kDeadlineExceeded = 12, ///< Bounded wait expired before completion.
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Outcome of an operation: OK, or an error code plus a message.
///
/// Cheap to copy in the OK case (no allocation); error states carry a
/// message string describing the failure.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status NetworkError(std::string msg) {
    return Status(StatusCode::kNetworkError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Never both.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status. `status.ok()` is forbidden.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the contained value; precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

}  // namespace simcloud

/// Propagates a non-OK Status from an expression (RocksDB-style).
#define SIMCLOUD_RETURN_NOT_OK(expr)                  \
  do {                                                \
    ::simcloud::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                        \
  } while (false)

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define SIMCLOUD_ASSIGN_OR_RETURN(lhs, expr)          \
  auto SIMCLOUD_CONCAT_(res_, __LINE__) = (expr);     \
  if (!SIMCLOUD_CONCAT_(res_, __LINE__).ok())         \
    return SIMCLOUD_CONCAT_(res_, __LINE__).status(); \
  lhs = std::move(SIMCLOUD_CONCAT_(res_, __LINE__)).value()

#define SIMCLOUD_CONCAT_IMPL_(a, b) a##b
#define SIMCLOUD_CONCAT_(a, b) SIMCLOUD_CONCAT_IMPL_(a, b)

#endif  // SIMCLOUD_COMMON_STATUS_H_
