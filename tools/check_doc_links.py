#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation surface.

Walks every tracked .md file (top-level docs, docs/, module READMEs),
extracts inline links, and verifies that every RELATIVE link points at a
file or directory that actually exists. External links (http/https/
mailto) are not fetched — CI must not depend on the network — and pure
anchors (#section) are skipped.

Exit status 0 when every link resolves, 1 otherwise (listing the
offenders), so ci.sh can gate on it.
"""

import os
import re
import sys

# Inline markdown links: [text](target). Reference-style links are not
# used in this repo. Images share the syntax via a leading "!".
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

SKIP_DIRS = {".git", "build", "build-asan", "build-tsan", ".claude"}


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(path, root):
    failures = []
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    # Strip fenced code blocks: ASCII diagrams and example snippets are
    # not navigation.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target = target.split("#", 1)[0]
        if not target:  # pure anchor into the same document
            continue
        base = root if target.startswith("/") else os.path.dirname(path)
        resolved = os.path.normpath(os.path.join(base, target.lstrip("/")))
        if not os.path.exists(resolved):
            failures.append((target, resolved))
    return failures


def main():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    bad = 0
    checked = 0
    for path in sorted(markdown_files(root)):
        checked += 1
        for target, resolved in check_file(path, root):
            print(f"BROKEN LINK in {os.path.relpath(path, root)}: "
                  f"({target}) -> {os.path.relpath(resolved, root)}")
            bad += 1
    print(f"checked {checked} markdown files: "
          f"{'OK' if bad == 0 else f'{bad} broken links'}")
    return 0 if bad == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
