#!/usr/bin/env python3
"""Generates a transport pre-shared key for the secure channel.

Deployments whose clients hold the index secret key derive the PSK with
SecretKey::DeriveChannelKey() and never need this tool. Deployments that
provision the server out of band (or run plaintext payloads with channel
security only) can generate a fresh 32-byte PSK here and hand the hex
string to both TcpServerOptions::secure_channel.psk and the clients'
SecureChannelOptions (simcloud::FromHex decodes it).

Usage: gen_psk.py [num_bytes]   (default 32, minimum 16)
"""

import os
import sys


def main() -> int:
    num_bytes = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    if num_bytes < 16:
        print("a secure-channel PSK must be at least 16 bytes",
              file=sys.stderr)
        return 1
    print(os.urandom(num_bytes).hex())
    return 0


if __name__ == "__main__":
    sys.exit(main())
