#!/usr/bin/env python3
"""Spawn a local shard cluster for ShardedServer failover experiments.

Launches ``shards x replicas`` copies of ``example_shard_server`` on
OS-assigned ports, scrapes each child's "listening on" line, and prints
the replica-set layout to paste into ``ShardedServer::Connect``. Runs
until Ctrl-C, then tears every child down.

Kill an individual replica mid-run (``kill <pid>``) to watch the
topology monitor degrade it, reroute reads, and — once you restart a
server on the same port — replay the writes it missed.

Usage:
  tools/run_replicas.py [--shards 3] [--replicas 2] [--pivots 16]
                        [--binary build/example_shard_server]
                        [--policy plain|secure] [--psk-hex HEX]
"""

import argparse
import signal
import subprocess
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument("--pivots", type=int, default=16)
    parser.add_argument("--binary", default="build/example_shard_server")
    parser.add_argument("--policy", default="plain",
                        choices=["plain", "secure"])
    parser.add_argument("--psk-hex", default="",
                        help="32-byte hex PSK; required with --policy secure")
    args = parser.parse_args()
    # SIGTERM tears the cluster down the same way Ctrl-C does.
    signal.signal(signal.SIGTERM,
                  lambda *_: (_ for _ in ()).throw(KeyboardInterrupt))
    if args.policy == "secure" and len(args.psk_hex) != 64:
        parser.error("--policy secure needs --psk-hex with 64 hex chars "
                     "(tools/gen_psk.py makes one)")

    children = []
    layout = []  # layout[shard] = [(endpoint, pid), ...]
    try:
        for shard in range(args.shards):
            replica_set = []
            for replica in range(args.replicas):
                cmd = [args.binary, "--port", "0",
                       "--pivots", str(args.pivots),
                       "--policy", args.policy]
                if args.policy == "secure":
                    cmd += ["--psk-hex", args.psk_hex]
                child = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                                         text=True)
                children.append(child)
                line = child.stdout.readline().strip()
                marker = "listening on "
                if marker not in line:
                    print(f"child failed to start: {line!r}", file=sys.stderr)
                    return 1
                endpoint = line.split(marker, 1)[1].split()[0]
                replica_set.append((endpoint, child.pid))
            layout.append(replica_set)

        print(f"{args.shards} shards x {args.replicas} replicas "
              f"({args.policy} wire):")
        for shard, replica_set in enumerate(layout):
            slots = ", ".join(f"{ep} (pid {pid})" for ep, pid in replica_set)
            print(f"  shard {shard}: {slots}")
        print("replica_sets for ShardedServer::Connect:")
        for shard, replica_set in enumerate(layout):
            cells = ", ".join('{"127.0.0.1", %s}' % ep.rsplit(":", 1)[1]
                              for ep, _ in replica_set)
            print(f"  {{{cells}}},")
        print("Ctrl-C stops the cluster; kill a pid to exercise failover.")
        signal.pause()
    except KeyboardInterrupt:
        pass
    finally:
        for child in children:
            if child.poll() is None:
                child.terminate()
        for child in children:
            try:
                child.wait(timeout=5)
            except subprocess.TimeoutExpired:
                child.kill()
    print("cluster stopped")
    return 0


if __name__ == "__main__":
    sys.exit(main())
