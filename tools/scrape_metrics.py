#!/usr/bin/env python3
"""Scrape a simcloud server's metrics registry as Prometheus text.

Speaks the plaintext pipelined framing directly (kGetMetrics refuses
legacy framing), decodes the append-only metrics block, and prints the
same exposition format ``MetricsSnapshot::ToPrometheusText`` produces —
so a textfile-collector cron line is all it takes to feed a cluster
started by ``tools/run_replicas.py`` into Prometheus.

With several endpoints each scrape is prefixed with an ``instance``
label so per-shard series stay distinguishable; ``--merge`` instead
sums counters/gauges and merges histograms bucket-wise (the same
aggregation a ShardedServer facade answers for kGetMetrics).

Secure-channel (``--policy secure``) endpoints are not supported: the
handshake and AEAD record layer live in the C++ client. Scrape the
facade's plaintext listener, or run ``example_shard_server`` with a
plaintext sidecar port.

Usage:
  tools/scrape_metrics.py HOST:PORT [HOST:PORT ...] [--merge]
"""

import argparse
import socket
import struct
import sys

FRAME_ID_FLAG = 0x80000000
OP_GET_METRICS = 16
HISTOGRAM_BUCKET_COUNT = 4 + 62 * 4
UINT64_MAX = (1 << 64) - 1


def write_varint(value: int) -> bytes:
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


class Reader:
    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def remaining(self) -> int:
        return len(self.data) - self.pos

    def read(self, n: int) -> bytes:
        if self.remaining() < n:
            raise ValueError("truncated metrics block")
        chunk = self.data[self.pos:self.pos + n]
        self.pos += n
        return chunk

    def read_varint(self) -> int:
        value = 0
        shift = 0
        while True:
            (byte,) = self.read(1)
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift >= 70:
                raise ValueError("varint too long")

    def read_string(self) -> str:
        return self.read(self.read_varint()).decode("utf-8")


def recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionError("server closed the connection")
        buf.extend(chunk)
    return bytes(buf)


def call_get_metrics(host: str, port: int, timeout_s: float) -> bytes:
    """One pipelined kGetMetrics round trip; returns the response body."""
    body = bytes([OP_GET_METRICS])
    frame = struct.pack("<II", len(body) | FRAME_ID_FLAG, 1) + body
    with socket.create_connection((host, port), timeout=timeout_s) as sock:
        sock.sendall(frame)
        (raw,) = struct.unpack("<I", recv_exact(sock, 4))
        if not raw & FRAME_ID_FLAG:
            raise ValueError("server answered with legacy framing")
        recv_exact(sock, 4)  # request id (always 1 here)
        payload = recv_exact(sock, raw & ~FRAME_ID_FLAG)
    reader = Reader(payload)
    reader.read(8)  # server_nanos
    (ok,) = reader.read(1)
    if not ok:
        raise ValueError("server error: " + reader.read_string())
    return reader.data[reader.pos:]


def unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def decode_snapshot(block: bytes):
    """Decodes the wire block into (counters, gauges, histograms).

    counters: {name: int}; gauges: {name: int};
    histograms: {name: (sum, [(bucket_index, count), ...])}.
    Trailing bytes are ignored — the block is append-only.
    """
    reader = Reader(block)
    counters = {}
    for _ in range(reader.read_varint()):
        name = reader.read_string()
        counters[name] = counters.get(name, 0) + reader.read_varint()
    gauges = {}
    for _ in range(reader.read_varint()):
        name = reader.read_string()
        gauges[name] = gauges.get(name, 0) + unzigzag(reader.read_varint())
    histograms = {}
    for _ in range(reader.read_varint()):
        name = reader.read_string()
        total = reader.read_varint()
        buckets = []
        for _ in range(reader.read_varint()):
            index = reader.read_varint()
            count = reader.read_varint()
            if index >= HISTOGRAM_BUCKET_COUNT:
                raise ValueError(f"bucket index {index} out of range")
            if buckets and index <= buckets[-1][0]:
                raise ValueError("bucket indices not ascending")
            buckets.append((index, count))
        histograms[name] = (total, buckets)
    return counters, gauges, histograms


def merge_histogram(into, entry):
    """Bucket-wise merge on the shared log grid (sums add, counts add)."""
    total, buckets = entry
    if into is None:
        return (total, list(buckets))
    merged = dict(into[1])
    for index, count in buckets:
        merged[index] = merged.get(index, 0) + count
    return (into[0] + total, sorted(merged.items()))


def bucket_lower_bound(index: int) -> int:
    if index < 4:
        return index
    exponent = 2 + (index - 4) // 4
    return (1 << exponent) + ((index - 4) % 4) * (1 << (exponent - 2))


def bucket_upper_bound(index: int) -> int:
    if index + 1 >= HISTOGRAM_BUCKET_COUNT:
        return UINT64_MAX
    return bucket_lower_bound(index + 1)


def split_labels(name: str):
    brace = name.find("{")
    if brace < 0 or not name.endswith("}"):
        return name, ""
    return name[:brace], name[brace + 1:-1]


def with_instance(name: str, instance: str) -> str:
    if not instance:
        return name
    base, labels = split_labels(name)
    tag = f'instance="{instance}"'
    return f"{base}{{{tag},{labels}}}" if labels else f"{base}{{{tag}}}"


def to_prometheus_text(counters, gauges, histograms) -> str:
    out = []
    last_base = None
    for name in sorted(counters):
        base, _ = split_labels(name)
        if base != last_base:
            out.append(f"# TYPE {base} counter")
            last_base = base
        out.append(f"{name} {counters[name]}")
    last_base = None
    for name in sorted(gauges):
        base, _ = split_labels(name)
        if base != last_base:
            out.append(f"# TYPE {base} gauge")
            last_base = base
        out.append(f"{name} {gauges[name]}")
    last_base = None
    for name in sorted(histograms):
        base, labels = split_labels(name)
        if base != last_base:
            out.append(f"# TYPE {base} histogram")
            last_base = base
        total, buckets = histograms[name]
        prefix = labels + "," if labels else ""
        cumulative = 0
        count = 0
        for index, bucket_count in buckets:
            cumulative += bucket_count
            count += bucket_count
            out.append(f'{base}_bucket{{{prefix}le="'
                       f'{bucket_upper_bound(index)}"}} {cumulative}')
        out.append(f'{base}_bucket{{{prefix}le="+Inf"}} {count}')
        block = "{" + labels + "}" if labels else ""
        out.append(f"{base}_sum{block} {total}")
        out.append(f"{base}_count{block} {count}")
    return "\n".join(out) + "\n" if out else ""


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("endpoints", nargs="+", metavar="HOST:PORT")
    parser.add_argument("--merge", action="store_true",
                        help="sum counters/gauges and merge histograms "
                             "bucket-wise instead of labelling per "
                             "instance")
    parser.add_argument("--timeout-s", type=float, default=5.0)
    args = parser.parse_args()

    counters, gauges, histograms = {}, {}, {}
    for endpoint in args.endpoints:
        host, _, port = endpoint.rpartition(":")
        if not host or not port.isdigit():
            print(f"bad endpoint {endpoint!r} (want HOST:PORT)",
                  file=sys.stderr)
            return 2
        try:
            block = call_get_metrics(host, int(port), args.timeout_s)
            shard_counters, shard_gauges, shard_histograms = \
                decode_snapshot(block)
        except (OSError, ValueError) as error:
            print(f"scrape of {endpoint} failed: {error}", file=sys.stderr)
            return 1
        instance = "" if args.merge or len(args.endpoints) == 1 else endpoint
        for name, value in shard_counters.items():
            key = with_instance(name, instance)
            counters[key] = counters.get(key, 0) + value
        for name, value in shard_gauges.items():
            key = with_instance(name, instance)
            gauges[key] = gauges.get(key, 0) + value
        for name, entry in shard_histograms.items():
            key = with_instance(name, instance)
            histograms[key] = merge_histogram(histograms.get(key), entry)

    sys.stdout.write(to_prometheus_text(counters, gauges, histograms))
    return 0


if __name__ == "__main__":
    sys.exit(main())
