#!/usr/bin/env bash
# Local CI: the tier-1 verify command plus benchmark smoke runs.
# Mirrors .github/workflows/ci.yml so the same gate runs everywhere.
#
# Usage: ci.sh [--asan|--tsan|--scalar-crypto]
#   --asan  build and run the test suite under AddressSanitizer (separate
#           build tree; the churn/compaction soak tests are where lifetime
#           bugs in payload-handle remapping would hide). Skips the bench
#           smoke runs — sanitized timings are meaningless.
#   --tsan  build under ThreadSanitizer and run the concurrency-facing
#           suites (epoll/io_uring engines, pipelined clients, shard
#           channels, the parallel query-engine fan-out, stats
#           accumulators). TSan multiplies runtime ~10x, so the purely
#           single-threaded suites are skipped.
#   --scalar-crypto  run the full test battery with
#           SIMCLOUD_FORCE_SCALAR_CRYPTO=1: every AES/SHA byte on the
#           scalar reference kernels, regardless of what the silicon
#           offers. Reuses the regular build tree.
set -euo pipefail
cd "$(dirname "$0")"

if [ "${1:-}" = "--asan" ]; then
  echo "=== configure + build (AddressSanitizer) ==="
  cmake -B build-asan -S . -DSIMCLOUD_SANITIZE=address
  cmake --build build-asan -j "$(nproc)"

  echo "=== tier-1 tests under ASan ==="
  ctest --test-dir build-asan --output-on-failure -j "$(nproc)" --timeout 300
  echo "CI (asan) OK"
  exit 0
fi

if [ "${1:-}" = "--tsan" ]; then
  echo "=== configure + build (ThreadSanitizer) ==="
  cmake -B build-tsan -S . -DSIMCLOUD_SANITIZE=thread
  cmake --build build-tsan -j "$(nproc)"

  echo "=== concurrency suites under TSan ==="
  # churn_test joined the list with the background compactor: its
  # ConcurrentChurnTest races mutator/query/admin threads against the
  # compaction thread, which is exactly TSan territory. secure_channel_test
  # joined with the secure channel: the epoll-loop handshake state machine
  # and the client transport's seal-under-write-lock / ingest-under-reader
  # split are race-checked here.
  # query_engine_test joined the list with the parallel batch paths: its
  # ParallelBatchTest suites run RangeSearchBatch/ApproxKnnBatch with
  # query_threads > 1, racing the fan-out workers over the shared cell
  # tree — the byte-identity assertion under TSan is the proof the
  # parallel schedule reads the tree without data races.
  # failover_test joined with the topology monitor: queriers, a churner,
  # the monitor thread and a replica kill/restart all race over the
  # replica channels, which is the exact surface TSan must sign off on.
  # watch_test joined with the change streams: the WatchHub delivery
  # thread races writers publishing under the index lock, push sinks on
  # the epoll loop, and the sharded facade's pump threads.
  # cursor_test joined with server-side cursors: the cursor table's
  # busy-checkout protocol races handler threads against the TTL sweep
  # and the disconnect reaper thread, and composite cursors pull shard
  # pages through the same channels the fan-out workers use.
  # obs_test joined with the metrics registry: its concurrency suite
  # hammers the thread-sharded counter/histogram cells from 8 writers
  # (exactness is the assertion; TSan proves the relaxed atomics carry
  # it), and its secure-cluster scrape races kGetMetrics snapshots
  # against live mutator/query traffic.
  ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
        --timeout 300 \
        -R 'net_test|pipeline_test|concurrency_test|sharded_test|fuzz_robustness_test|integration_test|churn_test|secure_channel_test|query_engine_test|failover_test|watch_test|cursor_test|obs_test'

  echo "=== churn + failover + watch soaks under TSan, secure channel policy ==="
  # The same soaks with every connection running the PSK handshake +
  # AEAD record layer (frequent rekeys included). failover_test under
  # `secure` additionally reconnects through the full handshake after
  # the replica kill, and watch_test seals every push frame in AEAD
  # records. Only these three read the env toggle; net_test pins
  # the plaintext wire and secure_channel_test/fuzz_robustness_test
  # cover secure intrinsically.
  SIMCLOUD_CHANNEL_POLICY=secure \
  ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
        --timeout 300 \
        -R 'pipeline_test|failover_test|watch_test|cursor_test|obs_test'
  echo "CI (tsan) OK"
  exit 0
fi

if [ "${1:-}" = "--scalar-crypto" ]; then
  echo "=== configure + build ==="
  cmake -B build -S .
  cmake --build build -j "$(nproc)"

  echo "=== full test battery, scalar crypto kernels forced ==="
  SIMCLOUD_FORCE_SCALAR_CRYPTO=1 \
  ctest --test-dir build --output-on-failure -j "$(nproc)" --timeout 300

  echo "=== bench smoke: crypto kernels (scalar dispatch) ==="
  SIMCLOUD_FORCE_SCALAR_CRYPTO=1 ./build/bench_crypto --smoke
  echo "CI (scalar-crypto) OK"
  exit 0
fi

echo "=== docs: markdown link check ==="
if command -v python3 >/dev/null 2>&1; then
  python3 tools/check_doc_links.py
else
  echo "python3 not available; skipped"
fi

echo "=== configure + build ==="
cmake -B build -S .
cmake --build build -j "$(nproc)"

echo "=== tier-1 tests ==="
ctest --test-dir build --output-on-failure -j "$(nproc)" --timeout 300

echo "=== channel-policy sweep: churn + failover + watch soaks in secure mode ==="
# These soaks run twice: the tier-1 pass above uses the plaintext wire
# (byte-identical to the original protocol); this pass flips them to
# ChannelPolicy::kSecure (PSK handshake + AEAD records on every
# connection, aggressive rekey budgets — failover_test's post-kill
# reconnects redo the full handshake, watch_test streams every push
# frame through sealed records). cursor_test joins the sweep so paged
# retrieval proves byte-identity with every page crossing an AEAD
# record boundary. The other transport suites
# need no toggle: net_test pins the plaintext wire byte-stable, while
# secure_channel_test / SecureTcpFrameFuzz / the secure remote-shard
# test cover the secure policy intrinsically.
SIMCLOUD_CHANNEL_POLICY=secure \
ctest --test-dir build --output-on-failure -j "$(nproc)" --timeout 300 \
      -R 'pipeline_test|failover_test|watch_test|cursor_test|obs_test'

echo "=== bench smoke: microbenchmarks ==="
if [ -x build/bench_micro ]; then
  ./build/bench_micro --benchmark_min_time=0.01 >/dev/null
  echo "bench_micro OK"
else
  echo "bench_micro not built (google-benchmark missing); skipped"
fi

echo "=== bench smoke: crypto kernels (scalar vs accelerated, >= 3x gate) ==="
./build/bench_crypto --smoke

echo "=== bench smoke: batched query throughput ==="
./build/bench_batch_throughput --smoke

echo "=== bench smoke: churn + compaction acceptance (incl. pause gate) ==="
./build/bench_churn --smoke

echo "=== bench smoke: pipelined transport acceptance ==="
./build/bench_pipeline --smoke

echo "=== bench smoke: metrics overhead gate (instrumented ping p99 within 5% of metrics-off) ==="
./build/bench_pipeline --metrics-overhead --smoke

echo "=== bench smoke: replica failover acceptance (zero failed queries, p99 blip <= 3x) ==="
./build/bench_failover --smoke

echo "=== bench smoke: watch streams acceptance (zero lost events, bounded slow-watcher backpressure) ==="
./build/bench_watch --smoke

echo "=== bench smoke: cursor acceptance (1M-candidate drain in O(page) RSS, byte-identical to one-shot) ==="
./build/bench_cursor --smoke

echo "CI OK"
