#!/usr/bin/env bash
# Local CI: the tier-1 verify command plus benchmark smoke runs.
# Mirrors .github/workflows/ci.yml so the same gate runs everywhere.
set -euo pipefail
cd "$(dirname "$0")"

echo "=== configure + build ==="
cmake -B build -S .
cmake --build build -j "$(nproc)"

echo "=== tier-1 tests ==="
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "=== bench smoke: microbenchmarks ==="
if [ -x build/bench_micro ]; then
  ./build/bench_micro --benchmark_min_time=0.01 >/dev/null
  echo "bench_micro OK"
else
  echo "bench_micro not built (google-benchmark missing); skipped"
fi

echo "=== bench smoke: batched query throughput ==="
./build/bench_batch_throughput --smoke

echo "CI OK"
