// Ablation E (figure-style): multi-client query throughput of one
// Encrypted M-Index server over real TCP.
//
// The paper deploys client and server as two processes on loopback and
// reports single-query latencies; a similarity *cloud*, however, serves
// many authorized clients at once. This harness drives one server with
// 1..N concurrent clients issuing approximate 30-NN queries and reports
// aggregate queries/second — the readers-writer locking on the server
// should let read throughput scale until CPU saturation.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "net/tcp.h"
#include "secure/sharded_server.h"

namespace simcloud {
namespace bench {
namespace {

void Run() {
  const size_t k = 30;
  const size_t cand_size = 300;
  const int kQueriesPerClient = 200;

  DatasetConfig config = MakeYeastConfig();
  auto pivots = mindex::PivotSet::SelectRandom(
      config.dataset.objects(), config.index_options.num_pivots,
      config.pivot_seed);
  if (!pivots.ok()) return;
  auto key = secure::SecretKey::Create(std::move(pivots).value(),
                                       Bytes(16, 0x5C));
  if (!key.ok()) return;

  auto handler = secure::EncryptedMIndexServer::Create(config.index_options);
  if (!handler.ok()) return;
  net::TcpServer server(handler->get());
  if (!server.Start(0).ok()) return;

  {
    auto transport = net::TcpTransport::Connect("127.0.0.1", server.port());
    if (!transport.ok()) return;
    secure::EncryptionClient owner(*key, config.dataset.distance(),
                                   transport->get());
    if (!owner
             .InsertBulk(config.dataset.objects(),
                         secure::InsertStrategy::kPermutationOnly,
                         config.bulk_size)
             .ok()) {
      return;
    }
  }

  std::printf(
      "Throughput: concurrent encrypted clients vs one server "
      "(YEAST, approx %zu-NN, |SC|=%zu, %d queries/client, real TCP)\n",
      k, cand_size, kQueriesPerClient);
  std::printf("%10s  %14s  %16s\n", "clients", "queries/s", "speedup vs 1");

  double baseline_qps = 0;
  for (int num_clients : {1, 2, 4, 8}) {
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(num_clients);
    const auto start = std::chrono::steady_clock::now();
    for (int c = 0; c < num_clients; ++c) {
      threads.emplace_back([&, c] {
        auto transport =
            net::TcpTransport::Connect("127.0.0.1", server.port());
        if (!transport.ok()) {
          failures.fetch_add(1);
          return;
        }
        secure::EncryptionClient client(*key, config.dataset.distance(),
                                        transport->get());
        Rng rng(1000 + c);
        for (int q = 0; q < kQueriesPerClient; ++q) {
          const auto& query = config.dataset
                                  .objects()[rng.NextBounded(
                                      config.dataset.size())];
          if (!client.ApproxKnn(query, k, cand_size).ok()) {
            failures.fetch_add(1);
            return;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (failures.load() != 0) {
      std::fprintf(stderr, "client failures at %d clients\n", num_clients);
      break;
    }
    const double qps = num_clients * kQueriesPerClient / seconds;
    if (num_clients == 1) baseline_qps = qps;
    std::printf("%10d  %14.0f  %15.2fx\n", num_clients, qps,
                qps / baseline_qps);
  }
  server.Stop();

  // ---- Sharded deployment: the same workload against a 4-shard
  // similarity cloud behind one facade (searches fan out in parallel).
  auto sharded = secure::ShardedServer::Create(config.index_options, 4);
  if (!sharded.ok()) return;
  net::TcpServer sharded_tcp(sharded->get());
  if (!sharded_tcp.Start(0).ok()) return;
  {
    auto transport =
        net::TcpTransport::Connect("127.0.0.1", sharded_tcp.port());
    if (!transport.ok()) return;
    secure::EncryptionClient owner(*key, config.dataset.distance(),
                                   transport->get());
    if (!owner
             .InsertBulk(config.dataset.objects(),
                         secure::InsertStrategy::kPermutationOnly,
                         config.bulk_size)
             .ok()) {
      return;
    }
  }
  std::printf("\nSame workload, 4-shard similarity cloud (parallel "
              "fan-out per query):\n");
  std::printf("%10s  %14s\n", "clients", "queries/s");
  for (int num_clients : {1, 4, 8}) {
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    const auto start = std::chrono::steady_clock::now();
    for (int c = 0; c < num_clients; ++c) {
      threads.emplace_back([&, c] {
        auto transport =
            net::TcpTransport::Connect("127.0.0.1", sharded_tcp.port());
        if (!transport.ok()) {
          failures.fetch_add(1);
          return;
        }
        secure::EncryptionClient client(*key, config.dataset.distance(),
                                        transport->get());
        Rng rng(2000 + c);
        for (int q = 0; q < kQueriesPerClient; ++q) {
          const auto& query = config.dataset
                                  .objects()[rng.NextBounded(
                                      config.dataset.size())];
          if (!client.ApproxKnn(query, k, cand_size).ok()) {
            failures.fetch_add(1);
            return;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (failures.load() != 0) break;
    std::printf("%10d  %14.0f\n", num_clients,
                num_clients * kQueriesPerClient / seconds);
  }
  sharded_tcp.Stop();

  std::printf(
      "\nExpected shape: near-linear scaling for small client counts "
      "(searches take the shared lock), flattening at CPU saturation; "
      "client-side decryption dominates per-query work, so the server "
      "is rarely the bottleneck. The sharded facade pays a per-query "
      "fan-out (thread spawn + merge) that is not amortized on a "
      "collection this small — sharding is a capacity mechanism (disk, "
      "memory, construction parallelism), not a latency win for "
      "sub-millisecond cells.\n");
}

}  // namespace
}  // namespace bench
}  // namespace simcloud

int main() {
  simcloud::bench::Run();
  return 0;
}
