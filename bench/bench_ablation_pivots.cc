// Ablation A (figure-style): effect of the number of pivots on recall and
// cost for the Encrypted M-Index (YEAST workload). The paper fixes 30
// pivots for YEAST (Table 2); this sweep shows the sensitivity of that
// design choice. Output is a series table suitable for plotting.

#include <cstdio>

#include "bench/bench_common.h"

namespace simcloud {
namespace bench {
namespace {

void Run() {
  const size_t k = 30;
  const size_t cand_size = 300;

  std::printf("Ablation: number of pivots (YEAST, approx %zu-NN, "
              "|SC|=%zu, 100 queries)\n",
              k, cand_size);
  std::printf("%8s  %10s  %12s  %14s  %12s  %12s\n", "pivots", "recall[%]",
              "client[ms]", "server[ms]", "comm[kB]", "overall[ms]");

  for (size_t num_pivots : {5, 10, 20, 30, 50, 80}) {
    DatasetConfig config = MakeYeastConfig();
    config.index_options.num_pivots = num_pivots;
    config.index_options.max_level = std::min<size_t>(6, num_pivots);

    const auto queries = config.dataset.SampleQueries(100, 555);
    const auto exact = ComputeGroundTruth(config.dataset, queries, k);

    SecureStack stack = BuildSecureStack(
        config, secure::InsertStrategy::kPermutationOnly, nullptr);
    CostRow row = RunSecureKnnWorkload(stack, queries, exact, k, cand_size);

    std::printf("%8zu  %10.2f  %12.4f  %14.4f  %12.2f  %12.4f\n", num_pivots,
                row.recall_pct, row.client_s * 1e3, row.server_s * 1e3,
                row.communication_kb, row.overall_s * 1e3);
  }
  std::printf(
      "\nExpected shape: recall rises steeply with the first pivots and "
      "saturates; client distance time grows linearly with the pivot "
      "count (query-pivot distances are computed on the client).\n");
}

}  // namespace
}  // namespace bench
}  // namespace simcloud

int main() {
  simcloud::bench::Run();
  return 0;
}
