// Reproduces Table 9 (approximate 1-NN on YEAST, Encrypted M-Index
// restricted to a single Voronoi cell) and extends it into the full
// comparison the paper makes textually against Yiu et al.'s techniques:
// EHI, MPT, FDH, and the trivial download-everything client, all measured
// on the same data, queries, and transport.
//
// Paper shapes to reproduce: the Encrypted M-Index beats every referenced
// technique in communication cost and beats FDH in per-query CPU time,
// while its index construction is slower than FDH's; EHI pays many round
// trips and heavy client-side decryption; the trivial client's
// communication cost is catastrophic.

#include <cstdio>

#include "baselines/ehi.h"
#include "baselines/fdh.h"
#include "baselines/mpt.h"
#include "baselines/trivial.h"
#include "bench/bench_common.h"
#include "common/clock.h"
#include "metric/ground_truth.h"

namespace simcloud {
namespace bench {
namespace {

using metric::NeighborList;
using metric::VectorObject;

struct ComparisonRow {
  double client_ms = -1;
  double decryption_ms = -1;
  double distance_ms = -1;
  double server_ms = -1;
  double communication_ms = -1;
  double overall_ms = -1;
  double recall_pct = -1;
  double communication_kb = -1;
  double construction_s = -1;
};

void Run() {
  // Workload: 100 query objects excluded from the indexed set (paper
  // Section 5.4), k = 1.
  DatasetConfig config = MakeYeastConfig();
  auto queries = config.dataset.ExtractQueries(100, 777);
  const size_t k = 1;
  const auto exact = ComputeGroundTruth(config.dataset, queries, k);
  const double n = static_cast<double>(queries.size());

  std::vector<std::string> systems;
  std::vector<ComparisonRow> rows;

  // ---------------------------------------------- Encrypted M-Index
  {
    Stopwatch build;
    SecureStack stack = BuildSecureStack(
        config, secure::InsertStrategy::kPermutationOnly, nullptr);
    const double construction_s = build.ElapsedSeconds();
    stack.client->ResetCosts();
    stack.transport->ResetCosts();

    double recall_total = 0;
    for (size_t i = 0; i < queries.size(); ++i) {
      auto answer = stack.client->ApproxKnnSingleCell(queries[i], k);
      if (!answer.ok()) std::abort();
      recall_total += metric::RecallPercent(*answer, exact[i]);
    }
    const auto& cc = stack.client->costs();
    const auto& tc = stack.transport->costs();
    ComparisonRow row;
    row.client_ms = cc.TotalNanos() * 1e-6 / n;
    row.decryption_ms = cc.decryption_nanos * 1e-6 / n;
    row.distance_ms = cc.distance_nanos * 1e-6 / n;
    row.server_ms = tc.server_nanos * 1e-6 / n;
    row.communication_ms = tc.communication_nanos * 1e-6 / n;
    row.overall_ms = row.client_ms + row.server_ms + row.communication_ms;
    row.recall_pct = recall_total / n;
    row.communication_kb = tc.TotalBytes() / 1024.0 / n;
    row.construction_s = construction_s;
    systems.push_back("EncMIndex");
    rows.push_back(row);
    std::printf("Encrypted M-Index: avg candidate (single cell) size = %.1f "
                "(paper: ~42)\n",
                static_cast<double>(cc.candidates_decrypted) / n);
  }

  // ------------------------------------------------------------- EHI
  {
    baselines::EhiNodeStoreServer server;
    net::LoopbackTransport transport(&server);
    auto client = baselines::EhiClient::Create(
        Bytes(16, 0x61), config.dataset.distance(), &transport);
    if (!client.ok()) std::abort();
    Stopwatch build;
    if (!client->BuildAndUpload(config.dataset.objects()).ok()) std::abort();
    const double construction_s = build.ElapsedSeconds();
    transport.ResetCosts();
    client->ResetCosts();

    double recall_total = 0;
    Stopwatch wall;
    for (size_t i = 0; i < queries.size(); ++i) {
      auto answer = client->Knn(queries[i], k);
      if (!answer.ok()) std::abort();
      recall_total += metric::RecallPercent(*answer, exact[i]);
    }
    const double wall_s = wall.ElapsedSeconds();
    const auto& tc = transport.costs();
    ComparisonRow row;
    row.decryption_ms = client->costs().decryption_nanos * 1e-6 / n;
    row.distance_ms = client->costs().distance_nanos * 1e-6 / n;
    row.server_ms = tc.server_nanos * 1e-6 / n;
    row.client_ms =
        std::max(0.0, (wall_s - tc.server_nanos * 1e-9) * 1e3 / n);
    row.communication_ms = tc.communication_nanos * 1e-6 / n;
    row.overall_ms = row.client_ms + row.server_ms + row.communication_ms;
    row.recall_pct = recall_total / n;  // exact algorithm -> 100
    row.communication_kb = tc.TotalBytes() / 1024.0 / n;
    row.construction_s = construction_s;
    systems.push_back("EHI");
    rows.push_back(row);
    std::printf("EHI: avg encrypted nodes fetched per query = %.1f\n",
                static_cast<double>(client->costs().nodes_fetched) / n);
  }

  // ------------------------------------------------------------- MPT
  {
    baselines::MptServer server;
    net::LoopbackTransport transport(&server);
    auto client = baselines::MptClient::Create(
        Bytes(16, 0x62), config.dataset.distance(), &transport);
    if (!client.ok()) std::abort();
    Stopwatch build;
    if (!client->BuildKey(config.dataset.SampleQueries(200, 31)).ok()) {
      std::abort();
    }
    if (!client->InsertBulk(config.dataset.objects()).ok()) std::abort();
    const double construction_s = build.ElapsedSeconds();
    transport.ResetCosts();
    client->ResetCosts();

    double recall_total = 0;
    Stopwatch wall;
    for (size_t i = 0; i < queries.size(); ++i) {
      auto answer = client->Knn(queries[i], k);
      if (!answer.ok()) std::abort();
      recall_total += metric::RecallPercent(*answer, exact[i]);
    }
    const double wall_s = wall.ElapsedSeconds();
    const auto& tc = transport.costs();
    ComparisonRow row;
    row.decryption_ms = client->costs().decryption_nanos * 1e-6 / n;
    row.distance_ms = client->costs().distance_nanos * 1e-6 / n;
    row.server_ms = tc.server_nanos * 1e-6 / n;
    row.client_ms =
        std::max(0.0, (wall_s - tc.server_nanos * 1e-9) * 1e3 / n);
    row.communication_ms = tc.communication_nanos * 1e-6 / n;
    row.overall_ms = row.client_ms + row.server_ms + row.communication_ms;
    row.recall_pct = recall_total / n;
    row.communication_kb = tc.TotalBytes() / 1024.0 / n;
    row.construction_s = construction_s;
    systems.push_back("MPT");
    rows.push_back(row);
  }

  // ------------------------------------------------------------- FDH
  {
    baselines::FdhServer server;
    net::LoopbackTransport transport(&server);
    auto client = baselines::FdhClient::Create(
        Bytes(16, 0x63), config.dataset.distance(), &transport);
    if (!client.ok()) std::abort();
    Stopwatch build;
    if (!client->BuildKey(config.dataset.SampleQueries(200, 41)).ok()) {
      std::abort();
    }
    if (!client->InsertBulk(config.dataset.objects()).ok()) std::abort();
    const double construction_s = build.ElapsedSeconds();
    transport.ResetCosts();
    client->ResetCosts();

    double recall_total = 0;
    Stopwatch wall;
    for (size_t i = 0; i < queries.size(); ++i) {
      // Same candidate budget as the encrypted M-Index's average cell.
      auto answer = client->Knn(queries[i], k, 42);
      if (!answer.ok()) std::abort();
      recall_total += metric::RecallPercent(*answer, exact[i]);
    }
    const double wall_s = wall.ElapsedSeconds();
    const auto& tc = transport.costs();
    ComparisonRow row;
    row.decryption_ms = client->costs().decryption_nanos * 1e-6 / n;
    row.distance_ms = client->costs().distance_nanos * 1e-6 / n;
    row.server_ms = tc.server_nanos * 1e-6 / n;
    row.client_ms =
        std::max(0.0, (wall_s - tc.server_nanos * 1e-9) * 1e3 / n);
    row.communication_ms = tc.communication_nanos * 1e-6 / n;
    row.overall_ms = row.client_ms + row.server_ms + row.communication_ms;
    row.recall_pct = recall_total / n;
    row.communication_kb = tc.TotalBytes() / 1024.0 / n;
    row.construction_s = construction_s;
    systems.push_back("FDH");
    rows.push_back(row);
  }

  // --------------------------------------------------------- Trivial
  {
    baselines::BlobStoreServer server;
    net::LoopbackTransport transport(&server);
    auto client = baselines::TrivialClient::Create(
        Bytes(16, 0x64), config.dataset.distance(), &transport);
    if (!client.ok()) std::abort();
    Stopwatch build;
    if (!client->InsertBulk(config.dataset.objects()).ok()) std::abort();
    const double construction_s = build.ElapsedSeconds();
    transport.ResetCosts();

    double recall_total = 0;
    Stopwatch wall;
    // The trivial client re-downloads the collection per query; 10
    // queries suffice to measure the (enormous) per-query cost.
    const size_t trivial_queries = 10;
    for (size_t i = 0; i < trivial_queries; ++i) {
      auto answer = client->Knn(queries[i], k);
      if (!answer.ok()) std::abort();
      recall_total += metric::RecallPercent(*answer, exact[i]);
    }
    const double wall_s = wall.ElapsedSeconds();
    const double tn = static_cast<double>(trivial_queries);
    const auto& tc = transport.costs();
    ComparisonRow row;
    row.server_ms = tc.server_nanos * 1e-6 / tn;
    row.client_ms =
        std::max(0.0, (wall_s - tc.server_nanos * 1e-9) * 1e3 / tn);
    row.communication_ms = tc.communication_nanos * 1e-6 / tn;
    row.overall_ms = row.client_ms + row.server_ms + row.communication_ms;
    row.recall_pct = recall_total / tn;
    row.communication_kb = tc.TotalBytes() / 1024.0 / tn;
    row.construction_s = construction_s;
    systems.push_back("Trivial");
    rows.push_back(row);
  }

  TablePrinter table("Table 9 (extended): approximate 1-NN on YEAST, "
                     "100 queries excluded from the indexed set",
                     systems);
  auto collect = [&](const char* label, auto getter, int precision) {
    std::vector<double> values;
    for (const auto& row : rows) values.push_back(getter(row));
    table.AddRow(label, values, precision);
  };
  collect("Client time [ms]",
          [](const ComparisonRow& r) { return r.client_ms; }, 3);
  collect("Decryption time [ms]",
          [](const ComparisonRow& r) { return r.decryption_ms; }, 3);
  collect("Dist. comp. time [ms]",
          [](const ComparisonRow& r) { return r.distance_ms; }, 3);
  collect("Server time [ms]",
          [](const ComparisonRow& r) { return r.server_ms; }, 3);
  collect("Communication time [ms]",
          [](const ComparisonRow& r) { return r.communication_ms; }, 3);
  collect("Overall time [ms]",
          [](const ComparisonRow& r) { return r.overall_ms; }, 3);
  collect("Recall [%]",
          [](const ComparisonRow& r) { return r.recall_pct; }, 1);
  collect("Communication cost [kB]",
          [](const ComparisonRow& r) { return r.communication_kb; }, 3);
  collect("Index construction [s]",
          [](const ComparisonRow& r) { return r.construction_s; }, 3);
  table.Print();

  std::printf(
      "\nPaper reference (Encrypted M-Index column): client 0.509 ms, "
      "decryption 0.160 ms, dist. comp. 0.210 ms, server 1.001 ms, "
      "communication 1.180 ms, overall 2.690 ms, recall 94%%, "
      "communication 2.368 kB.\n"
      "Shape checks: (a) EncMIndex has the lowest communication cost of "
      "all secure systems, (b) it beats FDH in client CPU per query at "
      "similar recall, (c) its construction is slower than FDH's, (d) the "
      "trivial client's communication is orders of magnitude larger.\n");
}

}  // namespace
}  // namespace bench
}  // namespace simcloud

int main() {
  simcloud::bench::Run();
  return 0;
}
