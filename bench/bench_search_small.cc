// Reproduces Table 5 (approximate 30-NN on YEAST, Encrypted M-Index) and
// Table 7 (same workload on the basic non-encrypted M-Index), plus the
// HUMAN runs the paper summarizes as "trends do not differ from YEAST".
//
// Workload: 100 query objects randomly chosen from the data set, k = 30,
// candidate-set sizes {150, 300, 600, 1500}; all values averaged per
// query (paper Section 5.3).

#include <cstdio>

#include "bench/bench_common.h"

namespace simcloud {
namespace bench {
namespace {

void RunDataset(DatasetConfig config, const char* table5_name,
                const char* table7_name) {
  const size_t k = 30;
  const std::vector<size_t> cand_sizes = {150, 300, 600, 1500};

  const auto queries = config.dataset.SampleQueries(100, 1234);
  const auto exact = ComputeGroundTruth(config.dataset, queries, k);

  SecureStack secure_stack =
      BuildSecureStack(config, secure::InsertStrategy::kPermutationOnly,
                       nullptr);
  PlainStack plain_stack = BuildPlainStack(config, nullptr);

  std::vector<std::string> columns;
  std::vector<CostRow> secure_rows, plain_rows;
  for (size_t cand_size : cand_sizes) {
    columns.push_back(std::to_string(cand_size));
    secure_rows.push_back(
        RunSecureKnnWorkload(secure_stack, queries, exact, k, cand_size));
    plain_rows.push_back(
        RunPlainKnnWorkload(plain_stack, queries, exact, k, cand_size));
  }

  PrintCostTable(table5_name, columns, secure_rows, /*construction=*/false);
  PrintCostTable(table7_name, columns, plain_rows, /*construction=*/false);
}

void Run() {
  RunDataset(MakeYeastConfig(),
             "Table 5: Approximate 30-NN using the Encrypted M-Index "
             "(YEAST), by candidate set size",
             "Table 7: Approx. 30-NN using basic (non-encrypted) M-Index "
             "(YEAST), by candidate set size");

  std::printf(
      "\nPaper reference (YEAST): recall 59.8 / 82.9 / 91.3 / 91.6 %% at "
      "|SC| = 150/300/600/1500; encrypted communication cost 25.8 / 51.6 / "
      "103.3 / 258.3 kB (linear in |SC|); plain communication constant "
      "~5.16 kB; encrypted overall ~3x plain.\n");

  RunDataset(MakeHumanConfig(),
             "HUMAN supplement: Approximate 30-NN, Encrypted M-Index",
             "HUMAN supplement: Approximate 30-NN, basic M-Index");
  std::printf("\n(The paper omits HUMAN tables: 'the trends do not differ "
              "from YEAST'. Included here to verify that claim.)\n");
}

}  // namespace
}  // namespace bench
}  // namespace simcloud

int main() {
  simcloud::bench::Run();
  return 0;
}
