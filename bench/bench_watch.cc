// Watch-stream soak: one writer churns an encrypted index while a FAST
// watcher consumes the live stream and a SLOW watcher deliberately never
// reads until the churn is over. Three gates (the run aborts when
// violated):
//
//   * ZERO lost events — the fast watcher receives every insert and
//     every delete exactly once, in publish order;
//   * the slow watcher is BOUNDED backpressure, not collateral damage —
//     while it sits parked at the connection's output-queue cap, every
//     ping on a third connection keeps succeeding, and once it finally
//     reads it still gets the complete gapless stream (the hub holds
//     its cursor; the replay ring covers the whole churn);
//   * push latency stays sane — fast-watcher p99 from the writer's send
//     to the decrypted event must stay under the latency gate.
//
// Usage: bench_watch [--smoke]
//   --smoke  fewer ops, for CI.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "net/tcp.h"
#include "secure/client.h"
#include "secure/secret_key.h"
#include "secure/server.h"

namespace simcloud {
namespace bench {
namespace {

double Percentile(std::vector<double> values, double pct) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const size_t index = std::min(values.size() - 1,
                                static_cast<size_t>(values.size() * pct));
  return values[index];
}

void Run(bool smoke) {
  const size_t num_inserts = smoke ? 2000 : 20000;
  const size_t num_deletes = num_inserts / 4;
  const size_t total_events = num_inserts + num_deletes;
  const double latency_gate_ms = smoke ? 250.0 : 100.0;

  data::MixtureOptions mixture;
  mixture.num_objects = num_inserts;
  mixture.dimension = 8;
  mixture.num_clusters = 6;
  mixture.seed = 81;
  auto objects = data::MakeGaussianMixture(mixture);
  auto metric = std::make_shared<metric::L2Distance>();
  auto pivots = mindex::PivotSet::SelectRandom(objects, 16, 82);
  if (!pivots.ok()) std::exit(1);
  auto key = secure::SecretKey::Create(std::move(pivots).value(),
                                       Bytes(16, 0x62));
  if (!key.ok()) std::exit(1);

  mindex::MIndexOptions options;
  options.num_pivots = 16;
  options.bucket_capacity = 50;
  options.max_level = 4;
  // The ring must cover the whole churn so the parked slow watcher can
  // catch up without a watch-lost.
  options.watch_ring_capacity = total_events + 16;
  auto handler = secure::EncryptedMIndexServer::Create(options);
  if (!handler.ok()) std::exit(1);

  net::TcpServerOptions server_options;
  server_options.worker_threads = 2;
  // Small on purpose: the slow watcher must hit this cap early and park.
  server_options.max_output_queue_bytes = 64 * 1024;
  net::TcpServer server(handler->get(), server_options);
  if (!server.Start(0).ok()) std::exit(1);
  auto connect = [&] {
    auto transport = net::TcpTransport::Connect("127.0.0.1", server.port());
    if (!transport.ok()) std::exit(1);
    return std::move(*transport);
  };

  // Send timestamps, indexed by object id (release on store before the
  // wire write; the watcher acquires after the event arrives).
  Stopwatch epoch;
  std::vector<std::atomic<int64_t>> insert_sent(num_inserts);
  std::vector<std::atomic<int64_t>> delete_sent(num_deletes);
  for (auto& t : insert_sent) t.store(0);
  for (auto& t : delete_sent) t.store(0);

  // Slow watcher: registers FIRST, then refuses to read until the whole
  // churn has landed.
  auto slow_transport = connect();
  secure::EncryptionClient slow_client(*key, metric, slow_transport.get());
  auto slow_stream = slow_client.WatchAll();
  if (!slow_stream.ok()) std::exit(1);

  // Fast watcher: consumes concurrently with the writer, checks order,
  // measures push latency.
  auto fast_transport = connect();
  secure::EncryptionClient fast_client(*key, metric, fast_transport.get());
  auto fast_stream = fast_client.WatchAll();
  if (!fast_stream.ok()) std::exit(1);

  std::atomic<size_t> fast_received{0};
  std::atomic<size_t> fast_misorders{0};
  std::vector<double> push_latency_ms(total_events, -1.0);
  std::thread fast_watcher([&] {
    // Inserts arrive as ids 0..N-1 in order, then deletes 0..M-1.
    size_t expect = 0;
    while (fast_received.load() < total_events) {
      auto event = (*fast_stream)->Next(10000);
      if (!event.ok()) {
        std::fprintf(stderr, "fast watcher died: %s\n",
                     event.status().ToString().c_str());
        return;
      }
      const int64_t now = epoch.ElapsedNanos();
      const size_t i = fast_received.fetch_add(1);
      const bool is_insert = i < num_inserts;
      const size_t want = is_insert ? expect : expect - num_inserts;
      if ((is_insert) != (event->kind == secure::WatchEvent::Kind::kInsert) ||
          event->id != want) {
        fast_misorders.fetch_add(1);
      }
      ++expect;
      const int64_t sent = is_insert
                               ? insert_sent[event->id].load()
                               : delete_sent[event->id].load();
      if (sent > 0) push_latency_ms[i] = (now - sent) / 1e6;
    }
  });

  // Prober: pings on its own connection must keep succeeding while the
  // slow watcher is parked at the output-queue cap.
  std::atomic<bool> stop_prober{false};
  std::atomic<size_t> pings_ok{0}, pings_failed{0};
  std::thread prober([&] {
    auto transport = connect();
    secure::EncryptionClient client(*key, metric, transport.get());
    while (!stop_prober.load()) {
      if (client.Ping().ok()) {
        pings_ok.fetch_add(1);
      } else {
        pings_failed.fetch_add(1);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // Writer: inserts in slices, then deletes the first quarter. Paced a
  // touch below the watcher's decrypt rate — the latency gate measures
  // the push path, and an unbounded burst would measure nothing but the
  // consumer's own backlog.
  auto writer_transport = connect();
  secure::EncryptionClient writer(*key, metric, writer_transport.get());
  Stopwatch churn;
  constexpr size_t kSlice = 100;
  const auto pace = std::chrono::milliseconds(2);
  for (size_t next = 0; next < num_inserts; next += kSlice) {
    const size_t end = std::min(next + kSlice, num_inserts);
    const int64_t now = epoch.ElapsedNanos();
    for (size_t i = next; i < end; ++i) insert_sent[i].store(now);
    std::vector<metric::VectorObject> slice(objects.begin() + next,
                                            objects.begin() + end);
    if (!writer.InsertBulk(slice, secure::InsertStrategy::kPrecise, kSlice)
             .ok()) {
      std::fprintf(stderr, "insert failed mid-churn\n");
      std::exit(1);
    }
    std::this_thread::sleep_for(pace);
  }
  for (size_t next = 0; next < num_deletes; next += kSlice) {
    const size_t end = std::min(next + kSlice, num_deletes);
    const int64_t now = epoch.ElapsedNanos();
    for (size_t i = next; i < end; ++i) delete_sent[i].store(now);
    std::vector<metric::VectorObject> slice(objects.begin() + next,
                                            objects.begin() + end);
    auto pending = writer.SubmitDeleteBatch(slice);
    if (!pending.ok() || !writer.CollectDeleteBatch(&*pending).ok()) {
      std::fprintf(stderr, "delete failed mid-churn\n");
      std::exit(1);
    }
    std::this_thread::sleep_for(pace);
  }
  const double churn_seconds = churn.ElapsedSeconds();

  fast_watcher.join();
  stop_prober.store(true);
  prober.join();

  // The slow watcher finally reads: the full stream, in order, from the
  // beginning — its park never cost it (or anyone else) an event.
  size_t slow_received = 0, slow_misorders = 0;
  {
    size_t expect = 0;
    while (slow_received < total_events) {
      auto event = (*slow_stream)->Next(10000);
      if (!event.ok()) {
        std::fprintf(stderr, "slow watcher died after %zu events: %s\n",
                     slow_received, event.status().ToString().c_str());
        break;
      }
      const bool is_insert = slow_received < num_inserts;
      const size_t want = is_insert ? expect : expect - num_inserts;
      if ((is_insert) !=
              (event->kind == secure::WatchEvent::Kind::kInsert) ||
          event->id != want) {
        ++slow_misorders;
      }
      ++expect;
      ++slow_received;
    }
  }

  std::vector<double> latencies;
  latencies.reserve(total_events);
  for (double ms : push_latency_ms) {
    if (ms >= 0) latencies.push_back(ms);
  }
  const double p50 = Percentile(latencies, 0.50);
  const double p99 = Percentile(latencies, 0.99);

  std::printf("bench_watch: %zu inserts + %zu deletes in %.2fs "
              "(%.0f events/s through the fast watcher)\n",
              num_inserts, num_deletes, churn_seconds,
              total_events / churn_seconds);
  std::printf("fast watcher: %zu/%zu events, %zu misorders, "
              "push latency p50 %.2f ms p99 %.2f ms\n",
              fast_received.load(), total_events, fast_misorders.load(),
              p50, p99);
  std::printf("slow watcher: %zu/%zu events after the park, %zu misorders\n",
              slow_received, total_events, slow_misorders);
  std::printf("prober: %zu pings ok, %zu failed while the slow watcher "
              "was parked\n",
              pings_ok.load(), pings_failed.load());

  bool failed = false;
  if (fast_received.load() != total_events || fast_misorders.load() != 0) {
    std::fprintf(stderr, "FAIL: fast watcher lost or reordered events\n");
    failed = true;
  }
  if (slow_received != total_events || slow_misorders != 0) {
    std::fprintf(stderr, "FAIL: slow watcher lost or reordered events "
                         "across the backpressure park\n");
    failed = true;
  }
  if (pings_failed.load() != 0 || pings_ok.load() == 0) {
    std::fprintf(stderr, "FAIL: other connections suffered while the slow "
                         "watcher was parked\n");
    failed = true;
  }
  if (p99 > latency_gate_ms) {
    std::fprintf(stderr, "FAIL: fast-watcher push p99 %.2f ms exceeds the "
                         "%.0f ms gate\n",
                 p99, latency_gate_ms);
    failed = true;
  }
  if (failed) std::exit(1);

  std::printf("bench_watch OK (0 lost events, slow watcher parked and "
              "caught up, p99 %.2f ms)\n", p99);
  (void)(*fast_stream)->Cancel();
  (void)(*slow_stream)->Cancel();
  fast_stream->reset();
  slow_stream->reset();
  server.Stop();
}

}  // namespace
}  // namespace bench
}  // namespace simcloud

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  simcloud::bench::Run(smoke);
  return 0;
}
