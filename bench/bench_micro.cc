// Component microbenchmarks (google-benchmark): the primitive costs the
// paper's cost model is built from — AES encryption/decryption, SHA-256,
// distance functions, pivot-permutation computation, and serialization.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/serialize.h"
#include "crypto/cipher.h"
#include "crypto/sha256.h"
#include "data/synthetic.h"
#include "metric/distance.h"
#include "mindex/permutation.h"

namespace simcloud {
namespace {

Bytes RandomBytes(size_t n, uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<uint8_t>(rng.NextBounded(256));
  return out;
}

void BM_AesCbcEncrypt(benchmark::State& state) {
  auto cipher =
      crypto::Cipher::Create(RandomBytes(16, 1), crypto::CipherMode::kCbc);
  const Bytes plaintext = RandomBytes(state.range(0), 2);
  const Bytes iv = RandomBytes(16, 3);
  for (auto _ : state) {
    auto ct = cipher->EncryptWithIv(plaintext, iv);
    benchmark::DoNotOptimize(ct);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesCbcEncrypt)->Arg(80)->Arg(1200)->Arg(16384);

void BM_AesCbcDecrypt(benchmark::State& state) {
  auto cipher =
      crypto::Cipher::Create(RandomBytes(16, 1), crypto::CipherMode::kCbc);
  const Bytes plaintext = RandomBytes(state.range(0), 2);
  const Bytes ciphertext = cipher->Encrypt(plaintext).value();
  for (auto _ : state) {
    auto pt = cipher->Decrypt(ciphertext);
    benchmark::DoNotOptimize(pt);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesCbcDecrypt)->Arg(80)->Arg(1200)->Arg(16384);

void BM_Sha256(benchmark::State& state) {
  const Bytes data = RandomBytes(state.range(0), 4);
  for (auto _ : state) {
    auto digest = crypto::Sha256::Hash(data);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(65536);

template <typename Distance>
void BM_Distance(benchmark::State& state) {
  Rng rng(5);
  std::vector<float> a(state.range(0)), b(state.range(0));
  for (auto& v : a) v = rng.NextFloat();
  for (auto& v : b) v = rng.NextFloat();
  metric::VectorObject oa(0, a), ob(1, b);
  Distance distance;
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance.Distance(oa, ob));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_TEMPLATE(BM_Distance, metric::L1Distance)->Arg(17)->Arg(96)->Arg(280);
BENCHMARK_TEMPLATE(BM_Distance, metric::L2Distance)->Arg(17)->Arg(96)->Arg(280);

void BM_CophirDistance(benchmark::State& state) {
  Rng rng(6);
  std::vector<float> a(280), b(280);
  for (auto& v : a) v = rng.NextFloat() * 255;
  for (auto& v : b) v = rng.NextFloat() * 255;
  metric::VectorObject oa(0, a), ob(1, b);
  auto distance = data::MakeCophirDistance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance->Distance(oa, ob));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CophirDistance);

void BM_PivotPermutation(benchmark::State& state) {
  Rng rng(7);
  std::vector<float> distances(state.range(0));
  for (auto& d : distances) d = rng.NextFloat();
  for (auto _ : state) {
    auto perm = mindex::DistancesToPermutation(distances);
    benchmark::DoNotOptimize(perm);
  }
}
BENCHMARK(BM_PivotPermutation)->Arg(30)->Arg(50)->Arg(100);

void BM_PermutationPrefix(benchmark::State& state) {
  Rng rng(8);
  std::vector<float> distances(100);
  for (auto& d : distances) d = rng.NextFloat();
  for (auto _ : state) {
    auto perm =
        mindex::DistancesToPermutationPrefix(distances, state.range(0));
    benchmark::DoNotOptimize(perm);
  }
}
BENCHMARK(BM_PermutationPrefix)->Arg(8)->Arg(16);

void BM_ObjectSerialize(benchmark::State& state) {
  Rng rng(9);
  std::vector<float> values(state.range(0));
  for (auto& v : values) v = rng.NextFloat();
  metric::VectorObject object(123456, values);
  for (auto _ : state) {
    BinaryWriter writer;
    object.Serialize(&writer);
    benchmark::DoNotOptimize(writer.buffer());
  }
}
BENCHMARK(BM_ObjectSerialize)->Arg(17)->Arg(280);

}  // namespace
}  // namespace simcloud

BENCHMARK_MAIN();
