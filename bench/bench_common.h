// Shared support for the table-reproduction benchmark harnesses: data-set
// configurations (paper Tables 1 and 2), stack builders for the encrypted
// and plain deployments, cost-row collection, and table printing.

#ifndef SIMCLOUD_BENCH_BENCH_COMMON_H_
#define SIMCLOUD_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/plain_mindex.h"
#include "data/synthetic.h"
#include "metric/dataset.h"
#include "mindex/mindex.h"
#include "mindex/pivot_selection.h"
#include "net/transport.h"
#include "secure/client.h"
#include "secure/server.h"

namespace simcloud {
namespace bench {

/// One evaluated data set plus its M-Index parameters (paper Table 2).
struct DatasetConfig {
  metric::Dataset dataset;
  mindex::MIndexOptions index_options;
  size_t bulk_size = 1000;
  uint64_t pivot_seed = 7;
  /// How pivots are chosen (the paper uses random; ablations sweep this).
  mindex::PivotStrategy pivot_strategy = mindex::PivotStrategy::kRandom;
};

/// YEAST: 2,882 x 17, L1; 30 pivots, bucket 200, memory storage.
DatasetConfig MakeYeastConfig();
/// HUMAN: 4,026 x 96, L1; 50 pivots, bucket 250, memory storage.
DatasetConfig MakeHumanConfig();
/// CoPhIR-like: n x 280, segmented Lp; 100 pivots, bucket 1000, disk
/// storage, permutation prefix 16 (memory economy at n up to 1M).
DatasetConfig MakeCophirConfig(size_t num_objects);

/// One column of the paper's cost tables, all values in seconds except
/// where noted. Negative recall/comm mean "not reported".
struct CostRow {
  double client_s = 0;
  double encryption_s = 0;   ///< construction tables
  double decryption_s = 0;   ///< search tables
  double distance_s = 0;
  double server_s = 0;
  double communication_s = 0;
  double overall_s = 0;
  double recall_pct = -1;
  double communication_kb = -1;
};

/// The full encrypted client-server deployment for one data set.
struct SecureStack {
  secure::SecretKey key;
  std::unique_ptr<secure::EncryptedMIndexServer> server;
  std::unique_ptr<net::LoopbackTransport> transport;
  std::unique_ptr<secure::EncryptionClient> client;
};

/// Builds the encrypted stack and bulk-inserts the collection, filling
/// `construction` with the Table 3 cost breakdown.
SecureStack BuildSecureStack(const DatasetConfig& config,
                             secure::InsertStrategy strategy,
                             CostRow* construction);

/// The plain (non-encrypted) deployment for one data set.
struct PlainStack {
  std::unique_ptr<baselines::PlainMIndexServer> server;
  std::unique_ptr<net::LoopbackTransport> transport;
  std::unique_ptr<baselines::PlainClient> client;
};

/// Builds the plain stack and bulk-inserts the collection, filling
/// `construction` with the Table 4 cost breakdown.
PlainStack BuildPlainStack(const DatasetConfig& config, CostRow* construction);

/// Runs the encrypted approximate k-NN workload (paper Section 5.3): the
/// given queries with candidate-set size `cand_size`; averages per query.
/// `exact` holds the per-query ground truth for recall.
CostRow RunSecureKnnWorkload(SecureStack& stack,
                             const std::vector<metric::VectorObject>& queries,
                             const std::vector<metric::NeighborList>& exact,
                             size_t k, size_t cand_size);

/// Runs the plain approximate k-NN workload (paper Tables 7/8).
CostRow RunPlainKnnWorkload(PlainStack& stack,
                            const std::vector<metric::VectorObject>& queries,
                            const std::vector<metric::NeighborList>& exact,
                            size_t k, size_t cand_size);

/// Computes exact k-NN ground truth for every query (linear scan).
std::vector<metric::NeighborList> ComputeGroundTruth(
    const metric::Dataset& dataset,
    const std::vector<metric::VectorObject>& queries, size_t k);

/// Fixed-width table printer echoing the paper's layout.
class TablePrinter {
 public:
  /// `title` is printed once; `columns` are the column headers.
  TablePrinter(std::string title, std::vector<std::string> columns);

  /// Adds a row: label + one formatted value per column ("-" for absent).
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 3);
  void AddTextRow(const std::string& label,
                  const std::vector<std::string>& values);

  /// Writes the table to stdout.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints the standard cost-table block shared by Tables 3-9: one row per
/// cost component, one column per configuration.
void PrintCostTable(const std::string& title,
                    const std::vector<std::string>& columns,
                    const std::vector<CostRow>& rows, bool construction);

}  // namespace bench
}  // namespace simcloud

#endif  // SIMCLOUD_BENCH_BENCH_COMMON_H_
