// Reproduces Table 3 (index construction of the Encrypted M-Index) and
// Table 4 (construction of the basic, non-encrypted M-Index).
//
// Workload: bulk insert of the full collection in bulks of 1,000 (paper
// Section 5.2). Reported components: client / encryption / distance /
// server / communication / overall time.
//
// Expected shapes (paper): for the small L1 data sets the encryption layer
// adds ~60% overall; for CoPhIR the expensive distance function dominates
// and merely moves from server (plain) to client (encrypted), leaving the
// overall time roughly unchanged.

#include <cstdio>

#include "bench/bench_common.h"

namespace simcloud {
namespace bench {
namespace {

void Run() {
  const size_t cophir_n = data::DefaultCophirSize();
  std::printf("bench_construction: CoPhIR scale n=%zu "
              "(override with SIMCLOUD_COPHIR_N; paper used 1,000,000)\n",
              cophir_n);

  std::vector<std::string> columns = {"YEAST", "HUMAN", "CoPhIR"};
  std::vector<CostRow> encrypted_rows, plain_rows;

  for (int which = 0; which < 3; ++which) {
    DatasetConfig config = which == 0   ? MakeYeastConfig()
                           : which == 1 ? MakeHumanConfig()
                                        : MakeCophirConfig(cophir_n);
    // Encrypted construction (Table 3). CoPhIR uses the permutation-only
    // strategy (approximate search workload); the small sets store
    // distances to support the precise strategy as well.
    const auto strategy = which == 2
                              ? secure::InsertStrategy::kPermutationOnly
                              : secure::InsertStrategy::kPrecise;
    CostRow encrypted;
    { SecureStack stack = BuildSecureStack(config, strategy, &encrypted); }
    encrypted_rows.push_back(encrypted);

    // Plain construction (Table 4) on identical data and parameters.
    CostRow plain;
    { PlainStack stack = BuildPlainStack(config, &plain); }
    plain_rows.push_back(plain);
  }

  PrintCostTable("Table 3: Index construction of encrypted M-Index", columns,
                 encrypted_rows, /*construction=*/true);
  PrintCostTable("Table 4: Index construction of basic (non-encrypted) "
                 "M-Index",
                 columns, plain_rows, /*construction=*/true);

  std::printf(
      "\nPaper reference (overall seconds): Table 3: YEAST 0.506, HUMAN "
      "0.800, CoPhIR(1M) 1707.7; Table 4: YEAST 0.315, HUMAN 0.490, "
      "CoPhIR(1M) 1705.2.\n"
      "Shape checks: (a) encrypted overhead visible on YEAST/HUMAN, (b) "
      "encrypted ~= plain for CoPhIR (distance cost dominates), (c) "
      "distance time identical across variants.\n");
}

}  // namespace
}  // namespace bench
}  // namespace simcloud

int main() {
  simcloud::bench::Run();
  return 0;
}
