// Pipelined transport throughput: qps and p99 latency of the epoll
// engine at connection counts {1, 64, 512} x in-flight depth {1, 8},
// plus the process thread count with 512 idle connections open.
//
// Two workloads per cell:
//   * ping  — kPing round trips (no server-side work): pure transport
//     cost, the cleanest view of what pipelining buys;
//   * knn   — kApproxKnnBatch with 8 queries against a 2,000-object
//     index: a realistic request with real server time attached.
//
// Acceptance gates (the run aborts when violated):
//   * on a SINGLE connection, ping qps at depth 8 must be >= 1.5x ping
//     qps at depth 1 — pipelining must actually overlap round trips;
//   * with 512 idle connections open the server must be running on its
//     fixed thread pool: process thread count < 32 (the old engine spent
//     one thread per connection, i.e. > 512);
//   * SECURE CHANNEL: the same handler behind a ChannelPolicy::kSecure
//     server must deliver >= 0.5x the plaintext depth-8 ping qps at
//     depth 8 on one connection — the AEAD record layer's overhead must
//     stay bounded. The secure section also reports handshake latency
//     (mean / p99 over repeated connects) and encrypted knn-batch
//     throughput.
//
// Usage: bench_pipeline [--smoke] [--metrics-overhead]
//   --smoke             fewer connections (1, 16, 128 idle) and ops, for CI.
//   --metrics-overhead  skip the throughput matrix; instead gate the
//                       cost of the obs registry: single-connection
//                       depth-8 ping p99 with metrics on must stay
//                       within 5% of the same cell with
//                       obs::SetMetricsEnabled(false) (best-of-N min
//                       p99 per mode, alternated to cancel drift).

#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "crypto/cpu_features.h"
#include "data/synthetic.h"
#include "metric/dataset.h"
#include "mindex/pivot_selection.h"
#include "net/tcp.h"
#include "obs/metrics.h"
#include "secure/client.h"
#include "secure/secret_key.h"
#include "secure/server.h"
#include "secure/session.h"

namespace simcloud {
namespace bench {
namespace {

int ProcessThreadCount() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return std::atoi(line.c_str() + 8);
    }
  }
  return -1;
}

void RaiseFdLimit() {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) == 0 && limit.rlim_cur < 4096) {
    limit.rlim_cur = std::min<rlim_t>(4096, limit.rlim_max);
    ::setrlimit(RLIMIT_NOFILE, &limit);
  }
}

struct CellResult {
  double qps = 0;
  double p99_us = 0;
};

/// Runs `ops_per_conn` requests on each of `num_conns` connections from
/// `num_threads` client threads, keeping up to `depth` requests in
/// flight per connection. Per-op latency is submit -> collect.
CellResult RunCell(uint16_t port, size_t num_conns, size_t depth,
                   size_t ops_per_conn, const Bytes& request,
                   net::ChannelPolicy policy = net::ChannelPolicy::kPlaintext,
                   const net::SecureChannelOptions& secure =
                       net::SecureChannelOptions()) {
  const size_t num_threads = std::min<size_t>(num_conns, 8);
  std::vector<std::vector<double>> latencies(num_threads);
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  std::atomic<bool> failed{false};

  Stopwatch wall;
  for (size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      struct ConnState {
        std::unique_ptr<net::TcpTransport> transport;
        std::deque<std::pair<uint64_t, Stopwatch>> window;
        size_t submitted = 0;
        size_t collected = 0;
      };
      std::vector<ConnState> conns;
      for (size_t c = t; c < num_conns; c += num_threads) {
        auto transport =
            net::TcpTransport::Connect("127.0.0.1", port, policy, secure);
        if (!transport.ok()) {
          failed.store(true);
          return;
        }
        ConnState state;
        state.transport = std::move(*transport);
        conns.push_back(std::move(state));
      }
      latencies[t].reserve(conns.size() * ops_per_conn);
      // Round-robin across this thread's connections: top the window up
      // to `depth`, then collect the oldest ticket.
      bool work_left = true;
      while (work_left && !failed.load()) {
        work_left = false;
        for (ConnState& conn : conns) {
          while (conn.submitted < ops_per_conn &&
                 conn.window.size() < depth) {
            auto ticket = conn.transport->Submit(request);
            if (!ticket.ok()) {
              failed.store(true);
              return;
            }
            conn.window.emplace_back(*ticket, Stopwatch());
            conn.submitted++;
          }
          if (!conn.window.empty()) {
            auto [ticket, watch] = std::move(conn.window.front());
            conn.window.pop_front();
            auto response = conn.transport->Collect(ticket);
            if (!response.ok()) {
              failed.store(true);
              return;
            }
            latencies[t].push_back(watch.ElapsedNanos() / 1e3);
            conn.collected++;
          }
          if (conn.collected < ops_per_conn) work_left = true;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const double seconds = wall.ElapsedSeconds();
  if (failed.load()) {
    std::fprintf(stderr, "benchmark cell failed (transport error)\n");
    std::exit(1);
  }

  std::vector<double> merged;
  for (auto& per_thread : latencies) {
    merged.insert(merged.end(), per_thread.begin(), per_thread.end());
  }
  std::sort(merged.begin(), merged.end());
  CellResult result;
  result.qps = static_cast<double>(merged.size()) / seconds;
  result.p99_us = merged.empty() ? 0 : merged[merged.size() * 99 / 100];
  return result;
}

void Run(bool smoke) {
  RaiseFdLimit();

  // A 2,000-object encrypted index for the knn workload.
  data::MixtureOptions mixture;
  mixture.num_objects = 2000;
  mixture.dimension = 8;
  mixture.num_clusters = 6;
  mixture.seed = 41;
  auto objects = data::MakeGaussianMixture(mixture);
  auto metric = std::make_shared<metric::L2Distance>();
  auto pivots = mindex::PivotSet::SelectRandom(objects, 16, 42);
  if (!pivots.ok()) std::exit(1);
  auto key = secure::SecretKey::Create(std::move(pivots).value(),
                                       Bytes(16, 0x51));
  if (!key.ok()) std::exit(1);

  mindex::MIndexOptions options;
  options.num_pivots = 16;
  options.bucket_capacity = 50;
  options.max_level = 4;
  auto handler = secure::EncryptedMIndexServer::Create(options);
  if (!handler.ok()) std::exit(1);
  net::TcpServer server(handler->get());
  if (!server.Start(0).ok()) std::exit(1);

  {
    auto transport = net::TcpTransport::Connect("127.0.0.1", server.port());
    if (!transport.ok()) std::exit(1);
    secure::EncryptionClient owner(*key, metric, transport->get());
    if (!owner.InsertBulk(objects, secure::InsertStrategy::kPrecise, 500)
             .ok()) {
      std::exit(1);
    }
  }

  // Pre-encode the two request bodies once; the bench drives raw
  // transports so client-side crypto does not blur the transport cost.
  const Bytes ping_request = secure::EncodePingRequest();
  Bytes knn_request;
  {
    auto transport = net::TcpTransport::Connect("127.0.0.1", server.port());
    if (!transport.ok()) std::exit(1);
    secure::EncryptionClient probe(*key, metric, transport->get());
    Rng rng(43);
    std::vector<metric::VectorObject> batch;
    for (int q = 0; q < 8; ++q) {
      batch.push_back(objects[rng.NextBounded(objects.size())]);
    }
    auto pending = probe.SubmitApproxKnnBatch(batch, 3, 40);
    if (!pending.ok()) std::exit(1);
    if (!probe.CollectApproxKnnBatch(&*pending).ok()) std::exit(1);
    // Rebuild the same wire request for the raw-transport cells.
    std::vector<mindex::KnnQuery> wire;
    for (const auto& query : batch) {
      mindex::KnnQuery item;
      item.signature.permutation = mindex::DistancesToPermutation(
          key->pivots().ComputeDistances(query, *metric));
      item.cand_size = 40;
      wire.push_back(std::move(item));
    }
    knn_request = secure::EncodeApproxKnnBatchRequest(wire);
  }

  const std::vector<size_t> conn_counts =
      smoke ? std::vector<size_t>{1, 16} : std::vector<size_t>{1, 64, 512};
  const std::vector<size_t> depths = {1, 8};
  const size_t ping_ops = smoke ? 2000 : 5000;
  const size_t knn_ops = smoke ? 200 : 500;

  std::printf("%s\n",
              obs::RuntimeBanner(
                  "bench_pipeline",
                  std::string("io_engine=") + server.io_engine_name() +
                      " workers=" + std::to_string(server.worker_threads()))
                  .c_str());
  std::printf("%-6s %6s %6s %14s %12s %14s %12s\n", "work", "conns", "depth",
              "qps", "p99_us", "", "");
  double single_conn_ping_qps[2] = {0, 0};  // [depth1, depth8]
  for (size_t conns : conn_counts) {
    for (size_t depth : depths) {
      const size_t per_conn = std::max<size_t>(ping_ops / conns, 20);
      CellResult ping = RunCell(server.port(), conns, depth, per_conn,
                                ping_request);
      std::printf("%-6s %6zu %6zu %14.0f %12.1f\n", "ping", conns, depth,
                  ping.qps, ping.p99_us);
      if (conns == 1) {
        single_conn_ping_qps[depth == 1 ? 0 : 1] =
            std::max(single_conn_ping_qps[depth == 1 ? 0 : 1], ping.qps);
      }
      const size_t knn_per_conn = std::max<size_t>(knn_ops / conns, 5);
      CellResult knn = RunCell(server.port(), conns, depth, knn_per_conn,
                               knn_request);
      std::printf("%-6s %6zu %6zu %14.0f %12.1f\n", "knn8", conns, depth,
                  knn.qps, knn.p99_us);
    }
  }

  // Re-measure the single-connection ping cells once more and keep the
  // best of each: the 1-CPU CI boxes are noisy.
  single_conn_ping_qps[0] = std::max(
      single_conn_ping_qps[0],
      RunCell(server.port(), 1, 1, ping_ops, ping_request).qps);
  single_conn_ping_qps[1] = std::max(
      single_conn_ping_qps[1],
      RunCell(server.port(), 1, 8, ping_ops, ping_request).qps);
  const double speedup = single_conn_ping_qps[1] / single_conn_ping_qps[0];
  std::printf("single-connection ping: depth1 %.0f qps, depth8 %.0f qps "
              "(%.2fx)\n",
              single_conn_ping_qps[0], single_conn_ping_qps[1], speedup);

  // Idle-connection cost: the engine must not spend a thread per
  // connection.
  const size_t idle_count = smoke ? 128 : 512;
  {
    std::vector<std::unique_ptr<net::TcpTransport>> idle;
    idle.reserve(idle_count);
    for (size_t i = 0; i < idle_count; ++i) {
      auto transport = net::TcpTransport::Connect("127.0.0.1", server.port());
      if (!transport.ok()) {
        std::fprintf(stderr, "idle connect %zu failed: %s\n", i,
                     transport.status().ToString().c_str());
        std::exit(1);
      }
      idle.push_back(std::move(*transport));
    }
    Stopwatch settle;
    while (server.active_connections() < idle_count &&
           settle.ElapsedSeconds() < 10) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    const int threads = ProcessThreadCount();
    std::printf("%zu idle connections: %zu live on the server, %d process "
                "threads (1 event loop + %zu workers + main)\n",
                idle_count, server.active_connections(), threads,
                server.worker_threads());
    // One request through the crowd still works.
    auto response = idle[idle_count / 2]->Call(ping_request);
    if (!response.ok()) {
      std::fprintf(stderr, "call among idle connections failed\n");
      std::exit(1);
    }
    if (threads < 0 || threads >= 32) {
      std::fprintf(stderr,
                   "FAIL: %d process threads with %zu idle connections — "
                   "expected O(worker pool), not O(connections)\n",
                   threads, idle_count);
      std::exit(1);
    }
  }

  if (speedup < 1.5) {
    std::fprintf(stderr,
                 "FAIL: depth-8 pipelining is %.2fx depth-1 qps on one "
                 "connection (acceptance gate: >= 1.5x)\n",
                 speedup);
    std::exit(1);
  }

  // -------------------------------------------------------------------
  // Secure-channel section: the same handler behind a kSecure listener.
  // -------------------------------------------------------------------
  net::SecureChannelOptions channel_options =
      secure::SecureSessionOptions(*key);
  net::TcpServerOptions secure_options;
  secure_options.channel_policy = net::ChannelPolicy::kSecure;
  secure_options.secure_channel = channel_options;
  net::TcpServer secure_server(handler->get(), secure_options);
  if (!secure_server.Start(0).ok()) std::exit(1);

  // Handshake latency: TCP connect + 1-RTT PSK handshake, repeated.
  {
    const size_t kHandshakes = smoke ? 30 : 100;
    std::vector<double> micros;
    micros.reserve(kHandshakes);
    for (size_t i = 0; i < kHandshakes; ++i) {
      Stopwatch watch;
      auto transport = net::TcpTransport::Connect(
          "127.0.0.1", secure_server.port(), net::ChannelPolicy::kSecure,
          channel_options);
      if (!transport.ok()) {
        std::fprintf(stderr, "secure connect failed: %s\n",
                     transport.status().ToString().c_str());
        std::exit(1);
      }
      micros.push_back(watch.ElapsedNanos() / 1e3);
    }
    std::sort(micros.begin(), micros.end());
    double sum = 0;
    for (double m : micros) sum += m;
    std::printf("secure handshake latency: mean %.1f us, p99 %.1f us "
                "(%zu connects)\n",
                sum / micros.size(), micros[micros.size() * 99 / 100],
                kHandshakes);
  }

  std::printf("secure-channel cells (same handler, AEAD records):\n");
  double secure_ping_depth8 = 0;
  for (size_t depth : depths) {
    CellResult ping =
        RunCell(secure_server.port(), 1, depth, ping_ops, ping_request,
                net::ChannelPolicy::kSecure, channel_options);
    std::printf("%-6s %6d %6zu %14.0f %12.1f\n", "sping", 1, depth, ping.qps,
                ping.p99_us);
    if (depth == 8) secure_ping_depth8 = ping.qps;
    CellResult knn = RunCell(secure_server.port(), 1, depth,
                             std::max<size_t>(knn_ops, 5), knn_request,
                             net::ChannelPolicy::kSecure, channel_options);
    std::printf("%-6s %6d %6zu %14.0f %12.1f\n", "sknn8", 1, depth, knn.qps,
                knn.p99_us);
  }
  // Re-measure once and keep the best (noisy 1-CPU CI boxes).
  secure_ping_depth8 = std::max(
      secure_ping_depth8,
      RunCell(secure_server.port(), 1, 8, ping_ops, ping_request,
              net::ChannelPolicy::kSecure, channel_options)
          .qps);
  const double secure_ratio = secure_ping_depth8 / single_conn_ping_qps[1];
  std::printf("secure depth-8 ping: %.0f qps = %.2fx plaintext depth-8\n",
              secure_ping_depth8, secure_ratio);
  secure_server.Stop();
  // With the AES-NI + SHA-NI kernels the record layer's per-frame crypto
  // is a rounding error, so the bar rises; the scalar reference keeps
  // the original 0.5x bound (it still caps the wire at tens of MB/s).
  const bool crypto_accelerated =
      crypto::AesAccelerated() && crypto::ShaAccelerated();
  const double secure_gate = crypto_accelerated ? 0.8 : 0.5;
  if (secure_ratio < secure_gate) {
    std::fprintf(stderr,
                 "FAIL: secured depth-8 ping is %.2fx the plaintext qps "
                 "(acceptance gate: >= %.1fx with %s crypto)\n",
                 secure_ratio, secure_gate,
                 crypto_accelerated ? "accelerated" : "scalar");
    std::exit(1);
  }

  std::printf("bench_pipeline OK (pipelining %.2fx >= 1.5x, %zu idle conns "
              "on a fixed pool, secure channel %.2fx >= %.1fx)\n",
              speedup, idle_count, secure_ratio, secure_gate);
  server.Stop();
}

/// The ci.sh observability gate: instrumented depth-8 single-connection
/// ping p99 must stay within 5% of the same cell with the registry
/// switched off in-process. Min-of-N per mode, modes alternated, so a
/// background hiccup in one round cannot fail the gate; a 1 us epsilon
/// keeps the 5% from collapsing to noise on sub-20 us pings.
void RunMetricsOverhead(bool smoke) {
  RaiseFdLimit();
  mindex::MIndexOptions options;
  options.num_pivots = 16;
  options.bucket_capacity = 50;
  options.max_level = 4;
  auto handler = secure::EncryptedMIndexServer::Create(options);
  if (!handler.ok()) std::exit(1);
  net::TcpServer server(handler->get());
  if (!server.Start(0).ok()) std::exit(1);

  const Bytes ping_request = secure::EncodePingRequest();
  const size_t ops = smoke ? 4000 : 20000;
  const int kRounds = 6;
  const bool was_enabled = obs::MetricsEnabled();

  // Warm up connections, worker pool, and allocator before measuring.
  RunCell(server.port(), 1, 8, ops / 4, ping_request);

  // Alternate which mode runs first each round: the second cell of a
  // pair tends to run marginally faster (warmer caches, settled clock),
  // and a fixed order would credit that bias entirely to one mode.
  double on_p99 = 0, off_p99 = 0;
  for (int round = 0; round < kRounds; ++round) {
    const bool on_first = (round % 2) == 0;
    double on = 0, off = 0;
    for (int leg = 0; leg < 2; ++leg) {
      const bool measure_on = (leg == 0) == on_first;
      obs::SetMetricsEnabled(measure_on);
      const double p99 =
          RunCell(server.port(), 1, 8, ops, ping_request).p99_us;
      (measure_on ? on : off) = p99;
    }
    on_p99 = round == 0 ? on : std::min(on_p99, on);
    off_p99 = round == 0 ? off : std::min(off_p99, off);
  }
  obs::SetMetricsEnabled(was_enabled);

  const double budget_us = off_p99 * 1.05 + 1.0;
  std::printf("metrics overhead: depth-8 ping p99 %.1f us instrumented vs "
              "%.1f us off (budget %.1f us)\n",
              on_p99, off_p99, budget_us);
  if (on_p99 > budget_us) {
    std::fprintf(stderr,
                 "FAIL: instrumented ping p99 %.1f us exceeds %.1f us "
                 "(metrics-off p99 %.1f us + 5%% + 1 us)\n",
                 on_p99, budget_us, off_p99);
    std::exit(1);
  }
  std::printf("bench_pipeline metrics-overhead OK (%.1f us <= %.1f us)\n",
              on_p99, budget_us);
  server.Stop();
}

}  // namespace
}  // namespace bench
}  // namespace simcloud

int main(int argc, char** argv) {
  bool smoke = false;
  bool metrics_overhead = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--metrics-overhead") == 0) {
      metrics_overhead = true;
    }
  }
  if (metrics_overhead) {
    simcloud::bench::RunMetricsOverhead(smoke);
  } else {
    simcloud::bench::Run(smoke);
  }
  return 0;
}
