// Churn workload: disk-size amplification, query throughput, and the
// background-compaction pause gate under a delete-heavy stream.
//
// Two CoPhIR-style disk servers ingest the IDENTICAL wire requests (each
// object is encrypted once, so both logs hold the same ciphertext bytes);
// the churn phase then deletes 60% of the objects in kDeleteBatch rounds
// while timing kApproxKnnBatch rounds between deletions. One server
// compacts automatically (compaction_trigger = 0.3; the passes run on the
// server's background thread, concurrent with these very queries), the
// other never compacts — its append-only log keeps every dead byte, which
// is exactly the unbounded space amplification the compactor exists to
// fix.
//
// Printed per server: final log bytes, live bytes, amplification
// (log / live), worst amplification seen during the churn, and
// queries/sec measured DURING the churn. A third phase then probes the
// pause directly: the (still 60%-dead) append-only server answers timed
// query batches with no pass running, and again WHILE a forced full pass
// rewrites its log concurrently. The run aborts unless
//   * the compacting log ends at <= 1.5x the live payload bytes,
//   * every post-churn query response is byte-identical between the two
//     servers (compaction must never change an answer),
//   * p99 query latency DURING the background pass stays within 2x the
//     no-compaction baseline, and
//   * the pass held the writer lock (begin + swap/remap slices) for at
//     most 250 ms total — the stall budget that used to be the whole
//     rewrite,
// so this harness doubles as the acceptance gate for the compactor.
//
// Usage: bench_churn [--smoke]
//   --smoke  tiny collection / few rounds, for CI.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/clock.h"
#include "common/rng.h"
#include "mindex/permutation.h"
#include "mindex/pivot_selection.h"
#include "secure/protocol.h"
#include "secure/secret_key.h"
#include "secure/server.h"

namespace simcloud {
namespace bench {
namespace {

struct ChurnServer {
  const char* label;
  std::string disk_path;
  std::unique_ptr<secure::EncryptedMIndexServer> server;
  uint64_t queries_timed = 0;
  int64_t query_nanos = 0;

  double QpsDuringChurn() const {
    return query_nanos > 0
               ? static_cast<double>(queries_timed) / (query_nanos / 1e9)
               : 0;
  }
};

Bytes MustHandle(ChurnServer& churn, const Bytes& request,
                 const char* what) {
  auto response = churn.server->Handle(request);
  if (!response.ok()) {
    std::fprintf(stderr, "[%s] %s failed: %s\n", churn.label, what,
                 response.status().ToString().c_str());
    std::abort();
  }
  return std::move(response).value();
}

mindex::IndexStats StatsOf(ChurnServer& churn) {
  auto stats =
      secure::DecodeStatsResponse(MustHandle(churn,
                                             secure::EncodeGetStatsRequest(),
                                             "stats"));
  if (!stats.ok()) std::abort();
  return *stats;
}

void Run(bool smoke) {
  const size_t num_objects = smoke ? 2500 : 20000;
  const size_t delete_rounds = smoke ? 5 : 20;
  const size_t queries_per_round = smoke ? 32 : 64;
  const size_t cand_size = smoke ? 100 : 300;
  // Delete 60% of the collection — past the >= 50% the acceptance
  // criterion asks for.
  const size_t num_deletes = (num_objects * 3) / 5;
  const size_t deletes_per_round = num_deletes / delete_rounds;
  const size_t bulk_size = 1000;

  DatasetConfig config = MakeCophirConfig(num_objects);
  mindex::PivotSelectionOptions pivot_options;
  pivot_options.strategy = config.pivot_strategy;
  pivot_options.count = config.index_options.num_pivots;
  pivot_options.seed = config.pivot_seed;
  auto pivots = mindex::SelectPivots(config.dataset.objects(),
                                     *config.dataset.distance(),
                                     pivot_options);
  if (!pivots.ok()) std::abort();
  auto key = secure::SecretKey::Create(std::move(*pivots), Bytes(16, 0x5C));
  if (!key.ok()) std::abort();

  // Encrypt every object ONCE and precompute its routing metadata, so the
  // two servers receive byte-identical insert requests and store
  // byte-identical ciphertexts — the precondition for comparing their
  // query responses byte for byte.
  std::vector<secure::InsertItem> items;
  std::vector<mindex::Permutation> permutations;
  items.reserve(num_objects);
  permutations.reserve(num_objects);
  for (const metric::VectorObject& object : config.dataset.objects()) {
    std::vector<float> distances =
        key->pivots().ComputeDistances(object, *config.dataset.distance());
    permutations.push_back(mindex::DistancesToPermutation(distances));
    secure::InsertItem item;
    item.id = object.id();
    item.pivot_distances = std::move(distances);
    auto ciphertext = key->EncryptObject(object);
    if (!ciphertext.ok()) std::abort();
    item.payload = std::move(*ciphertext);
    items.push_back(std::move(item));
  }
  std::vector<Bytes> insert_requests;
  for (size_t offset = 0; offset < items.size(); offset += bulk_size) {
    const size_t n = std::min(bulk_size, items.size() - offset);
    insert_requests.push_back(secure::EncodeInsertBatchRequest(
        {items.begin() + offset, items.begin() + offset + n}));
  }

  auto make_server = [&](const char* label, double trigger) {
    ChurnServer churn;
    churn.label = label;
    churn.disk_path =
        "/tmp/simcloud_bench_churn_" + std::string(label) + ".bin";
    mindex::MIndexOptions options = config.index_options;
    options.disk_path = churn.disk_path;
    options.cache_bytes = 8ull << 20;
    options.compaction_trigger = trigger;
    auto server = secure::EncryptedMIndexServer::Create(options);
    if (!server.ok()) {
      std::fprintf(stderr, "server create failed: %s\n",
                   server.status().ToString().c_str());
      std::abort();
    }
    churn.server = std::move(*server);
    for (const Bytes& request : insert_requests) {
      MustHandle(churn, request, "insert");
    }
    return churn;
  };
  ChurnServer compacting = make_server("compacting", 0.3);
  ChurnServer append_only = make_server("append_only", 0.0);
  const uint64_t log_after_build = StatsOf(append_only).storage_bytes;

  // Pre-build the churn stream: shuffled delete batches and hot-ish
  // query batches (queries drawn from the full collection — deleted
  // objects remain perfectly valid query centers).
  Rng rng(4242);
  std::vector<size_t> order(num_objects);
  for (size_t i = 0; i < num_objects; ++i) order[i] = i;
  rng.Shuffle(order);

  auto make_query_request = [&](uint64_t seed, size_t count) {
    Rng query_rng(seed);
    std::vector<mindex::KnnQuery> queries;
    queries.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      const size_t pick = query_rng.NextBounded(num_objects);
      mindex::KnnQuery query;
      query.signature.pivot_distances = items[pick].pivot_distances;
      query.signature.permutation = permutations[pick];
      query.cand_size = cand_size;
      queries.push_back(std::move(query));
    }
    return secure::EncodeApproxKnnBatchRequest(queries);
  };

  // Churn: alternate delete batches and timed query batches.
  size_t next_victim = 0;
  double worst_amplification = 1.0;
  for (size_t round = 0; round < delete_rounds; ++round) {
    std::vector<secure::DeleteItem> victims;
    victims.reserve(deletes_per_round);
    for (size_t i = 0; i < deletes_per_round; ++i) {
      const size_t pick = order[next_victim++];
      victims.push_back(
          secure::DeleteItem{items[pick].id, permutations[pick]});
    }
    const Bytes delete_request = secure::EncodeDeleteBatchRequest(victims);
    MustHandle(compacting, delete_request, "delete batch");
    MustHandle(append_only, delete_request, "delete batch");

    const Bytes query_request =
        make_query_request(9000 + round, queries_per_round);
    for (ChurnServer* churn : {&compacting, &append_only}) {
      Stopwatch watch;
      MustHandle(*churn, query_request, "query batch");
      churn->query_nanos += watch.ElapsedNanos();
      churn->queries_timed += queries_per_round;
    }

    const mindex::IndexStats stats = StatsOf(compacting);
    if (stats.live_storage_bytes > 0) {
      worst_amplification = std::max(
          worst_amplification,
          static_cast<double>(stats.storage_bytes) /
              static_cast<double>(stats.live_storage_bytes));
    }
  }

  // Quiesce: compaction now runs on the server's background thread, so
  // an unforced pass (gated on the trigger, and serialized with any pass
  // still in flight) drains the backlog before the final accounting.
  MustHandle(compacting, secure::EncodeCompactRequest(/*force=*/false),
             "drain");

  // Verification: after the churn, batched and single query responses
  // must be byte-identical between the two servers.
  bool identical = true;
  {
    const Bytes request = make_query_request(777, queries_per_round);
    identical = MustHandle(compacting, request, "verify batch") ==
                MustHandle(append_only, request, "verify batch");
  }
  Rng verify_rng(778);
  for (size_t i = 0; i < 8 && identical; ++i) {
    const size_t pick = verify_rng.NextBounded(num_objects);
    mindex::QuerySignature signature;
    signature.pivot_distances = items[pick].pivot_distances;
    signature.permutation = permutations[pick];
    const Bytes request =
        secure::EncodeApproxKnnRequest(signature, cand_size);
    identical = MustHandle(compacting, request, "verify single") ==
                MustHandle(append_only, request, "verify single");
  }

  const mindex::IndexStats final_compacting = StatsOf(compacting);
  const mindex::IndexStats final_append = StatsOf(append_only);
  auto amplification = [](const mindex::IndexStats& stats) {
    return stats.live_storage_bytes > 0
               ? static_cast<double>(stats.storage_bytes) /
                     static_cast<double>(stats.live_storage_bytes)
               : 1.0;
  };
  const double amp_compacting = amplification(final_compacting);
  const double amp_append = amplification(final_append);

  TablePrinter table(
      "Delete-heavy churn (" + std::to_string(num_objects) + " objects, " +
          std::to_string(num_deletes) +
          " deletes): disk amplification and 30-NN batch throughput during "
          "churn",
      {"log MiB", "live MiB", "amplification", "worst amp", "qps"});
  table.AddRow("compacting (trigger 0.3)",
               {final_compacting.storage_bytes / 1048576.0,
                final_compacting.live_storage_bytes / 1048576.0,
                amp_compacting, worst_amplification,
                compacting.QpsDuringChurn()});
  table.AddRow("append-only (no compaction)",
               {final_append.storage_bytes / 1048576.0,
                final_append.live_storage_bytes / 1048576.0, amp_append,
                amp_append, append_only.QpsDuringChurn()});
  table.Print();
  std::printf("log after build: %.1f MiB; responses byte-identical: %s\n",
              log_after_build / 1048576.0, identical ? "yes" : "NO");

  // Acceptance gate.
  if (amp_compacting > 1.5) {
    std::fprintf(stderr,
                 "FAIL: compacting log is %.2fx the live bytes (> 1.5x)\n",
                 amp_compacting);
    std::exit(1);
  }
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: compaction changed a query response (responses "
                 "differ from the uncompacted reference)\n");
    std::exit(1);
  }

  // ---- Phase 3: the background-pause gate. The append-only server still
  // carries the full 60%-dead log, so a forced pass has the maximum
  // amount of rewriting to do. Measure p99 latency of identical query
  // batches with the pass idle, then with the pass running concurrently:
  // the rewrite shares the index lock with searches, so the only
  // tolerated cost is interleaving — not a rewrite-length stall.
  // 32-query batches keep one request's service time well above a
  // scheduler quantum, so the ratio measures lock behaviour rather than
  // single-core timeslicing noise.
  const size_t probe_batches = smoke ? 60 : 150;
  const size_t probe_batch_size = 32;
  std::vector<Bytes> probe_requests;
  probe_requests.reserve(probe_batches);
  for (size_t i = 0; i < probe_batches; ++i) {
    probe_requests.push_back(
        make_query_request(31000 + i, probe_batch_size));
  }
  auto percentile = [](std::vector<int64_t> nanos, double p) {
    std::sort(nanos.begin(), nanos.end());
    return nanos.empty()
               ? int64_t{0}
               : nanos[static_cast<size_t>((nanos.size() - 1) * p)];
  };
  std::vector<int64_t> baseline_nanos;
  baseline_nanos.reserve(probe_batches);
  for (const Bytes& request : probe_requests) {
    Stopwatch watch;
    MustHandle(append_only, request, "probe baseline");
    baseline_nanos.push_back(watch.ElapsedNanos());
  }

  std::atomic<bool> pass_done{false};
  mindex::CompactionReport probe_report;
  std::thread compact_thread([&] {
    auto decoded = secure::DecodeCompactResponse(MustHandle(
        append_only, secure::EncodeCompactRequest(/*force=*/true),
        "probe compact"));
    if (!decoded.ok()) std::abort();
    probe_report = *decoded;
    pass_done.store(true, std::memory_order_release);
  });
  std::vector<int64_t> during_nanos;
  during_nanos.reserve(probe_requests.size());
  size_t next_request = 0;
  // Sample while the pass runs; if it finishes very quickly, keep going
  // to a minimum sample count (those tail samples only make the gate
  // stricter for the pass, never easier for us).
  while (!pass_done.load(std::memory_order_acquire) ||
         during_nanos.size() < 32) {
    if (during_nanos.size() >= 4 * probe_requests.size()) break;
    const Bytes& request = probe_requests[next_request++ % probe_requests.size()];
    Stopwatch watch;
    MustHandle(append_only, request, "probe during");
    during_nanos.push_back(watch.ElapsedNanos());
  }
  compact_thread.join();

  const double p99_base = percentile(baseline_nanos, 0.99) / 1e6;
  const double p99_during = percentile(during_nanos, 0.99) / 1e6;
  const double pause_ms = probe_report.pause_nanos / 1e6;
  std::printf(
      "pause probe: %zu-query batches, p99 %.2f ms idle vs %.2f ms during "
      "a background pass (%.2fx); pass moved %llu payloads, writer-lock "
      "pause %.3f ms\n",
      probe_batch_size, p99_base, p99_during,
      p99_base > 0 ? p99_during / p99_base : 0.0,
      static_cast<unsigned long long>(probe_report.payloads_moved),
      pause_ms);

  if (!probe_report.compacted || probe_report.payloads_moved == 0) {
    std::fprintf(stderr, "FAIL: the pause-probe pass did not compact\n");
    std::exit(1);
  }
  if (p99_base > 0 && p99_during > 2.0 * p99_base) {
    std::fprintf(stderr,
                 "FAIL: p99 query latency during a background pass is "
                 "%.2f ms vs %.2f ms baseline (> 2x)\n",
                 p99_during, p99_base);
    std::exit(1);
  }
  if (probe_report.pause_nanos > 250 * 1000 * 1000ull) {
    std::fprintf(stderr,
                 "FAIL: the pass held the writer lock %.1f ms (> 250 ms "
                 "budget) — the stall is supposed to be swap+remap only\n",
                 pause_ms);
    std::exit(1);
  }

  std::remove(compacting.disk_path.c_str());
  std::remove(append_only.disk_path.c_str());
}

}  // namespace
}  // namespace bench
}  // namespace simcloud

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  simcloud::bench::Run(smoke);
  return 0;
}
