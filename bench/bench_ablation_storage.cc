// Ablation C: bucket capacity and storage backend (memory vs disk), on a
// CoPhIR-like subset. Justifies the paper's Table 2 choices (bucket 1000 +
// disk storage for the large set) by showing the cost of the extremes.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/clock.h"

namespace simcloud {
namespace bench {
namespace {

void Run() {
  const size_t n = 20000;  // subset: this ablation studies shape, not scale
  const size_t k = 30;
  const size_t cand_size = 2000;

  std::printf("Ablation: bucket capacity x storage backend "
              "(CoPhIR-like n=%zu, approx %zu-NN, |SC|=%zu, 50 queries)\n",
              n, k, cand_size);
  std::printf("%10s  %8s  %12s  %12s  %14s  %12s  %12s\n", "storage",
              "bucket", "build[s]", "recall[%]", "server[ms]", "leaves",
              "depth");

  for (auto storage : {mindex::StorageKind::kMemory,
                       mindex::StorageKind::kDisk}) {
    for (size_t bucket : {100u, 1000u, 5000u}) {
      DatasetConfig config = MakeCophirConfig(n);
      config.index_options.bucket_capacity = bucket;
      config.index_options.storage_kind = storage;
      if (storage == mindex::StorageKind::kDisk) {
        config.index_options.disk_path =
            "/tmp/simcloud_ablation_" + std::to_string(bucket) + ".bin";
      }

      const auto queries = config.dataset.SampleQueries(50, 2024);
      const auto exact = ComputeGroundTruth(config.dataset, queries, k);

      Stopwatch build;
      SecureStack stack = BuildSecureStack(
          config, secure::InsertStrategy::kPermutationOnly, nullptr);
      const double build_s = build.ElapsedSeconds();

      CostRow row = RunSecureKnnWorkload(stack, queries, exact, k, cand_size);
      auto stats = stack.client->GetServerStats();
      std::printf("%10s  %8zu  %12.3f  %12.2f  %14.4f  %12llu  %12llu\n",
                  storage == mindex::StorageKind::kMemory ? "memory" : "disk",
                  bucket, build_s, row.recall_pct, row.server_s * 1e3,
                  stats.ok() ? static_cast<unsigned long long>(
                                   stats->leaf_count)
                             : 0ull,
                  stats.ok() ? static_cast<unsigned long long>(
                                   stats->max_depth)
                             : 0ull);
    }
  }
  std::printf(
      "\nExpected shapes: small buckets -> deeper tree, finer cells "
      "(higher recall at fixed |SC|) but more tree overhead; disk storage "
      "adds a modest server-time cost over memory at identical recall.\n");
}

}  // namespace
}  // namespace bench
}  // namespace simcloud

int main() {
  simcloud::bench::Run();
  return 0;
}
