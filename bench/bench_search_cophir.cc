// Reproduces Table 6 (approximate 30-NN on CoPhIR, Encrypted M-Index) and
// Table 8 (same workload, basic non-encrypted M-Index).
//
// Workload: 100 random queries, k = 30, candidate-set sizes
// {500, 1k, 5k, 10k, 20k, 50k}. The collection scale defaults to 200k
// objects (SIMCLOUD_COPHIR_N overrides, up to the paper's 1M); candidate
// sizes above 10% of the collection are skipped to keep proportions
// meaningful at reduced scale.

#include <cstdio>

#include "bench/bench_common.h"

namespace simcloud {
namespace bench {
namespace {

void Run() {
  const size_t cophir_n = data::DefaultCophirSize();
  std::printf("bench_search_cophir: n=%zu (override with SIMCLOUD_COPHIR_N; "
              "paper used 1,000,000)\n",
              cophir_n);

  DatasetConfig config = MakeCophirConfig(cophir_n);
  const size_t k = 30;
  std::vector<size_t> cand_sizes = {500, 1000, 5000, 10000, 20000, 50000};

  const auto queries = config.dataset.SampleQueries(100, 4321);
  const auto exact = ComputeGroundTruth(config.dataset, queries, k);

  SecureStack secure_stack = BuildSecureStack(
      config, secure::InsertStrategy::kPermutationOnly, nullptr);
  PlainStack plain_stack = BuildPlainStack(config, nullptr);

  std::vector<std::string> columns;
  std::vector<CostRow> secure_rows, plain_rows;
  for (size_t cand_size : cand_sizes) {
    if (cand_size > cophir_n / 2) {
      std::printf("skipping |SC|=%zu (> 50%% of scaled collection)\n",
                  cand_size);
      continue;
    }
    columns.push_back(std::to_string(cand_size));
    secure_rows.push_back(
        RunSecureKnnWorkload(secure_stack, queries, exact, k, cand_size));
    plain_rows.push_back(
        RunPlainKnnWorkload(plain_stack, queries, exact, k, cand_size));
  }

  PrintCostTable(
      "Table 6: Approximate 30-NN using the Encrypted M-Index (CoPhIR)",
      columns, secure_rows, /*construction=*/false);
  PrintCostTable(
      "Table 8: Approx. 30-NN using basic (non-encrypted) M-Index (CoPhIR)",
      columns, plain_rows, /*construction=*/false);

  std::printf(
      "\nPaper reference (1M objects): encrypted recall 7.6 -> 87.1 %% as "
      "|SC| grows 500 -> 50k (~5%% of collection for ~87%%); encrypted "
      "communication 460 kB -> 46 MB (linear); plain communication constant "
      "~26 kB; server/client time ratio ~1/5 on the encrypted variant "
      "(client pays the expensive distance function); encrypted overall "
      "~3x plain.\n"
      "At reduced scale, compare candidate sizes as fractions of n: e.g. "
      "5%% of the collection should reach comparable recall.\n");
}

}  // namespace
}  // namespace bench
}  // namespace simcloud

int main() {
  simcloud::bench::Run();
  return 0;
}
