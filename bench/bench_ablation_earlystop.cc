// Ablation G (figure-style): early-stopping candidate refinement.
//
// Section 5.3 of the paper observes that the candidate set is pre-ranked,
// so the client "can choose to decrypt and compute distances only for
// candidates with the highest rank". ApproxKnnEarlyStop implements that
// with a sound stop rule (pivot-filtering lower bounds); this harness
// measures how many decryptions it saves on YEAST as the candidate
// budget grows, at identical answer quality.

#include <cstdio>

#include "bench/bench_common.h"

namespace simcloud {
namespace bench {
namespace {

void Run() {
  const size_t k = 30;

  DatasetConfig config = MakeYeastConfig();
  const auto queries = config.dataset.SampleQueries(100, 999);
  const auto exact = ComputeGroundTruth(config.dataset, queries, k);

  SecureStack stack =
      BuildSecureStack(config, secure::InsertStrategy::kPrecise, nullptr);

  std::printf(
      "Ablation: early-stop refinement (YEAST, approx %zu-NN, "
      "100 queries, precise-strategy index)\n",
      k);
  std::printf("%10s  %14s  %14s  %10s  %12s  %12s\n", "|SC|",
              "decrypted/full", "decrypted/ES", "saved[%]", "recall-full",
              "recall-ES");

  for (size_t cand_size : {150, 300, 600, 1500}) {
    stack.client->ResetCosts();
    double recall_full = 0;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      auto answer = stack.client->ApproxKnn(queries[qi], k, cand_size);
      if (!answer.ok()) return;
      size_t hits = 0;
      for (const auto& n : *answer) {
        for (const auto& e : exact[qi]) {
          if (n.id == e.id) {
            ++hits;
            break;
          }
        }
      }
      recall_full += 100.0 * hits / exact[qi].size();
    }
    recall_full /= queries.size();
    const double full_decrypted =
        static_cast<double>(stack.client->costs().candidates_decrypted) /
        queries.size();

    stack.client->ResetCosts();
    double recall_early = 0;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      auto answer =
          stack.client->ApproxKnnEarlyStop(queries[qi], k, cand_size);
      if (!answer.ok()) return;
      size_t hits = 0;
      for (const auto& n : *answer) {
        for (const auto& e : exact[qi]) {
          if (n.id == e.id) {
            ++hits;
            break;
          }
        }
      }
      recall_early += 100.0 * hits / exact[qi].size();
    }
    recall_early /= queries.size();
    const double early_decrypted =
        static_cast<double>(stack.client->costs().candidates_decrypted) /
        queries.size();

    std::printf("%10zu  %14.1f  %14.1f  %10.1f  %12.2f  %12.2f\n", cand_size,
                full_decrypted, early_decrypted,
                100.0 * (1.0 - early_decrypted / full_decrypted),
                recall_full, recall_early);
  }

  std::printf(
      "\nExpected shape: savings grow with the candidate budget (the tail "
      "of a large pre-ranked candidate set rarely survives the lower-bound "
      "test); recall is at least as good as the permutation-ranked full "
      "refinement since the distance-ranked candidate set is tighter.\n");
}

}  // namespace
}  // namespace bench
}  // namespace simcloud

int main() {
  simcloud::bench::Run();
  return 0;
}
