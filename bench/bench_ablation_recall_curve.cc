// Ablation B (figure-style): fine-grained recall-vs-candidate-size curve
// for the Encrypted M-Index (the curve Tables 5 and 6 sample at four and
// six points). Also contrasts the distance-bearing (precise-strategy)
// pre-ranking against permutation-only pre-ranking, and the effect of the
// distribution-hiding transform on the curve (it should be nil: the
// transform preserves permutations).

#include <cstdio>

#include "bench/bench_common.h"

namespace simcloud {
namespace bench {
namespace {

double AverageRecall(SecureStack& stack,
                     const std::vector<metric::VectorObject>& queries,
                     const std::vector<metric::NeighborList>& exact, size_t k,
                     size_t cand_size, bool send_distances = false) {
  double total = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    // ApproxKnn sends the permutation only; ApproxKnnEarlyStop sends the
    // query-pivot distances, so the server pre-ranks by pivot-filtering
    // lower bounds (needs a precise-strategy index).
    auto answer = send_distances
                      ? stack.client->ApproxKnnEarlyStop(queries[i], k,
                                                         cand_size)
                      : stack.client->ApproxKnn(queries[i], k, cand_size);
    if (!answer.ok()) std::abort();
    total += metric::RecallPercent(*answer, exact[i]);
  }
  return total / static_cast<double>(queries.size());
}

void Run() {
  const size_t k = 30;
  DatasetConfig config = MakeYeastConfig();
  const auto queries = config.dataset.SampleQueries(100, 999);
  const auto exact = ComputeGroundTruth(config.dataset, queries, k);

  SecureStack perm_stack = BuildSecureStack(
      config, secure::InsertStrategy::kPermutationOnly, nullptr);
  SecureStack dist_stack =
      BuildSecureStack(config, secure::InsertStrategy::kPrecise, nullptr);

  DatasetConfig transform_config = MakeYeastConfig();
  mindex::PivotSet pivots = *mindex::PivotSet::SelectRandom(
      transform_config.dataset.objects(),
      transform_config.index_options.num_pivots, transform_config.pivot_seed);
  auto transform_key = secure::SecretKey::Create(pivots, Bytes(16, 0x5C));
  if (!transform_key.ok()) std::abort();
  if (!transform_key->EnableDistanceTransform(4242, 20000.0).ok()) {
    std::abort();
  }
  auto transform_server =
      secure::EncryptedMIndexServer::Create(transform_config.index_options);
  if (!transform_server.ok()) std::abort();
  SecureStack transform_stack{std::move(transform_key).value(),
                              std::move(transform_server).value(), nullptr,
                              nullptr};
  transform_stack.transport = std::make_unique<net::LoopbackTransport>(
      transform_stack.server.get());
  transform_stack.client = std::make_unique<secure::EncryptionClient>(
      transform_stack.key, transform_config.dataset.distance(),
      transform_stack.transport.get());
  if (!transform_stack.client
           ->InsertBulk(transform_config.dataset.objects(),
                        secure::InsertStrategy::kPermutationOnly, 1000)
           .ok()) {
    std::abort();
  }

  std::printf("Recall vs candidate-set size (YEAST, approx 30-NN, "
              "100 queries)\n");
  std::printf("%8s  %18s  %18s  %22s\n", "|SC|", "perm-only[%]",
              "with-distances[%]", "perm+transform[%]");
  for (size_t cand_size :
       {30u, 60u, 100u, 150u, 200u, 300u, 450u, 600u, 900u, 1200u, 1500u,
        2000u}) {
    const double r_perm = AverageRecall(perm_stack, queries, exact, k,
                                        cand_size);
    const double r_dist = AverageRecall(dist_stack, queries, exact, k,
                                        cand_size, /*send_distances=*/true);
    const double r_transform =
        AverageRecall(transform_stack, queries, exact, k, cand_size);
    std::printf("%8zu  %18.2f  %18.2f  %22.2f\n", cand_size, r_perm, r_dist,
                r_transform);
  }
  std::printf(
      "\nExpected shapes: monotone saturation (paper: >90%% at |SC|=600 on "
      "YEAST); distance-bearing pre-ranking >= permutation-only at small "
      "|SC|; the transform column tracks perm-only (permutations are "
      "preserved by the monotone transform).\n");
}

}  // namespace
}  // namespace bench
}  // namespace simcloud

int main() {
  simcloud::bench::Run();
  return 0;
}
