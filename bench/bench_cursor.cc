// Cursor memory gate: a range query whose result set is ~1M candidates
// must stream through a server-side cursor in O(page) memory, while the
// one-shot kRangeSearch path pays O(result) — and the two must agree
// byte for byte. Three gates (the run aborts when violated):
//
//   * the paged drain returns AT LEAST the advertised 1M candidates;
//   * peak RSS growth of the paged drain stays a small fraction of the
//     one-shot growth (the cursor snapshots ranked (id, score, handle)
//     entries, never the payload bytes — pages materialize payloads
//     O(page) at a time);
//   * concatenating every page and re-encoding it with the open page's
//     stats reproduces the one-shot kRangeSearch response EXACTLY.
//
// The drain phases run in a deliberate order: VmHWM is monotonic, so
// the paged phase (small growth) runs FIRST against the post-build
// baseline, then the one-shot phase (large growth) on top of it. The
// byte-identity pass — which must itself hold the full concatenation —
// runs LAST, after both measurements are taken.
//
// Usage: bench_cursor [--smoke]
//   --smoke  1M objects instead of 2M, for CI.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "mindex/entry.h"
#include "secure/protocol.h"
#include "secure/server.h"

namespace simcloud {
namespace bench {
namespace {

constexpr size_t kNumPivots = 4;
constexpr size_t kPayloadBytes = 128;
constexpr uint64_t kPageSize = 1024;
constexpr double kWideRadius = 1e9;  // covers every object

/// Peak resident set of this process in kB (monotonic; Linux only).
size_t VmHwmKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  size_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %zu kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb;
}

std::vector<float> RandomDistances(Rng* rng) {
  std::vector<float> distances(kNumPivots);
  for (float& d : distances) {
    d = static_cast<float>(rng->NextBounded(100000)) / 1000.0f;
  }
  return distances;
}

/// Inserts `count` synthetic objects straight through the wire protocol
/// (precise pivot distances, fixed-size payloads), batched.
void BuildIndex(secure::EncryptedMIndexServer* handler, size_t count) {
  Rng rng(4242);
  constexpr size_t kBatch = 8192;
  std::vector<secure::InsertItem> batch;
  batch.reserve(kBatch);
  for (size_t next = 0; next < count; next += kBatch) {
    const size_t end = next + kBatch < count ? next + kBatch : count;
    batch.clear();
    for (size_t i = next; i < end; ++i) {
      secure::InsertItem item;
      item.id = static_cast<metric::ObjectId>(i + 1);
      item.pivot_distances = RandomDistances(&rng);
      item.payload.assign(kPayloadBytes, static_cast<uint8_t>(i * 37u));
      batch.push_back(std::move(item));
    }
    auto inserted = handler->Handle(secure::EncodeInsertBatchRequest(batch));
    if (!inserted.ok()) {
      std::fprintf(stderr, "insert batch failed: %s\n",
                   inserted.status().ToString().c_str());
      std::exit(1);
    }
  }
}

/// One full cursor drain. When `concat` is null the pages are counted
/// and DISCARDED (the O(page) measurement); otherwise every candidate
/// and the open page's stats are accumulated for the identity check.
struct DrainResult {
  uint64_t advertised_total = 0;
  size_t received = 0;
  mindex::SearchStats open_stats;
};

DrainResult DrainCursor(secure::EncryptedMIndexServer* handler,
                        const std::vector<float>& query,
                        mindex::CandidateList* concat) {
  DrainResult result;
  auto open = handler->Handle(secure::EncodeRangeSearchCursorRequest(
      query, kWideRadius, kPageSize, 0));
  if (!open.ok()) {
    std::fprintf(stderr, "cursor open failed: %s\n",
                 open.status().ToString().c_str());
    std::exit(1);
  }
  auto page = secure::DecodeCursorPage(*open);
  if (!page.ok()) std::exit(1);
  result.advertised_total = page->total;
  result.open_stats = page->stats;
  uint64_t cursor_id = page->cursor_id;
  while (true) {
    result.received += page->candidates.size();
    if (concat != nullptr) {
      for (auto& candidate : page->candidates) {
        concat->push_back(std::move(candidate));
      }
    }
    if (cursor_id == 0) break;
    auto next = handler->Handle(secure::EncodeCursorNextRequest(cursor_id));
    if (!next.ok()) {
      std::fprintf(stderr, "cursor next failed: %s\n",
                   next.status().ToString().c_str());
      std::exit(1);
    }
    page = secure::DecodeCursorPage(*next);
    if (!page.ok()) std::exit(1);
    cursor_id = page->cursor_id;
  }
  return result;
}

void Run(bool smoke) {
  const size_t num_objects = smoke ? 1'000'000 : 2'000'000;

  mindex::MIndexOptions options;
  options.num_pivots = kNumPivots;
  options.bucket_capacity = 64;
  options.max_level = 4;
  auto handler = secure::EncryptedMIndexServer::Create(options);
  if (!handler.ok()) std::exit(1);

  Stopwatch build;
  BuildIndex(handler->get(), num_objects);
  const double build_seconds = build.ElapsedSeconds();
  const size_t hwm_build = VmHwmKb();

  Rng query_rng(17);
  const std::vector<float> query = RandomDistances(&query_rng);

  // Phase 1 — paged drain, pages DISCARDED: the only growth is the
  // cursor's ranked snapshot plus one in-flight page.
  Stopwatch paged;
  DrainResult drained = DrainCursor(handler->get(), query, nullptr);
  const double paged_seconds = paged.ElapsedSeconds();
  const size_t hwm_paged = VmHwmKb();
  const size_t paged_delta_kb = hwm_paged - hwm_build;

  // Phase 2 — one-shot kRangeSearch: the whole result set is
  // materialized (payloads included) and encoded in one response.
  Stopwatch oneshot;
  auto oneshot_bytes = handler->get()->Handle(
      secure::EncodeRangeSearchRequest(query, kWideRadius));
  if (!oneshot_bytes.ok()) {
    std::fprintf(stderr, "one-shot range search failed: %s\n",
                 oneshot_bytes.status().ToString().c_str());
    std::exit(1);
  }
  const double oneshot_seconds = oneshot.ElapsedSeconds();
  const size_t hwm_oneshot = VmHwmKb();
  const size_t oneshot_delta_kb = hwm_oneshot - hwm_paged;

  // Phase 3 — identity: a second drain, this time keeping everything,
  // re-encoded with the open page's stats, must equal phase 2's bytes.
  mindex::CandidateList concat;
  DrainResult kept = DrainCursor(handler->get(), query, &concat);
  mindex::SearchStats stats = kept.open_stats;
  stats.candidates = kept.advertised_total;
  const Bytes paged_encoded = secure::EncodeCandidateResponse(concat, stats);
  const bool identical = paged_encoded == *oneshot_bytes;

  std::printf("bench_cursor: %zu objects built in %.1fs\n", num_objects,
              build_seconds);
  std::printf("paged drain: %zu candidates (%" PRIu64 " advertised) in "
              "%.2fs, +%zu kB peak RSS\n",
              drained.received, drained.advertised_total, paged_seconds,
              paged_delta_kb);
  std::printf("one-shot:    %zu response bytes in %.2fs, +%zu kB peak RSS\n",
              oneshot_bytes->size(), oneshot_seconds, oneshot_delta_kb);

  bool failed = false;
  if (drained.received < 1'000'000 ||
      drained.received != drained.advertised_total) {
    std::fprintf(stderr, "FAIL: paged drain returned %zu candidates "
                         "(advertised %" PRIu64 ", need >= 1M)\n",
                 drained.received, drained.advertised_total);
    failed = true;
  }
  // The cursor's growth must be a small fraction of the one-shot path's:
  // ranked (id, score, handle) entries only, vs every payload plus the
  // full encoded response held at once.
  if (paged_delta_kb * 3 >= oneshot_delta_kb) {
    std::fprintf(stderr, "FAIL: paged peak RSS +%zu kB is not O(page) "
                         "against the one-shot +%zu kB\n",
                 paged_delta_kb, oneshot_delta_kb);
    failed = true;
  }
  if (!identical) {
    std::fprintf(stderr, "FAIL: paged concatenation (%zu bytes) diverges "
                         "from the one-shot response (%zu bytes)\n",
                 paged_encoded.size(), oneshot_bytes->size());
    failed = true;
  }
  if (failed) std::exit(1);

  std::printf("bench_cursor OK (paged +%zu kB vs one-shot +%zu kB, "
              "%zu candidates byte-identical)\n",
              paged_delta_kb, oneshot_delta_kb, drained.received);
}

}  // namespace
}  // namespace bench
}  // namespace simcloud

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  simcloud::bench::Run(smoke);
  return 0;
}
