#include "bench/bench_common.h"

#include <cinttypes>
#include <cstdio>

#include "common/clock.h"
#include "metric/ground_truth.h"
#include "mindex/pivot_set.h"

namespace simcloud {
namespace bench {

using metric::VectorObject;

DatasetConfig MakeYeastConfig() {
  DatasetConfig config;
  config.dataset = data::MakeYeastLike();
  config.index_options.num_pivots = 30;
  config.index_options.bucket_capacity = 200;
  config.index_options.max_level = 6;
  config.index_options.storage_kind = mindex::StorageKind::kMemory;
  return config;
}

DatasetConfig MakeHumanConfig() {
  DatasetConfig config;
  config.dataset = data::MakeHumanLike();
  config.index_options.num_pivots = 50;
  config.index_options.bucket_capacity = 250;
  config.index_options.max_level = 6;
  config.index_options.storage_kind = mindex::StorageKind::kMemory;
  return config;
}

DatasetConfig MakeCophirConfig(size_t num_objects) {
  DatasetConfig config;
  config.dataset = data::MakeCophirLike(num_objects);
  config.index_options.num_pivots = 100;
  config.index_options.bucket_capacity = 1000;
  config.index_options.max_level = 8;
  config.index_options.storage_kind = mindex::StorageKind::kDisk;
  config.index_options.disk_path = "/tmp/simcloud_cophir_payloads.bin";
  config.index_options.stored_prefix_length = 16;
  return config;
}

namespace {

mindex::PivotSet SelectPivots(const DatasetConfig& config) {
  mindex::PivotSelectionOptions options;
  options.strategy = config.pivot_strategy;
  options.count = config.index_options.num_pivots;
  options.seed = config.pivot_seed;
  auto pivots = mindex::SelectPivots(config.dataset.objects(),
                                     *config.dataset.distance(), options);
  if (!pivots.ok()) {
    std::fprintf(stderr, "pivot selection failed: %s\n",
                 pivots.status().ToString().c_str());
    std::abort();
  }
  return std::move(pivots).value();
}

void Require(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::abort();
  }
}

CostRow TransportDeltaToRow(const secure::ClientCosts& client,
                            const net::TransportCosts& transport) {
  CostRow row;
  row.client_s = client.TotalNanos() * 1e-9;
  row.encryption_s = client.encryption_nanos * 1e-9;
  row.decryption_s = client.decryption_nanos * 1e-9;
  row.distance_s = client.distance_nanos * 1e-9;
  row.server_s = transport.server_nanos * 1e-9;
  row.communication_s = transport.communication_nanos * 1e-9;
  row.overall_s = row.client_s + row.server_s + row.communication_s;
  row.communication_kb =
      static_cast<double>(transport.TotalBytes()) / 1024.0;
  return row;
}

}  // namespace

SecureStack BuildSecureStack(const DatasetConfig& config,
                             secure::InsertStrategy strategy,
                             CostRow* construction) {
  mindex::PivotSet pivots = SelectPivots(config);
  auto key = secure::SecretKey::Create(std::move(pivots), Bytes(16, 0x5C));
  if (!key.ok()) std::abort();

  auto server = secure::EncryptedMIndexServer::Create(config.index_options);
  if (!server.ok()) {
    std::fprintf(stderr, "server create failed: %s\n",
                 server.status().ToString().c_str());
    std::abort();
  }

  SecureStack stack{std::move(key).value(), std::move(server).value(),
                    nullptr, nullptr};
  stack.transport =
      std::make_unique<net::LoopbackTransport>(stack.server.get());
  stack.client = std::make_unique<secure::EncryptionClient>(
      stack.key, config.dataset.distance(), stack.transport.get());

  Require(stack.client->InsertBulk(config.dataset.objects(), strategy,
                                   config.bulk_size),
          "encrypted bulk insert");

  if (construction != nullptr) {
    *construction =
        TransportDeltaToRow(stack.client->costs(), stack.transport->costs());
  }
  stack.client->ResetCosts();
  stack.transport->ResetCosts();
  return stack;
}

PlainStack BuildPlainStack(const DatasetConfig& config,
                           CostRow* construction) {
  mindex::PivotSet pivots = SelectPivots(config);
  // The plain deployment keeps pivot distances server-side (it owns them),
  // and must not truncate permutations it derives itself.
  mindex::MIndexOptions options = config.index_options;
  if (options.storage_kind == mindex::StorageKind::kDisk) {
    options.disk_path += ".plain";
  }
  auto server = baselines::PlainMIndexServer::Create(
      options, std::move(pivots), config.dataset.distance());
  if (!server.ok()) {
    std::fprintf(stderr, "plain server create failed: %s\n",
                 server.status().ToString().c_str());
    std::abort();
  }

  PlainStack stack{std::move(server).value(), nullptr, nullptr};
  stack.transport =
      std::make_unique<net::LoopbackTransport>(stack.server.get());
  stack.client = std::make_unique<baselines::PlainClient>(
      stack.transport.get());

  Stopwatch total;
  Require(stack.client->InsertBulk(config.dataset.objects(),
                                   config.bulk_size),
          "plain bulk insert");

  if (construction != nullptr) {
    CostRow row;
    const auto& costs = stack.transport->costs();
    row.server_s = costs.server_nanos * 1e-9;
    row.communication_s = costs.communication_nanos * 1e-9;
    row.distance_s = stack.server->costs().distance_nanos * 1e-9;
    // Client work is serialization only: wall time minus server share
    // (communication is modelled, not wall time on loopback).
    row.client_s =
        std::max(0.0, total.ElapsedSeconds() - row.server_s);
    row.overall_s = row.client_s + row.server_s + row.communication_s;
    row.communication_kb = static_cast<double>(costs.TotalBytes()) / 1024.0;
    *construction = row;
  }
  stack.transport->ResetCosts();
  stack.server->ResetCosts();
  return stack;
}

std::vector<metric::NeighborList> ComputeGroundTruth(
    const metric::Dataset& dataset, const std::vector<VectorObject>& queries,
    size_t k) {
  std::vector<metric::NeighborList> exact;
  exact.reserve(queries.size());
  for (const auto& query : queries) {
    exact.push_back(metric::LinearKnnSearch(dataset, query, k));
  }
  return exact;
}

CostRow RunSecureKnnWorkload(SecureStack& stack,
                             const std::vector<VectorObject>& queries,
                             const std::vector<metric::NeighborList>& exact,
                             size_t k, size_t cand_size) {
  stack.client->ResetCosts();
  stack.transport->ResetCosts();

  double recall_total = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    auto answer = stack.client->ApproxKnn(queries[i], k, cand_size);
    if (!answer.ok()) {
      std::fprintf(stderr, "secure knn failed: %s\n",
                   answer.status().ToString().c_str());
      std::abort();
    }
    recall_total += metric::RecallPercent(*answer, exact[i]);
  }

  CostRow row =
      TransportDeltaToRow(stack.client->costs(), stack.transport->costs());
  const double n = static_cast<double>(queries.size());
  row.client_s /= n;
  row.encryption_s /= n;
  row.decryption_s /= n;
  row.distance_s /= n;
  row.server_s /= n;
  row.communication_s /= n;
  row.overall_s /= n;
  row.communication_kb /= n;
  row.recall_pct = recall_total / n;
  return row;
}

CostRow RunPlainKnnWorkload(PlainStack& stack,
                            const std::vector<VectorObject>& queries,
                            const std::vector<metric::NeighborList>& exact,
                            size_t k, size_t cand_size) {
  stack.transport->ResetCosts();
  stack.server->ResetCosts();

  double recall_total = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    auto answer = stack.client->ApproxKnn(queries[i], k, cand_size);
    if (!answer.ok()) {
      std::fprintf(stderr, "plain knn failed: %s\n",
                   answer.status().ToString().c_str());
      std::abort();
    }
    recall_total += metric::RecallPercent(*answer, exact[i]);
  }

  CostRow row;
  const auto& costs = stack.transport->costs();
  const double n = static_cast<double>(queries.size());
  row.server_s = costs.server_nanos * 1e-9 / n;
  row.communication_s = costs.communication_nanos * 1e-9 / n;
  row.distance_s = stack.server->costs().distance_nanos * 1e-9 / n;
  row.overall_s = row.server_s + row.communication_s;
  row.communication_kb = static_cast<double>(costs.TotalBytes()) / 1024.0 / n;
  row.recall_pct = recall_total / n;
  return row;
}

TablePrinter::TablePrinter(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values, int precision) {
  std::vector<std::string> row = {label};
  char buf[64];
  for (double v : values) {
    if (v < 0) {
      row.push_back("-");
    } else {
      std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
      row.push_back(buf);
    }
  }
  rows_.push_back(std::move(row));
}

void TablePrinter::AddTextRow(const std::string& label,
                              const std::vector<std::string>& values) {
  std::vector<std::string> row = {label};
  row.insert(row.end(), values.begin(), values.end());
  rows_.push_back(std::move(row));
}

void TablePrinter::Print() const {
  std::printf("\n=== %s ===\n", title_.c_str());
  // Column widths.
  std::vector<size_t> widths;
  widths.push_back(0);
  for (const auto& row : rows_) {
    widths[0] = std::max(widths[0], row[0].size());
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    size_t w = columns_[c].size();
    for (const auto& row : rows_) {
      if (c + 1 < row.size()) w = std::max(w, row[c + 1].size());
    }
    widths.push_back(w);
  }

  std::printf("%-*s", static_cast<int>(widths[0] + 2), "");
  for (size_t c = 0; c < columns_.size(); ++c) {
    std::printf("%*s  ", static_cast<int>(widths[c + 1]),
                columns_[c].c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) {
    std::printf("%-*s", static_cast<int>(widths[0] + 2), row[0].c_str());
    for (size_t c = 1; c < row.size(); ++c) {
      std::printf("%*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  }
}

void PrintCostTable(const std::string& title,
                    const std::vector<std::string>& columns,
                    const std::vector<CostRow>& rows, bool construction) {
  TablePrinter table(title, columns);
  auto collect = [&](const char* label, auto getter, int precision) {
    std::vector<double> values;
    for (const auto& row : rows) values.push_back(getter(row));
    table.AddRow(label, values, precision);
  };
  collect("Client time [s]", [](const CostRow& r) { return r.client_s; }, 4);
  if (construction) {
    collect("Encryption time [s]",
            [](const CostRow& r) { return r.encryption_s; }, 4);
  } else {
    collect("Decryption time [s]",
            [](const CostRow& r) { return r.decryption_s; }, 4);
  }
  collect("Dist. comp. time [s]",
          [](const CostRow& r) { return r.distance_s; }, 4);
  collect("Server time [s]", [](const CostRow& r) { return r.server_s; }, 4);
  collect("Communication time [s]",
          [](const CostRow& r) { return r.communication_s; }, 4);
  collect("Overall time [s]", [](const CostRow& r) { return r.overall_s; }, 4);
  if (!construction) {
    collect("Recall [%]", [](const CostRow& r) { return r.recall_pct; }, 2);
    collect("Communication cost [kB]",
            [](const CostRow& r) { return r.communication_kb; }, 2);
  }
  table.Print();
}

}  // namespace bench
}  // namespace simcloud
