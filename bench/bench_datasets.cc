// Reproduces the paper's Table 1 (data sets summary) and Table 2 (M-Index
// parameters) for the synthetic stand-in collections, and prints basic
// index-shape statistics as a sanity check.

#include <cstdio>

#include "bench/bench_common.h"

namespace simcloud {
namespace bench {
namespace {

void Run() {
  const size_t cophir_n = data::DefaultCophirSize();

  TablePrinter table1("Table 1: Data sets summary (synthetic stand-ins)",
                      {"# of records", "Data type", "Distance function"});
  table1.AddTextRow("YEAST", {"2,882", "17-dim num. vectors", "L1"});
  table1.AddTextRow("HUMAN", {"4,026", "96-dim num. vectors", "L1"});
  table1.AddTextRow("CoPhIR",
                    {std::to_string(cophir_n) + " (paper: 1,000,000)",
                     "280-dim num. vectors", "combination of Lp"});
  table1.Print();

  TablePrinter table2("Table 2: M-Index parameters",
                      {"Bucket capacity", "Storage type", "# of pivots"});
  table2.AddTextRow("YEAST", {"200", "Memory storage", "30"});
  table2.AddTextRow("HUMAN", {"250", "Memory storage", "50"});
  table2.AddTextRow("CoPhIR", {"1,000", "Disk storage", "100"});
  table2.Print();

  // Index-shape sanity check on the two small sets.
  std::printf("\nIndex shape sanity check (build + stats):\n");
  for (auto* make_config : {&MakeYeastConfig, &MakeHumanConfig}) {
    DatasetConfig config = make_config();
    CostRow construction;
    SecureStack stack = BuildSecureStack(
        config, secure::InsertStrategy::kPrecise, &construction);
    auto stats = stack.client->GetServerStats();
    if (stats.ok()) {
      std::printf(
          "  %-7s objects=%llu leaves=%llu inner=%llu max_depth=%llu "
          "payload_bytes=%llu\n",
          config.dataset.name().c_str(),
          static_cast<unsigned long long>(stats->object_count),
          static_cast<unsigned long long>(stats->leaf_count),
          static_cast<unsigned long long>(stats->inner_count),
          static_cast<unsigned long long>(stats->max_depth),
          static_cast<unsigned long long>(stats->storage_bytes));
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace simcloud

int main() {
  simcloud::bench::Run();
  return 0;
}
