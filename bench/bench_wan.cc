// Ablation H (figure-style): the round-trip economics of the candidate
// protocols over a wide-area link.
//
// Paper Section 3.1 argues EHI "has obvious ... cost we have to pay:
// communication costs (a lot of traffic between client and the server)";
// the Encrypted M-Index needs exactly one round trip per query. On a
// loopback interface (the paper's measurement setup, and our Table 9)
// that difference is muted. This harness re-runs the approximate 1-NN
// comparison over *modelled* links — loopback, LAN, and WAN — so the
// per-message latency term exposes each protocol's round-trip count.
// Communication time is deterministic (LinkModel), everything else
// measured.

#include <cstdio>

#include "baselines/ehi.h"
#include "baselines/mpt.h"
#include "baselines/trivial.h"
#include "bench/bench_common.h"
#include "metric/ground_truth.h"

namespace simcloud {
namespace bench {
namespace {

struct LinkCase {
  const char* name;
  net::LinkModel link;
};

struct WanRow {
  double comm_ms = 0;     ///< modelled communication time per query
  double calls = 0;       ///< protocol round trips per query
  double kb = 0;          ///< bytes on the wire per query
};

void Run() {
  DatasetConfig config = MakeYeastConfig();
  auto queries = config.dataset.ExtractQueries(50, 777);
  const size_t k = 1;

  const LinkCase links[] = {
      {"loopback", {100e-6, 100e6}},     // the paper's setup
      {"LAN", {0.5e-3, 100e6}},          // 0.5 ms, 1 GbE payload
      {"WAN", {25e-3, 12.5e6}},          // 25 ms, ~100 Mbit
  };

  std::printf(
      "Round-trip economics: approx 1-NN on YEAST over modelled links "
      "(communication time = per-message latency + volume/bandwidth)\n");
  std::printf("%10s  %12s  %12s  %12s  %12s\n", "link", "system",
              "comm[ms/q]", "round trips", "kB/query");

  for (const LinkCase& link_case : links) {
    // ------------------------------------------- Encrypted M-Index
    WanRow enc_row;
    {
      auto pivots = mindex::PivotSet::SelectRandom(
          config.dataset.objects(), config.index_options.num_pivots,
          config.pivot_seed);
      if (!pivots.ok()) return;
      auto key = secure::SecretKey::Create(std::move(pivots).value(),
                                           Bytes(16, 0x5C));
      if (!key.ok()) return;
      auto server =
          secure::EncryptedMIndexServer::Create(config.index_options);
      if (!server.ok()) return;
      net::LoopbackTransport transport(server->get(), link_case.link);
      secure::EncryptionClient client(*key, config.dataset.distance(),
                                      &transport);
      if (!client
               .InsertBulk(config.dataset.objects(),
                           secure::InsertStrategy::kPermutationOnly, 1000)
               .ok()) {
        return;
      }
      transport.ResetCosts();
      for (const auto& query : queries) {
        if (!client.ApproxKnnSingleCell(query, k).ok()) return;
      }
      const auto& tc = transport.costs();
      enc_row = {tc.communication_nanos * 1e-6 / queries.size(),
                 static_cast<double>(tc.calls) / queries.size(),
                 tc.TotalBytes() / 1024.0 / queries.size()};
    }
    std::printf("%10s  %12s  %12.2f  %12.1f  %12.2f\n", link_case.name,
                "EncMIndex", enc_row.comm_ms, enc_row.calls, enc_row.kb);

    // ----------------------------------------------------------- EHI
    {
      baselines::EhiNodeStoreServer server;
      net::LoopbackTransport transport(&server, link_case.link);
      auto client = baselines::EhiClient::Create(
          Bytes(16, 0x61), config.dataset.distance(), &transport);
      if (!client.ok()) return;
      if (!client->BuildAndUpload(config.dataset.objects()).ok()) return;
      transport.ResetCosts();
      for (const auto& query : queries) {
        if (!client->Knn(query, k).ok()) return;
      }
      const auto& tc = transport.costs();
      std::printf("%10s  %12s  %12.2f  %12.1f  %12.2f\n", link_case.name,
                  "EHI", tc.communication_nanos * 1e-6 / queries.size(),
                  static_cast<double>(tc.calls) / queries.size(),
                  tc.TotalBytes() / 1024.0 / queries.size());
    }

    // ----------------------------------------------------------- MPT
    {
      baselines::MptServer server;
      net::LoopbackTransport transport(&server, link_case.link);
      auto client = baselines::MptClient::Create(
          Bytes(16, 0x62), config.dataset.distance(), &transport);
      if (!client.ok()) return;
      if (!client->BuildKey(config.dataset.SampleQueries(200, 31)).ok()) {
        return;
      }
      if (!client->InsertBulk(config.dataset.objects()).ok()) return;
      transport.ResetCosts();
      for (const auto& query : queries) {
        if (!client->Knn(query, k).ok()) return;
      }
      const auto& tc = transport.costs();
      std::printf("%10s  %12s  %12.2f  %12.1f  %12.2f\n", link_case.name,
                  "MPT", tc.communication_nanos * 1e-6 / queries.size(),
                  static_cast<double>(tc.calls) / queries.size(),
                  tc.TotalBytes() / 1024.0 / queries.size());
    }

    // ------------------------------------------------------- Trivial
    {
      baselines::BlobStoreServer server;
      net::LoopbackTransport transport(&server, link_case.link);
      auto client = baselines::TrivialClient::Create(
          Bytes(16, 0x64), config.dataset.distance(), &transport);
      if (!client.ok()) return;
      if (!client->InsertBulk(config.dataset.objects()).ok()) return;
      transport.ResetCosts();
      const size_t trivial_queries = 5;
      for (size_t i = 0; i < trivial_queries; ++i) {
        if (!client->Knn(queries[i], k).ok()) return;
      }
      const auto& tc = transport.costs();
      std::printf("%10s  %12s  %12.2f  %12.1f  %12.2f\n", link_case.name,
                  "Trivial",
                  tc.communication_nanos * 1e-6 / trivial_queries,
                  static_cast<double>(tc.calls) / trivial_queries,
                  tc.TotalBytes() / 1024.0 / trivial_queries);
    }
  }

  std::printf(
      "\nExpected shape: on loopback all systems look close; as latency "
      "grows, EHI's per-query cost explodes linearly with its round-trip "
      "count (tree-depth node fetches) while the Encrypted M-Index stays "
      "at one round trip per query — the quantitative form of the paper's "
      "Section 3.1 argument. The trivial client is bandwidth-bound "
      "instead: its volume term dominates on every link.\n");
}

}  // namespace
}  // namespace bench
}  // namespace simcloud

int main() {
  simcloud::bench::Run();
  return 0;
}
