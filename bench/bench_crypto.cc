// Crypto kernel throughput: AES-CTR and SHA-256 scalar vs hardware
// (AES-NI / SHA-NI), plus the dispatched AEAD seal/open path every wire
// record and payload ciphertext goes through.
//
// Both implementations of each kernel are driven directly (kernels.h
// exposes them independent of the process-wide dispatch), so one run
// prints the scalar baseline and the accelerated speedup side by side.
// Before any timing, the two are cross-checked on random inputs of
// awkward lengths — a benchmark of a wrong kernel is worse than none.
//
// Acceptance gate (the run aborts when violated): when the AES-NI
// kernel is available, accelerated AES-CTR must be >= 3x the scalar
// throughput. On scalar-only boxes (or under
// SIMCLOUD_FORCE_SCALAR_CRYPTO=1 — which only affects the dispatched
// AEAD section here) the gate is skipped and reported as such.
//
// Usage: bench_crypto [--smoke]
//   --smoke  smaller buffers and fewer passes, for CI.

#include <cstdio>
#include <cstring>
#include <string>

#include "common/clock.h"
#include "common/rng.h"
#include "crypto/aead.h"
#include "crypto/aes.h"
#include "crypto/cpu_features.h"
#include "crypto/hmac.h"
#include "crypto/kernels.h"
#include "crypto/sha256.h"
#include "obs/metrics.h"

namespace simcloud {
namespace bench {
namespace {

Bytes RandomBytes(Rng* rng, size_t len) {
  Bytes out(len);
  for (auto& b : out) b = static_cast<uint8_t>(rng->NextBounded(256));
  return out;
}

/// Verifies the hardware kernels agree with the scalar references on
/// random inputs (lengths chosen to hit partial-pipeline tails).
void CrossCheckKernels(const crypto::Aes& aes) {
  Rng rng(2024);
  if (crypto::AesNiKernelAvailable()) {
    for (size_t len : {0u, 1u, 15u, 16u, 17u, 127u, 128u, 129u, 4096u,
                       4097u}) {
      const Bytes input = RandomBytes(&rng, len);
      const Bytes iv = RandomBytes(&rng, 16);
      Bytes scalar(len), accel(len);
      crypto::ScalarAesCtrXor(aes, iv.data(), input.data(), scalar.data(),
                              len);
      crypto::AesNiCtrXor(aes.round_key_bytes(), aes.rounds(), iv.data(),
                          input.data(), accel.data(), len);
      if (scalar != accel) {
        std::fprintf(stderr, "FAIL: AES-NI CTR mismatch at len %zu\n", len);
        std::exit(1);
      }
    }
  }
  if (crypto::ShaNiKernelAvailable()) {
    for (size_t blocks : {1u, 2u, 3u, 5u, 64u}) {
      const Bytes input = RandomBytes(&rng, blocks * 64);
      uint32_t scalar_h[8], accel_h[8];
      for (int i = 0; i < 8; ++i) {
        scalar_h[i] = accel_h[i] = 0x6a09e667u + static_cast<uint32_t>(i);
      }
      crypto::ScalarSha256Blocks(scalar_h, input.data(), blocks);
      crypto::ShaNiSha256Blocks(accel_h, input.data(), blocks);
      if (std::memcmp(scalar_h, accel_h, sizeof(scalar_h)) != 0) {
        std::fprintf(stderr, "FAIL: SHA-NI mismatch at %zu blocks\n",
                     blocks);
        std::exit(1);
      }
    }
  }
}

/// Runs `fn` over `bytes_per_pass` until ~`min_seconds` elapse and
/// returns MB/s (decimal megabytes, the convention of the tables).
template <typename Fn>
double MeasureMbps(size_t bytes_per_pass, double min_seconds, Fn&& fn) {
  // Warm-up pass, then timed passes.
  fn();
  Stopwatch watch;
  size_t passes = 0;
  do {
    fn();
    passes++;
  } while (watch.ElapsedSeconds() < min_seconds);
  return static_cast<double>(passes) * bytes_per_pass /
         watch.ElapsedSeconds() / 1e6;
}

void Run(bool smoke) {
  const size_t buf_len = smoke ? (1u << 18) : (1u << 22);  // 256 KiB / 4 MiB
  const double min_seconds = smoke ? 0.05 : 0.5;

  Rng rng(7);
  const Bytes key = RandomBytes(&rng, 16);
  const Bytes iv = RandomBytes(&rng, 16);
  auto aes = crypto::Aes::Create(key);
  if (!aes.ok()) std::exit(1);

  CrossCheckKernels(*aes);

  const auto& features = crypto::GetCpuFeatures();
  std::printf("%s\n",
              obs::RuntimeBanner(
                  "bench_crypto",
                  "raw aes-ni=" + std::to_string(features.raw_aes_ni) +
                      " sha-ni=" + std::to_string(features.raw_sha_ni) +
                      ", buffer " + std::to_string(buf_len / 1024) + " KiB")
                  .c_str());
  std::printf("%-22s %12s %12s %9s\n", "kernel", "scalar MB/s", "accel MB/s",
              "speedup");

  Bytes buffer = RandomBytes(&rng, buf_len);
  Bytes out(buf_len);

  // ------------------------------------------------------------ AES-CTR
  const double ctr_scalar = MeasureMbps(buf_len, min_seconds, [&] {
    crypto::ScalarAesCtrXor(*aes, iv.data(), buffer.data(), out.data(),
                            buf_len);
  });
  double ctr_accel = 0;
  if (crypto::AesNiKernelAvailable()) {
    ctr_accel = MeasureMbps(buf_len, min_seconds, [&] {
      crypto::AesNiCtrXor(aes->round_key_bytes(), aes->rounds(), iv.data(),
                          buffer.data(), out.data(), buf_len);
    });
    std::printf("%-22s %12.1f %12.1f %8.1fx\n", "aes-128-ctr", ctr_scalar,
                ctr_accel, ctr_accel / ctr_scalar);
  } else {
    std::printf("%-22s %12.1f %12s %9s\n", "aes-128-ctr", ctr_scalar, "-",
                "-");
  }

  // ------------------------------------------------------------ SHA-256
  uint32_t h[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                   0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  const size_t sha_blocks = buf_len / 64;
  const double sha_scalar = MeasureMbps(sha_blocks * 64, min_seconds, [&] {
    crypto::ScalarSha256Blocks(h, buffer.data(), sha_blocks);
  });
  double sha_accel = 0;
  if (crypto::ShaNiKernelAvailable()) {
    sha_accel = MeasureMbps(sha_blocks * 64, min_seconds, [&] {
      crypto::ShaNiSha256Blocks(h, buffer.data(), sha_blocks);
    });
    std::printf("%-22s %12.1f %12.1f %8.1fx\n", "sha-256", sha_scalar,
                sha_accel, sha_accel / sha_scalar);
  } else {
    std::printf("%-22s %12.1f %12s %9s\n", "sha-256", sha_scalar, "-", "-");
  }

  // ----------------------------------- dispatched HMAC + AEAD seal/open
  // These run on whatever backend the process-wide dispatch picked
  // (honouring SIMCLOUD_FORCE_SCALAR_CRYPTO) — the throughput the record
  // layer and payload encryption actually see.
  const crypto::HmacSha256State hmac(key);
  const double hmac_mbps = MeasureMbps(buf_len, min_seconds, [&] {
    hmac.Mac(buffer);
  });
  auto aead = crypto::AeadCipher::Create(key);
  if (!aead.ok()) std::exit(1);
  Bytes sealed;
  const double seal_mbps = MeasureMbps(buf_len, min_seconds, [&] {
    auto result = aead->Seal(buffer);
    if (!result.ok()) std::exit(1);
    sealed = std::move(*result);
  });
  const double open_mbps = MeasureMbps(buf_len, min_seconds, [&] {
    if (!aead->Open(sealed).ok()) std::exit(1);
  });
  std::printf("dispatched (%s):\n", crypto::CryptoBackendSummary().c_str());
  std::printf("%-22s %12.1f MB/s\n", "hmac-sha256", hmac_mbps);
  std::printf("%-22s %12.1f MB/s\n", "aead seal", seal_mbps);
  std::printf("%-22s %12.1f MB/s\n", "aead open", open_mbps);

  // ---------------------------------------------------- acceptance gate
  if (crypto::AesNiKernelAvailable()) {
    const double speedup = ctr_accel / ctr_scalar;
    if (speedup < 3.0) {
      std::fprintf(stderr,
                   "FAIL: AES-NI CTR is %.2fx the scalar kernel "
                   "(acceptance gate: >= 3x)\n",
                   speedup);
      std::exit(1);
    }
    std::printf("bench_crypto OK (aes-ctr %.1fx >= 3x%s)\n", speedup,
                crypto::ShaNiKernelAvailable()
                    ? ", sha-ni cross-checked"
                    : "");
  } else {
    std::printf("bench_crypto OK (scalar only — AES-NI gate skipped)\n");
  }
}

}  // namespace
}  // namespace bench
}  // namespace simcloud

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  simcloud::bench::Run(smoke);
  return 0;
}
