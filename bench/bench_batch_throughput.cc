// Batched query engine throughput: single-query opcodes vs. the batch
// opcodes at batch sizes {1, 8, 64}, on memory storage and on the
// CoPhIR-style disk configuration with and without the payload cache.
//
// The batched path saves per-request overhead at every layer — one
// protocol round trip, one shared-lock acquisition, one tree pass for
// range batches, one coalesced FetchMany (plus cache hits) instead of one
// storage read per candidate — so queries/sec should rise with batch
// size, most sharply on disk storage.
//
// Usage: bench_batch_throughput [--smoke]
//   --smoke  tiny collection / few queries, for CI.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/clock.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "mindex/permutation.h"
#include "secure/protocol.h"

namespace simcloud {
namespace bench {
namespace {

struct RunResult {
  double single_qps = 0;
  double batch8_qps = 0;
  double batch64_qps = 0;
};

/// `hot_pool` = 0 draws every query distinct (uniform sweep); > 0 draws
/// from a pool of that many popular queries (the skewed workload a
/// similarity cloud serves under heavy traffic — the same hot queries
/// arrive from many users and repeat inside a batch).
std::vector<metric::VectorObject> MakeQueries(const DatasetConfig& config,
                                              size_t count, size_t hot_pool) {
  std::vector<metric::VectorObject> queries;
  queries.reserve(count);
  const auto& objects = config.dataset.objects();
  Rng rng(1234);
  for (size_t i = 0; i < count; ++i) {
    const size_t pick = hot_pool == 0
                            ? (i * 131) % objects.size()
                            : (rng.NextBounded(hot_pool) * 131) %
                                  objects.size();
    queries.push_back(objects[pick]);
  }
  return queries;
}

/// Chunks the query set into pre-encoded requests (one single-query
/// request per query for batch_size 1, one batch request per chunk
/// otherwise) so the measured loop below times raw Handle() calls only —
/// the server throughput the batch engine exists to raise (client
/// refinement runs on the many clients of the cloud, not on the server).
std::vector<Bytes> EncodeServerRequests(
    const std::vector<mindex::KnnQuery>& queries, size_t batch_size) {
  std::vector<Bytes> requests;
  size_t done = 0;
  while (done < queries.size()) {
    const size_t n = std::min(batch_size, queries.size() - done);
    if (n == 1) {
      requests.push_back(secure::EncodeApproxKnnRequest(
          queries[done].signature, queries[done].cand_size));
    } else {
      requests.push_back(secure::EncodeApproxKnnBatchRequest(
          {queries.begin() + done, queries.begin() + done + n}));
    }
    done += n;
  }
  return requests;
}

double MeasureServerQps(SecureStack& stack,
                        const std::vector<Bytes>& requests,
                        size_t num_queries) {
  Stopwatch watch;
  for (const Bytes& request : requests) {
    auto response = stack.server->Handle(request);
    if (!response.ok()) {
      std::fprintf(stderr, "server query failed: %s\n",
                   response.status().ToString().c_str());
      std::abort();
    }
  }
  const double seconds = watch.ElapsedNanos() / 1e9;
  return seconds > 0 ? static_cast<double>(num_queries) / seconds : 0;
}

double MeasureClientQps(SecureStack& stack,
                        const std::vector<metric::VectorObject>& queries,
                        size_t k, size_t cand_size, size_t batch_size) {
  Stopwatch watch;
  size_t done = 0;
  while (done < queries.size()) {
    const size_t n = std::min(batch_size, queries.size() - done);
    if (n == 1) {
      auto result = stack.client->ApproxKnn(queries[done], k, cand_size);
      if (!result.ok()) std::abort();
    } else {
      const std::vector<metric::VectorObject> batch(
          queries.begin() + done, queries.begin() + done + n);
      auto result = stack.client->ApproxKnnBatch(batch, k, cand_size);
      if (!result.ok()) std::abort();
    }
    done += n;
  }
  const double seconds = watch.ElapsedNanos() / 1e9;
  return seconds > 0 ? static_cast<double>(queries.size()) / seconds : 0;
}

void Run(bool smoke) {
  const size_t num_objects = smoke ? 3000 : 20000;
  const size_t num_server_queries = smoke ? 128 : 512;
  const size_t num_client_queries = smoke ? 32 : 64;
  const size_t k = 30;
  const size_t cand_size = smoke ? 200 : 500;
  const size_t hot_pool = 16;

  struct NamedConfig {
    const char* label;
    mindex::StorageKind storage;
    uint64_t cache_bytes;
  };
  const NamedConfig configs[] = {
      {"memory", mindex::StorageKind::kMemory, 0},
      {"disk", mindex::StorageKind::kDisk, 0},
      {"disk+cache", mindex::StorageKind::kDisk, 64ull << 20},
  };
  struct Workload {
    const char* label;
    size_t hot_pool;  // 0 = uniform sweep of distinct queries
  };
  const Workload workloads[] = {{"uniform", 0}, {"hot", hot_pool}};

  TablePrinter server_table(
      "Server-side approximate 30-NN throughput (queries/sec, Handle only)",
      {"batch=1", "batch=8", "batch=64", "speedup@64"});
  TablePrinter client_table(
      "End-to-end approximate 30-NN throughput (queries/sec, with client "
      "decrypt+refine)",
      {"batch=1", "batch=64", "speedup@64"});

  for (const NamedConfig& named : configs) {
    DatasetConfig config = MakeCophirConfig(num_objects);
    config.index_options.storage_kind = named.storage;
    config.index_options.cache_bytes = named.cache_bytes;
    if (named.storage == mindex::StorageKind::kMemory) {
      config.index_options.disk_path.clear();
    } else {
      config.index_options.disk_path =
          "/tmp/simcloud_batch_bench_" + std::string(named.label) + ".bin";
    }
    SecureStack stack =
        BuildSecureStack(config, secure::InsertStrategy::kPrecise, nullptr);

    for (const Workload& workload : workloads) {
      const std::string row =
          std::string(named.label) + "/" + workload.label;
      const std::vector<metric::VectorObject> queries =
          MakeQueries(config, num_server_queries, workload.hot_pool);

      std::vector<mindex::KnnQuery> knn_queries;
      for (const metric::VectorObject& query : queries) {
        std::vector<float> distances = stack.key.pivots().ComputeDistances(
            query, *config.dataset.distance());
        mindex::QuerySignature signature;
        signature.pivot_distances = distances;
        signature.permutation = mindex::DistancesToPermutation(distances);
        knn_queries.push_back(
            mindex::KnnQuery{std::move(signature), cand_size});
      }
      const std::vector<Bytes> requests1 =
          EncodeServerRequests(knn_queries, 1);
      const std::vector<Bytes> requests8 =
          EncodeServerRequests(knn_queries, 8);
      const std::vector<Bytes> requests64 =
          EncodeServerRequests(knn_queries, 64);

      // Warm the payload cache and page cache once for all batch sizes.
      MeasureServerQps(stack, requests8, knn_queries.size());
      const double srv1 =
          MeasureServerQps(stack, requests1, knn_queries.size());
      const double srv8 =
          MeasureServerQps(stack, requests8, knn_queries.size());
      const double srv64 =
          MeasureServerQps(stack, requests64, knn_queries.size());
      server_table.AddRow(row, {srv1, srv8, srv64,
                                srv1 > 0 ? srv64 / srv1 : 0}, 1);

      const std::vector<metric::VectorObject> client_queries = MakeQueries(
          config, num_client_queries, workload.hot_pool);
      const double cli1 =
          MeasureClientQps(stack, client_queries, k, cand_size, 1);
      const double cli64 =
          MeasureClientQps(stack, client_queries, k, cand_size, 64);
      client_table.AddRow(row, {cli1, cli64, cli1 > 0 ? cli64 / cli1 : 0},
                          1);
    }
  }
  server_table.Print();
  client_table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace simcloud

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  simcloud::bench::Run(smoke);
  return 0;
}
