// Ablation D (figure-style): pivot selection strategy vs. recall and cost.
//
// The paper picks pivots "at random from within the data set"
// (Section 5.1). This sweep quantifies what that choice costs: the same
// YEAST workload is indexed with random, farthest-first, max-variance,
// and medoid pivots, and the approximate 30-NN recall is measured at
// several candidate budgets. Selection time is reported so the one-off
// construction cost of the smarter strategies is visible too.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/clock.h"
#include "mindex/pivot_selection.h"

namespace simcloud {
namespace bench {
namespace {

void Run() {
  const size_t k = 30;
  const std::vector<size_t> cand_sizes = {150, 300, 600};

  DatasetConfig base = MakeYeastConfig();
  const auto queries = base.dataset.SampleQueries(100, 777);
  const auto exact = ComputeGroundTruth(base.dataset, queries, k);

  std::printf(
      "Ablation: pivot selection strategy (YEAST, %zu pivots, approx "
      "%zu-NN, 100 queries)\n",
      base.index_options.num_pivots, k);
  std::printf("%16s  %12s", "strategy", "select[ms]");
  for (size_t cand : cand_sizes) {
    std::printf("  recall@%-4zu", cand);
  }
  std::printf("  %12s\n", "client[ms]");

  for (mindex::PivotStrategy strategy :
       {mindex::PivotStrategy::kRandom, mindex::PivotStrategy::kFarthestFirst,
        mindex::PivotStrategy::kMaxVariance,
        mindex::PivotStrategy::kMedoids}) {
    DatasetConfig config = MakeYeastConfig();
    config.pivot_strategy = strategy;

    // Time the selection itself (it runs again inside BuildSecureStack,
    // but the measured figure is what a deployment would pay once).
    mindex::PivotSelectionOptions sel;
    sel.strategy = strategy;
    sel.count = config.index_options.num_pivots;
    sel.seed = config.pivot_seed;
    Stopwatch select_watch;
    auto selected = mindex::SelectPivots(config.dataset.objects(),
                                         *config.dataset.distance(), sel);
    const double select_ms = select_watch.ElapsedNanos() * 1e-6;
    if (!selected.ok()) {
      std::fprintf(stderr, "selection failed: %s\n",
                   selected.status().ToString().c_str());
      return;
    }

    SecureStack stack = BuildSecureStack(
        config, secure::InsertStrategy::kPermutationOnly, nullptr);

    std::printf("%16s  %12.2f",
                mindex::PivotStrategyName(strategy).c_str(), select_ms);
    double client_ms = 0;
    for (size_t cand : cand_sizes) {
      CostRow row = RunSecureKnnWorkload(stack, queries, exact, k, cand);
      std::printf("  %11.2f", row.recall_pct);
      client_ms = row.client_s * 1e3;
    }
    std::printf("  %12.4f\n", client_ms);
  }

  std::printf(
      "\nExpected shape: farthest-first and medoid pivots reach a given "
      "recall with a smaller candidate budget than random pivots (wider "
      "spread/better-centred Voronoi cells); per-query client cost is "
      "unchanged (same pivot count), only the one-off selection cost "
      "differs.\n");
}

}  // namespace
}  // namespace bench
}  // namespace simcloud

int main() {
  simcloud::bench::Run();
  return 0;
}
