// Ablation F (figure-style): what the distribution-hiding transform buys
// and what it costs.
//
// The paper's future work (Section 4.3/6) proposes transforming the
// distances stored on the server to hide the data distribution (privacy
// level 4). We implemented that as ConcaveTransform; this harness
// quantifies both sides of the trade on YEAST:
//   * leakage metrics from the attack module (KS distribution distance,
//     rank correlation, co-cell proximity ratio) for each configuration;
//   * search quality and cost (precise range candidates scanned, approx
//     recall) with and without the transform.

#include <cstdio>

#include "bench/bench_common.h"
#include "secure/attack.h"

namespace simcloud {
namespace bench {
namespace {

struct Config {
  const char* name;
  secure::InsertStrategy strategy;
  bool transform;
};

void Run() {
  const size_t k = 30;
  const size_t cand_size = 300;

  const Config configs[] = {
      {"precise", secure::InsertStrategy::kPrecise, false},
      {"precise+T", secure::InsertStrategy::kPrecise, true},
      {"perm-only", secure::InsertStrategy::kPermutationOnly, false},
      {"perm-only+T", secure::InsertStrategy::kPermutationOnly, true},
  };

  std::printf(
      "Ablation: distribution-hiding transform (YEAST, %zu pivots; leakage "
      "measured by the honest-but-curious server attack)\n",
      MakeYeastConfig().index_options.num_pivots);
  std::printf("%12s  %8s  %10s  %10s  %10s  %12s  %12s\n", "config",
              "leak?", "KS", "rank-corr", "cell-ratio", "recall@300",
              "scanned/rq");

  for (const Config& config : configs) {
    DatasetConfig dataset_config = MakeYeastConfig();
    const auto queries = dataset_config.dataset.SampleQueries(100, 888);
    const auto exact =
        ComputeGroundTruth(dataset_config.dataset, queries, k);

    // Build the stack; enable the transform before any insert.
    auto pivots = mindex::PivotSet::SelectRandom(
        dataset_config.dataset.objects(),
        dataset_config.index_options.num_pivots, dataset_config.pivot_seed);
    if (!pivots.ok()) return;
    mindex::PivotSet pivots_copy = *pivots;
    auto key = secure::SecretKey::Create(std::move(pivots).value(),
                                         Bytes(16, 0x5C));
    if (!key.ok()) return;
    if (config.transform) {
      if (!key->EnableDistanceTransform(7, 20000.0).ok()) return;
    }
    auto server =
        secure::EncryptedMIndexServer::Create(dataset_config.index_options);
    if (!server.ok()) return;
    net::LoopbackTransport transport(server->get());
    secure::EncryptionClient client(*key, dataset_config.dataset.distance(),
                                    &transport);
    if (!client
             .InsertBulk(dataset_config.dataset.objects(), config.strategy,
                         dataset_config.bulk_size)
             .ok()) {
      return;
    }

    // Attack the server state.
    auto view = secure::ExtractServerView((*server)->index());
    if (!view.ok()) return;
    auto report = secure::EvaluateLeakage(
        *view, dataset_config.dataset.objects(),
        *dataset_config.dataset.distance(), pivots_copy, 99);
    if (!report.ok()) return;

    // Approximate search quality (identical for all configs by design:
    // monotone transforms preserve permutations).
    double recall = 0;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      auto answer = client.ApproxKnn(queries[qi], k, cand_size);
      if (!answer.ok()) return;
      size_t hits = 0;
      for (const auto& n : *answer) {
        for (const auto& e : exact[qi]) {
          if (n.id == e.id) {
            ++hits;
            break;
          }
        }
      }
      recall += 100.0 * hits / exact[qi].size();
    }
    recall /= queries.size();

    // Precise-search server work (only meaningful with stored distances):
    // entries scanned per range query measures how much pruning power the
    // transform sacrifices.
    double scanned_per_query = 0;
    if (config.strategy == secure::InsertStrategy::kPrecise) {
      const auto stats_before = (*server)->total_search_stats();
      for (size_t qi = 0; qi < 20; ++qi) {
        (void)client.RangeSearch(queries[qi], 30.0);
      }
      const auto stats_after = (*server)->total_search_stats();
      scanned_per_query =
          (stats_after.entries_scanned - stats_before.entries_scanned) /
          20.0;
    }

    std::printf("%12s  %8s  %10.3f  %10.3f  %10.3f  %12.2f  %12.1f\n",
                config.name, report->distances_leaked ? "dist" : "perm",
                report->distance_ks_statistic, report->rank_correlation,
                report->same_cell_distance_ratio, recall,
                scanned_per_query);
  }

  std::printf(
      "\nExpected shape: precise leaks the exact distance distribution "
      "(KS ~ 0); the transform pushes KS up while rank correlation stays "
      "~1 (monotone) and the co-cell ratio is untouched (permutations are "
      "transform-invariant). Recall is identical across configs; the "
      "price of the transform is weaker precise-search pruning (more "
      "entries scanned per range query).\n");
}

}  // namespace
}  // namespace bench
}  // namespace simcloud

int main() {
  simcloud::bench::Run();
  return 0;
}
