// Failover acceptance: a 3-shard x 2-replica cluster under continuous
// query load loses one replica mid-soak. Three gates (the run aborts
// when violated):
//
//   * ZERO failed queries — every RangeSearchBatch before, during, and
//     after the kill must succeed; the group channel must reroute reads
//     to the surviving replica on the first stream error;
//   * the kill-window p99 latency must stay <= 3x the steady-state p99
//     — failover is a reroute, not a timeout: dead-replica detection
//     rides the broken stream, never a probe interval;
//   * after the victim's server restarts on the same port, the topology
//     monitor must redial it and report the replica `up` again (with
//     reconnects >= 1) within the recovery deadline.
//
// Usage: bench_failover [--smoke]
//   --smoke  fewer ops and a shorter soak, for CI.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "metric/dataset.h"
#include "mindex/pivot_selection.h"
#include "net/tcp.h"
#include "secure/client.h"
#include "secure/secret_key.h"
#include "secure/server.h"
#include "secure/sharded_server.h"

namespace simcloud {
namespace bench {
namespace {

double Percentile(std::vector<double> values, double pct) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const size_t index = std::min(values.size() - 1,
                                static_cast<size_t>(values.size() * pct));
  return values[index];
}

void Run(bool smoke) {
  constexpr size_t kShards = 3;
  constexpr size_t kReplicas = 2;
  const size_t steady_ops = smoke ? 400 : 2000;
  const size_t window_ops = smoke ? 400 : 2000;

  data::MixtureOptions mixture;
  mixture.num_objects = smoke ? 1200 : 4000;
  mixture.dimension = 8;
  mixture.num_clusters = 6;
  mixture.seed = 71;
  auto objects = data::MakeGaussianMixture(mixture);
  auto metric = std::make_shared<metric::L2Distance>();
  auto pivots = mindex::PivotSet::SelectRandom(objects, 16, 72);
  if (!pivots.ok()) std::exit(1);
  auto key = secure::SecretKey::Create(std::move(pivots).value(),
                                       Bytes(16, 0x61));
  if (!key.ok()) std::exit(1);

  mindex::MIndexOptions options;
  options.num_pivots = 16;
  options.bucket_capacity = 50;
  options.max_level = 4;

  // kShards x kReplicas independent shard servers.
  std::vector<std::unique_ptr<secure::EncryptedMIndexServer>> handlers;
  std::vector<std::unique_ptr<net::TcpServer>> servers;
  std::vector<std::vector<secure::ShardEndpoint>> replica_sets(kShards);
  net::TcpServerOptions server_options;
  server_options.worker_threads = 2;
  for (size_t s = 0; s < kShards; ++s) {
    for (size_t r = 0; r < kReplicas; ++r) {
      auto handler = secure::EncryptedMIndexServer::Create(options);
      if (!handler.ok()) std::exit(1);
      handlers.push_back(std::move(*handler));
      servers.push_back(std::make_unique<net::TcpServer>(
          handlers.back().get(), server_options));
      if (!servers.back()->Start(0).ok()) std::exit(1);
      replica_sets[s].push_back(
          secure::ShardEndpoint{"127.0.0.1", servers.back()->port()});
    }
  }

  secure::TopologyOptions topology;
  topology.probe_interval_ms = 25;
  topology.probe_timeout_ms = 500;
  topology.backoff_initial_ms = 25;
  topology.backoff_max_ms = 200;
  auto facade = secure::ShardedServer::Connect(
      replica_sets, options.num_pivots, net::ChannelPolicy::kPlaintext,
      net::SecureChannelOptions(), topology);
  if (!facade.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 facade.status().ToString().c_str());
    std::exit(1);
  }

  net::LoopbackTransport transport(facade->get());
  secure::EncryptionClient client(*key, metric, &transport);
  if (!client.InsertBulk(objects, secure::InsertStrategy::kPrecise, 200)
           .ok()) {
    std::exit(1);
  }

  Rng rng(73);
  constexpr double kRadius = 2.0;
  size_t failed_queries = 0;
  size_t neighbors_seen = 0;
  auto run_batches = [&](size_t count) {
    std::vector<double> micros;
    micros.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      std::vector<metric::VectorObject> batch;
      for (int q = 0; q < 4; ++q) {
        batch.push_back(objects[rng.NextBounded(objects.size())]);
      }
      Stopwatch watch;
      auto answers = client.RangeSearchBatch(batch, kRadius);
      micros.push_back(watch.ElapsedNanos() / 1e3);
      if (!answers.ok()) {
        failed_queries++;
      } else {
        for (const auto& list : *answers) neighbors_seen += list.size();
      }
    }
    return micros;
  };

  // Steady state, then kill one replica of shard 1 and keep querying
  // straight through the loss. The kill runs concurrently with the
  // window so in-flight queries feel the break, not a quiesced gap.
  std::vector<double> steady = run_batches(steady_ops);
  const double steady_p99 = Percentile(steady, 0.99);

  const size_t victim_shard = 1;
  const size_t victim_index = victim_shard * kReplicas;
  const uint16_t victim_port = servers[victim_index]->port();
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    servers[victim_index]->Stop();
  });
  std::vector<double> window = run_batches(window_ops);
  killer.join();
  const double window_p99 = Percentile(window, 0.99);

  // Restart the victim on its old port over its old handler and wait
  // for the monitor to bring the replica back.
  servers[victim_index] = std::make_unique<net::TcpServer>(
      handlers[victim_index].get(), server_options);
  if (!servers[victim_index]->Start(victim_port).ok()) {
    std::fprintf(stderr, "victim restart failed\n");
    std::exit(1);
  }
  bool recovered = false;
  uint64_t reconnects = 0;
  Stopwatch recovery;
  while (recovery.ElapsedSeconds() < 30) {
    auto snapshot = (*facade)->TopologySnapshot();
    const secure::ReplicaStatus& victim = snapshot[victim_shard].replicas[0];
    if (victim.health == secure::ShardHealth::kUp) {
      recovered = true;
      reconnects = victim.reconnects;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const double recovery_seconds = recovery.ElapsedSeconds();
  std::vector<double> after = run_batches(steady_ops / 2);

  std::printf("bench_failover: %zu shards x %zu replicas, %zu objects\n",
              kShards, kReplicas, objects.size());
  std::printf("%-12s %8s %12s %12s\n", "phase", "batches", "p50_us", "p99_us");
  std::printf("%-12s %8zu %12.1f %12.1f\n", "steady", steady.size(),
              Percentile(steady, 0.50), steady_p99);
  std::printf("%-12s %8zu %12.1f %12.1f\n", "kill-window", window.size(),
              Percentile(window, 0.50), window_p99);
  std::printf("%-12s %8zu %12.1f %12.1f\n", "recovered", after.size(),
              Percentile(after, 0.50), Percentile(after, 0.99));
  std::printf("failed queries: %zu; victim back to up in %.2fs "
              "(%llu reconnects); %zu neighbors returned\n",
              failed_queries, recovery_seconds,
              static_cast<unsigned long long>(reconnects), neighbors_seen);

  if (failed_queries != 0) {
    std::fprintf(stderr, "FAIL: %zu queries failed across the replica kill "
                         "(acceptance gate: zero)\n",
                 failed_queries);
    std::exit(1);
  }
  if (window_p99 > 3.0 * steady_p99) {
    std::fprintf(stderr,
                 "FAIL: kill-window p99 %.1f us > 3x steady-state p99 %.1f us\n",
                 window_p99, steady_p99);
    std::exit(1);
  }
  if (!recovered || reconnects < 1) {
    std::fprintf(stderr, "FAIL: victim replica never returned to up\n");
    std::exit(1);
  }

  std::printf("bench_failover OK (0 failed queries, kill-window p99 %.2fx "
              "steady, recovery %.2fs)\n",
              steady_p99 > 0 ? window_p99 / steady_p99 : 0, recovery_seconds);
  facade->reset();
  for (auto& server : servers) server->Stop();
}

}  // namespace
}  // namespace bench
}  // namespace simcloud

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  simcloud::bench::Run(smoke);
  return 0;
}
