// Synthetic-data generator tests: the three data-set profiles must match
// the paper's Table 1 (cardinality, dimensionality, metric) and be
// deterministic, clustered, and value-bounded.

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "data/synthetic.h"
#include "metric/ground_truth.h"

namespace simcloud {
namespace data {
namespace {

TEST(SyntheticTest, YeastProfileMatchesTable1) {
  auto dataset = MakeYeastLike();
  EXPECT_EQ(dataset.size(), 2882u);
  EXPECT_EQ(dataset.dimension(), 17u);
  EXPECT_EQ(dataset.name(), "YEAST");
  EXPECT_EQ(dataset.distance()->Name(), "L1");
}

TEST(SyntheticTest, HumanProfileMatchesTable1) {
  auto dataset = MakeHumanLike();
  EXPECT_EQ(dataset.size(), 4026u);
  EXPECT_EQ(dataset.dimension(), 96u);
  EXPECT_EQ(dataset.name(), "HUMAN");
  EXPECT_EQ(dataset.distance()->Name(), "L1");
}

TEST(SyntheticTest, CophirProfileMatchesTable1) {
  auto dataset = MakeCophirLike(5000);
  EXPECT_EQ(dataset.size(), 5000u);
  EXPECT_EQ(dataset.dimension(), 280u);
  EXPECT_EQ(dataset.name(), "CoPhIR");
}

TEST(SyntheticTest, CophirDistanceCoversAllDimensions) {
  auto distance = MakeCophirDistance();
  auto* segmented =
      dynamic_cast<metric::SegmentedLpDistance*>(distance.get());
  ASSERT_NE(segmented, nullptr);
  EXPECT_EQ(segmented->TotalDimension(), 280u);
  EXPECT_EQ(segmented->segments().size(), 5u);  // five MPEG-7 descriptors
}

TEST(SyntheticTest, GeneratorsAreDeterministic) {
  auto a = MakeYeastLike(42);
  auto b = MakeYeastLike(42);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); i += 97) {
    EXPECT_EQ(a.objects()[i], b.objects()[i]);
  }
  auto c = MakeYeastLike(43);
  EXPECT_NE(a.objects()[0], c.objects()[0]);
}

TEST(SyntheticTest, ObjectIdsAreSequentialAndUnique) {
  auto dataset = MakeHumanLike(1);
  std::set<metric::ObjectId> ids;
  for (const auto& o : dataset.objects()) ids.insert(o.id());
  EXPECT_EQ(ids.size(), dataset.size());
  EXPECT_EQ(*ids.begin(), 0u);
  EXPECT_EQ(*ids.rbegin(), dataset.size() - 1);
}

TEST(SyntheticTest, ValuesRespectClipRange) {
  MixtureOptions options;
  options.num_objects = 500;
  options.dimension = 4;
  options.min_value = -10;
  options.max_value = 10;
  options.center_spread = 100;  // force clipping to matter
  options.point_stddev = 50;
  auto objects = MakeGaussianMixture(options);
  for (const auto& o : objects) {
    for (float v : o.values()) {
      EXPECT_GE(v, -10.0f);
      EXPECT_LE(v, 10.0f);
    }
  }
}

TEST(SyntheticTest, RoundToIntQuantizes) {
  MixtureOptions options;
  options.num_objects = 100;
  options.dimension = 3;
  options.round_to_int = true;
  auto objects = MakeGaussianMixture(options);
  for (const auto& o : objects) {
    for (float v : o.values()) {
      EXPECT_EQ(v, std::nearbyint(v));
    }
  }
}

TEST(SyntheticTest, MixtureIsClustered) {
  // Clustered data: the average 1-NN distance must be much smaller than
  // the average distance to a random object.
  auto dataset = MakeYeastLike(11);
  const auto queries = dataset.SampleQueries(20, 5);
  double nn_sum = 0, random_sum = 0;
  for (const auto& q : queries) {
    auto nn = metric::LinearKnnSearch(dataset, q, 2);  // [0]=self, [1]=1-NN
    ASSERT_GE(nn.size(), 2u);
    nn_sum += nn[1].distance;
    random_sum += dataset.Distance(q, dataset.objects()[dataset.size() / 2]);
  }
  EXPECT_LT(nn_sum, random_sum * 0.8);
}

TEST(SyntheticTest, CophirValuesNonNegativeDescriptorRange) {
  auto dataset = MakeCophirLike(500, 3);
  for (size_t i = 0; i < dataset.size(); i += 53) {
    for (float v : dataset.objects()[i].values()) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 255.0f);
    }
  }
}

TEST(SyntheticTest, DefaultCophirSizeRespectsEnv) {
  unsetenv("SIMCLOUD_COPHIR_N");
  EXPECT_EQ(DefaultCophirSize(), 200000u);
  setenv("SIMCLOUD_COPHIR_N", "50000", 1);
  EXPECT_EQ(DefaultCophirSize(), 50000u);
  setenv("SIMCLOUD_COPHIR_N", "10", 1);  // below clamp -> default
  EXPECT_EQ(DefaultCophirSize(), 200000u);
  setenv("SIMCLOUD_COPHIR_N", "junk", 1);
  EXPECT_EQ(DefaultCophirSize(), 200000u);
  unsetenv("SIMCLOUD_COPHIR_N");
}

TEST(SyntheticTest, UniformVectorsInUnitCube) {
  auto objects = MakeUniformVectors(200, 6, 21);
  EXPECT_EQ(objects.size(), 200u);
  for (const auto& o : objects) {
    EXPECT_EQ(o.dimension(), 6u);
    for (float v : o.values()) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LT(v, 1.0f);
    }
  }
}

}  // namespace
}  // namespace data
}  // namespace simcloud
