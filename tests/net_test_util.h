// Shared raw-socket helpers for transport-facing tests: connecting to a
// TcpServer beneath the Transport abstraction and unwrapping response
// bodies, so wire-format changes are fixed in one place.

#ifndef SIMCLOUD_TESTS_NET_TEST_UTIL_H_
#define SIMCLOUD_TESTS_NET_TEST_UTIL_H_

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/bytes.h"
#include "common/serialize.h"

namespace simcloud {
namespace net {

/// Connects a plain blocking socket to 127.0.0.1:`port`.
inline int RawConnect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

/// Splits a response body (u64 server nanos, bool ok, payload / error)
/// into its payload; fails the test on a remote error.
inline Bytes ResponsePayloadOf(const Bytes& body) {
  BinaryReader reader(body);
  auto nanos = reader.ReadU64();
  EXPECT_TRUE(nanos.ok());
  auto ok = reader.ReadBool();
  EXPECT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
  return Bytes(body.begin() + reader.position(), body.end());
}

}  // namespace net
}  // namespace simcloud

#endif  // SIMCLOUD_TESTS_NET_TEST_UTIL_H_
