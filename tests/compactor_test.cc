// Compaction-engine tests: the log shrinks to the live bytes, handles are
// remapped so every answer is byte-identical to the uncompacted index,
// the payload cache survives the swap warm and never stale, automatic
// triggering bounds the garbage ratio, and the kCompact / kDeleteBatch
// opcodes work through the single and sharded servers.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "common/rng.h"
#include "common/serialize.h"
#include "data/synthetic.h"
#include "mindex/mindex.h"
#include "mindex/payload_cache.h"
#include "mindex/pivot_set.h"
#include "secure/client.h"
#include "secure/server.h"
#include "secure/sharded_server.h"

namespace simcloud {
namespace mindex {
namespace {

using metric::VectorObject;

struct TestWorld {
  std::vector<VectorObject> objects;
  std::shared_ptr<metric::DistanceFunction> metric;
  PivotSet pivots;
};

TestWorld MakeWorld(size_t n, uint64_t seed) {
  TestWorld world;
  data::MixtureOptions options;
  options.num_objects = n;
  options.dimension = 8;
  options.num_clusters = 6;
  options.seed = seed;
  world.objects = data::MakeGaussianMixture(options);
  world.metric = std::make_shared<metric::L2Distance>();
  auto pivots = PivotSet::SelectRandom(world.objects, 8, seed + 1);
  EXPECT_TRUE(pivots.ok());
  world.pivots = std::move(pivots).value();
  return world;
}

std::vector<float> DistancesFor(const TestWorld& world,
                                const VectorObject& object) {
  return world.pivots.ComputeDistances(object, *world.metric);
}

std::unique_ptr<MIndex> BuildIndex(const TestWorld& world,
                                   MIndexOptions options) {
  options.num_pivots = world.pivots.size();
  auto index = MIndex::Create(options);
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  for (const auto& object : world.objects) {
    BinaryWriter payload;
    object.Serialize(&payload);
    Status st = (*index)->Insert(object.id(), DistancesFor(world, object),
                                 {}, payload.buffer());
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  return std::move(index).value();
}

/// Full observable answer of one range query: (id, score, payload bytes).
std::vector<std::tuple<uint64_t, double, Bytes>> RangeAnswer(
    const MIndex& index, const TestWorld& world, const VectorObject& query,
    double radius) {
  auto candidates =
      index.RangeSearchCandidates(DistancesFor(world, query), radius);
  EXPECT_TRUE(candidates.ok()) << candidates.status().ToString();
  std::vector<std::tuple<uint64_t, double, Bytes>> answer;
  for (const auto& c : *candidates) {
    answer.emplace_back(c.id, c.score, c.payload);
  }
  return answer;
}

std::vector<std::tuple<uint64_t, double, Bytes>> KnnAnswer(
    const MIndex& index, const TestWorld& world, const VectorObject& query,
    size_t cand_size) {
  QuerySignature signature;
  signature.pivot_distances = DistancesFor(world, query);
  signature.permutation = DistancesToPermutation(signature.pivot_distances);
  auto candidates = index.ApproxKnnCandidates(signature, cand_size);
  EXPECT_TRUE(candidates.ok()) << candidates.status().ToString();
  std::vector<std::tuple<uint64_t, double, Bytes>> answer;
  for (const auto& c : *candidates) {
    answer.emplace_back(c.id, c.score, c.payload);
  }
  return answer;
}

class CompactorTest : public ::testing::TestWithParam<StorageKind> {
 protected:
  MIndexOptions Options() {
    MIndexOptions options;
    options.bucket_capacity = 30;
    options.max_level = 4;
    options.storage_kind = GetParam();
    if (GetParam() == StorageKind::kDisk) {
      path_ = testing::TempDir() + "/simcloud_compactor_test.bucket";
      options.disk_path = path_;
    }
    return options;
  }
  void TearDown() override {
    if (!path_.empty()) {
      std::remove(path_.c_str());
      std::remove((path_ + ".compact").c_str());
    }
  }
  std::string path_;
};

TEST_P(CompactorTest, CompactReclaimsDeadBytesAndPreservesEveryAnswer) {
  TestWorld world = MakeWorld(400, 131);
  auto index = BuildIndex(world, Options());

  // Delete 40% of the collection.
  for (size_t i = 0; i < world.objects.size(); i += 5) {
    const VectorObject& victim = world.objects[i];
    ASSERT_TRUE(
        index->Delete(victim.id(), DistancesFor(world, victim), {}).ok());
    if (i + 2 < world.objects.size()) {
      const VectorObject& second = world.objects[i + 2];
      ASSERT_TRUE(
          index->Delete(second.id(), DistancesFor(world, second), {}).ok());
    }
  }
  const auto before = index->StorageStats();
  ASSERT_GT(before.dead_bytes, 0u);
  const uint64_t log_before = index->Stats().storage_bytes;

  // Pin the answers of several queries before compaction.
  std::vector<VectorObject> queries = {world.objects[1], world.objects[33],
                                       world.objects[123]};
  std::vector<std::vector<std::tuple<uint64_t, double, Bytes>>> range_before,
      knn_before;
  for (const auto& query : queries) {
    range_before.push_back(RangeAnswer(*index, world, query, 2.0));
    knn_before.push_back(KnnAnswer(*index, world, query, 50));
  }

  auto report = index->Compact();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->compacted);
  EXPECT_EQ(report->bytes_before, log_before);
  EXPECT_EQ(report->bytes_after, before.live_bytes);
  EXPECT_EQ(report->payloads_moved, index->size());
  EXPECT_EQ(report->reclaimed_bytes, before.dead_bytes);

  // The log now holds exactly the live bytes, nothing dead.
  const auto after = index->StorageStats();
  EXPECT_EQ(after.dead_bytes, 0u);
  EXPECT_EQ(after.live_bytes, before.live_bytes);
  EXPECT_EQ(index->Stats().storage_bytes, before.live_bytes);
  EXPECT_TRUE(index->CheckInvariants().ok());

  // Every answer — ids, scores, payload bytes — is unchanged.
  for (size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(RangeAnswer(*index, world, queries[q], 2.0), range_before[q])
        << "range query " << q;
    EXPECT_EQ(KnnAnswer(*index, world, queries[q], 50), knn_before[q])
        << "knn query " << q;
  }

  // A second pass has nothing to do.
  auto again = index->Compact();
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->compacted);
  EXPECT_EQ(again->bytes_after, before.live_bytes);
}

TEST_P(CompactorTest, AutomaticTriggerBoundsGarbageRatio) {
  TestWorld world = MakeWorld(400, 137);
  MIndexOptions options = Options();
  options.compaction_trigger = 0.3;
  auto index = BuildIndex(world, options);

  // Delete 60% one by one; every time the dead fraction passes 30% the
  // index must compact itself, so the ratio stays bounded throughout.
  size_t deleted = 0;
  for (size_t i = 0; i < world.objects.size(); ++i) {
    if (i % 5 == 4) continue;  // keep 20%... delete indices not ending in 4
    if (deleted >= (world.objects.size() * 3) / 5) break;
    const VectorObject& victim = world.objects[i];
    ASSERT_TRUE(
        index->Delete(victim.id(), DistancesFor(world, victim), {}).ok());
    ++deleted;
    EXPECT_LT(index->StorageStats().GarbageRatio(), 0.3 + 1e-9)
        << "after delete " << deleted;
  }
  ASSERT_GT(deleted, 0u);
  EXPECT_TRUE(index->CheckInvariants().ok());
  // The log never holds more than live / (1 - trigger) bytes.
  const auto stats = index->StorageStats();
  EXPECT_LE(stats.TotalBytes(),
            static_cast<uint64_t>(stats.live_bytes / 0.7) + 1);

  // Deleted objects are really gone; survivors still answer.
  auto survivors = RangeAnswer(*index, world, world.objects[4], 2.0);
  for (const auto& [id, score, payload] : survivors) {
    (void)score;
    (void)payload;
    bool is_live = false;
    for (const auto& object : world.objects) {
      if (object.id() == id) {
        is_live = true;
        break;
      }
    }
    EXPECT_TRUE(is_live);
  }
}

TEST(InsertTest, RejectedInsertDoesNotLeakStoredPayload) {
  MIndexOptions options;
  options.num_pivots = 8;
  options.bucket_capacity = 20;
  options.max_level = 3;
  auto index = MIndex::Create(options);
  ASSERT_TRUE(index.ok());

  // The payload is appended to the log before the tree rejects the
  // too-short routing permutation; the handle must be freed, not leaked
  // as permanently live.
  auto status = (*index)->Insert(1, {}, Permutation{0, 1}, Bytes(64, 0xEE));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ((*index)->size(), 0u);
  const auto stats = (*index)->StorageStats();
  EXPECT_EQ(stats.live_payloads, 0u);
  EXPECT_EQ(stats.dead_payloads, 1u);
  EXPECT_EQ(stats.live_bytes, 0u);
}

TEST(DeleteBatchTest, MalformedItemRejectsTheBatchBeforeAnyMutation) {
  TestWorld world = MakeWorld(100, 149);
  MIndexOptions options;
  options.bucket_capacity = 20;
  options.max_level = 3;
  auto index = BuildIndex(world, options);

  std::vector<Deletion> batch;
  batch.push_back(Deletion{world.objects[0].id(),
                           DistancesFor(world, world.objects[0]),
                           {}});
  batch.push_back(Deletion{world.objects[1].id(), {}, {}});  // no routing
  auto result = index->DeleteBatch(batch);
  ASSERT_FALSE(result.ok());
  // Routing is validated for the whole batch up front: nothing applied.
  EXPECT_EQ(index->size(), world.objects.size());
  EXPECT_EQ(index->StorageStats().dead_payloads, 0u);
}

TEST(DeleteBatchTest, InvalidPermutationRejectsTheBatchBeforeAnyMutation) {
  TestWorld world = MakeWorld(100, 151);
  MIndexOptions options;
  options.bucket_capacity = 20;
  options.max_level = 3;
  auto index = BuildIndex(world, options);

  // The second item carries a permutation the tree would reject; routing
  // validation catches it up front, so the first item must not have been
  // applied either — DeleteBatch is all-or-nothing (NotFound aside).
  std::vector<Deletion> batch;
  batch.push_back(Deletion{world.objects[0].id(),
                           DistancesFor(world, world.objects[0]),
                           {}});
  batch.push_back(
      Deletion{world.objects[1].id(), {}, Permutation{99, 99, 99, 99}});
  auto result = index->DeleteBatch(batch);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(index->size(), world.objects.size());
  EXPECT_EQ(index->StorageStats().dead_payloads, 0u);
}

TEST(CompactorCacheTest, CacheSurvivesCompactionWarmAndNeverStale) {
  TestWorld world = MakeWorld(300, 139);
  MIndexOptions options;
  options.bucket_capacity = 30;
  options.max_level = 4;
  options.storage_kind = StorageKind::kDisk;
  options.disk_path = testing::TempDir() + "/simcloud_compactor_cache.bucket";
  options.cache_bytes = 1 << 20;
  auto index = BuildIndex(world, options);

  // Warm the cache with a few queries, then delete a third.
  const VectorObject& hot_query = world.objects[10];
  auto warm = RangeAnswer(*index, world, hot_query, 2.0);
  ASSERT_FALSE(warm.empty());
  for (size_t i = 0; i < world.objects.size(); i += 3) {
    const VectorObject& victim = world.objects[i];
    ASSERT_TRUE(
        index->Delete(victim.id(), DistancesFor(world, victim), {}).ok());
  }
  const auto expected = RangeAnswer(*index, world, hot_query, 2.0);

  auto report = index->Compact();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->compacted);

  // The hot set was re-admitted under the remapped handles: the cache is
  // warm immediately after the swap...
  const auto* cache = dynamic_cast<const PayloadCache*>(&index->storage());
  ASSERT_NE(cache, nullptr);
  EXPECT_GT(cache->stats().cached_payloads, 0u)
      << "compaction must re-admit the pre-compaction hot set";

  // ...and, critically, serves the exact post-delete answer.
  EXPECT_EQ(RangeAnswer(*index, world, hot_query, 2.0), expected);
  EXPECT_EQ(index->StorageStats().dead_bytes, 0u);
  std::remove(options.disk_path.c_str());
}

// The mid-pass mutation window: the between_steps hook runs with no lock
// held, exactly where concurrent writers interleave with a background
// pass. Everything that lands there must flow through the relocation
// journal — inserts are caught up into the fresh log, deletes of
// already-copied payloads free the copy at the swap.
TEST_P(CompactorTest, MidPassMutationsSurviveTheRelocationJournal) {
  TestWorld world = MakeWorld(360, 167);
  MIndexOptions options = Options();
  const std::vector<VectorObject> initial(world.objects.begin(),
                                          world.objects.begin() + 300);
  const std::vector<VectorObject> extra(world.objects.begin() + 300,
                                        world.objects.end());

  auto make_index = [&](const std::string& suffix) {
    MIndexOptions opts = options;
    if (!opts.disk_path.empty()) opts.disk_path += suffix;
    opts.num_pivots = world.pivots.size();
    auto index = MIndex::Create(opts);
    EXPECT_TRUE(index.ok()) << index.status().ToString();
    for (const auto& object : initial) {
      BinaryWriter payload;
      object.Serialize(&payload);
      EXPECT_TRUE((*index)
                      ->Insert(object.id(), DistancesFor(world, object), {},
                               payload.buffer())
                      .ok());
    }
    return std::move(index).value();
  };
  auto compacting = make_index("");
  auto reference = make_index(".ref");

  auto insert_both = [&](const VectorObject& object) {
    BinaryWriter payload;
    object.Serialize(&payload);
    for (MIndex* index : {compacting.get(), reference.get()}) {
      ASSERT_TRUE(index
                      ->Insert(object.id(), DistancesFor(world, object), {},
                               payload.buffer())
                      .ok());
    }
  };
  auto delete_both = [&](const VectorObject& object) {
    for (MIndex* index : {compacting.get(), reference.get()}) {
      ASSERT_TRUE(
          index->Delete(object.id(), DistancesFor(world, object), {}).ok());
    }
  };

  // Pre-pass garbage: delete every third object from both.
  for (size_t i = 0; i < initial.size(); i += 3) delete_both(initial[i]);
  ASSERT_GT(compacting->StorageStats().dead_bytes, 0u);

  // Run a forced pass with small steps, mutating BOTH indexes from the
  // mid-pass window: fresh inserts, deletes of long-copied survivors, and
  // an insert that is deleted again before the pass ends (its journal
  // entries must cancel out).
  CompactorOptions copts;
  copts.force = true;
  copts.batch_size = 16;
  size_t step = 0;
  copts.between_steps = [&] {
    ++step;
    if (step == 2) {
      for (size_t i = 0; i < 20; ++i) insert_both(extra[i]);
    }
    if (step == 4) {
      // Survivors copied by the very first steps (handle order follows
      // insert order on a single-segment log).
      delete_both(initial[1]);
      delete_both(initial[2]);
      // Inserted two steps ago, gone before the swap.
      delete_both(extra[0]);
      delete_both(extra[1]);
    }
    if (step == 6) {
      for (size_t i = 20; i < extra.size(); ++i) insert_both(extra[i]);
    }
  };
  auto report = compacting->Compact(copts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->compacted);
  ASSERT_GT(step, 5u) << "the pass must have run in many small steps";

  // Both indexes now hold the same live set; every answer must agree.
  EXPECT_EQ(compacting->size(), reference->size());
  EXPECT_TRUE(compacting->CheckInvariants().ok());
  for (size_t qi : {1u, 40u, 123u, 310u}) {
    const VectorObject& query = world.objects[qi];
    EXPECT_EQ(RangeAnswer(*compacting, world, query, 2.0),
              RangeAnswer(*reference, world, query, 2.0))
        << "range query " << qi;
    EXPECT_EQ(KnnAnswer(*compacting, world, query, 50),
              KnnAnswer(*reference, world, query, 50))
        << "knn query " << qi;
  }
  const auto live_ref = reference->StorageStats();
  const auto live_got = compacting->StorageStats();
  EXPECT_EQ(live_got.live_bytes, live_ref.live_bytes);
  EXPECT_EQ(live_got.live_payloads, live_ref.live_payloads);

  // The only garbage the fresh log may carry is the copies of payloads
  // deleted mid-pass; a quiescent second pass clears it.
  auto second = compacting->Compact();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(compacting->StorageStats().dead_bytes, 0u);
  for (size_t qi : {1u, 310u}) {
    const VectorObject& query = world.objects[qi];
    EXPECT_EQ(RangeAnswer(*compacting, world, query, 2.0),
              RangeAnswer(*reference, world, query, 2.0));
  }
  if (!path_.empty()) std::remove((path_ + ".ref").c_str());
}

INSTANTIATE_TEST_SUITE_P(Backends, CompactorTest,
                         ::testing::Values(StorageKind::kMemory,
                                           StorageKind::kDisk),
                         [](const auto& info) {
                           return info.param == StorageKind::kMemory
                                      ? "memory"
                                      : "disk";
                         });

// ---------------------------------------------------- partial compaction

class PartialCompactionTest : public ::testing::Test {
 protected:
  static constexpr size_t kPayloadBytes = 2048;

  void SetUp() override {
    world_ = MakeWorld(400, 173);
    path_ = testing::TempDir() + "/simcloud_partial_test.bucket";
    compacting_ = Build(path_);
    reference_ = Build(path_ + ".ref");
    // Delete two of every three among the first 300 objects from both:
    // the early (sealed) 64 KiB segments end up ~2/3 dead, the tail
    // segments stay clean.
    for (size_t i = 0; i < 300; ++i) {
      if (i % 3 == 2) continue;
      for (MIndex* index : {compacting_.get(), reference_.get()}) {
        const VectorObject& victim = world_.objects[i];
        ASSERT_TRUE(
            index->Delete(victim.id(), DistancesFor(world_, victim), {})
                .ok());
      }
    }
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".ref").c_str());
  }

  std::unique_ptr<MIndex> Build(const std::string& path) {
    MIndexOptions options;
    options.num_pivots = world_.pivots.size();
    options.bucket_capacity = 40;
    options.max_level = 4;
    options.storage_kind = StorageKind::kDisk;
    options.disk_path = path;
    auto index = MIndex::Create(options);
    EXPECT_TRUE(index.ok()) << index.status().ToString();
    for (size_t i = 0; i < world_.objects.size(); ++i) {
      const VectorObject& object = world_.objects[i];
      // Padded payloads so the log spans many segments.
      Bytes payload(kPayloadBytes, static_cast<uint8_t>(i));
      EXPECT_TRUE((*index)
                      ->Insert(object.id(), DistancesFor(world_, object), {},
                               payload)
                      .ok());
    }
    return std::move(index).value();
  }

  void ExpectAnswersMatchReference() {
    for (size_t qi : {2u, 47u, 200u, 350u}) {
      const VectorObject& query = world_.objects[qi];
      EXPECT_EQ(RangeAnswer(*compacting_, world_, query, 2.0),
                RangeAnswer(*reference_, world_, query, 2.0))
          << "range query " << qi;
      EXPECT_EQ(KnnAnswer(*compacting_, world_, query, 50),
                KnnAnswer(*reference_, world_, query, 50))
          << "knn query " << qi;
    }
  }

  TestWorld world_;
  std::string path_;
  std::unique_ptr<MIndex> compacting_;
  std::unique_ptr<MIndex> reference_;
};

TEST_F(PartialCompactionTest, ReleasesDeadestSegmentsWithoutFullRewrite) {
  const auto before = compacting_->StorageStats();
  ASSERT_GT(before.dead_bytes, 0u);
  ASSERT_GT(before.segment_count, 8u) << "log must span many segments";

  CompactorOptions opts;
  opts.force = true;
  opts.mode = CompactionMode::kPartial;
  opts.segment_dead_threshold = 0.5;
  auto report = compacting_->Compact(opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->compacted);
  EXPECT_EQ(report->mode, CompactionMode::kPartial);
  EXPECT_GE(report->segments_released, 5u);
  // Partial means partial: only the live payloads of the targeted
  // segments moved, not the whole collection.
  EXPECT_GT(report->payloads_moved, 0u);
  EXPECT_LT(report->payloads_moved, compacting_->size());
  EXPECT_GT(report->reclaimed_bytes, 0u);

  const auto after = compacting_->StorageStats();
  EXPECT_LT(after.TotalBytes(), before.TotalBytes());
  EXPECT_LT(after.dead_bytes, before.dead_bytes);
  EXPECT_EQ(after.live_bytes, before.live_bytes);
  EXPECT_TRUE(compacting_->CheckInvariants().ok());
  ExpectAnswersMatchReference();

  // Everything eligible was released; a second pass finds no target.
  auto again = compacting_->Compact(opts);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->compacted);
  ExpectAnswersMatchReference();
}

TEST_F(PartialCompactionTest, PassByteBudgetBoundsTheWork) {
  CompactorOptions opts;
  opts.force = true;
  opts.mode = CompactionMode::kPartial;
  opts.segment_dead_threshold = 0.5;
  opts.max_pass_bytes = 1;  // at least one segment is always taken
  auto report = compacting_->Compact(opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->compacted);
  EXPECT_EQ(report->segments_released, 1u);
  // One 64 KiB segment holds ~32 of these payloads, a third of them live.
  EXPECT_LE(report->payloads_moved, 16u);
  EXPECT_TRUE(compacting_->CheckInvariants().ok());
  ExpectAnswersMatchReference();

  // Later passes keep eating the backlog one segment at a time.
  auto next = compacting_->Compact(opts);
  ASSERT_TRUE(next.ok());
  EXPECT_TRUE(next->compacted);
  EXPECT_EQ(next->segments_released, 1u);
  ExpectAnswersMatchReference();
}

TEST(PartialCompactionFallbackTest, MemoryBackendFallsBackToFullPass) {
  TestWorld world = MakeWorld(200, 179);
  MIndexOptions options;
  options.num_pivots = world.pivots.size();
  options.bucket_capacity = 30;
  options.max_level = 4;
  auto index = BuildIndex(world, options);
  for (size_t i = 0; i < world.objects.size(); i += 2) {
    const VectorObject& victim = world.objects[i];
    ASSERT_TRUE(
        index->Delete(victim.id(), DistancesFor(world, victim), {}).ok());
  }

  CompactorOptions opts;
  opts.force = true;
  opts.mode = CompactionMode::kPartial;
  auto report = index->Compact(opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->compacted);
  // Memory storage cannot release segments in place: the pass must have
  // run (and reported) the full rewrite, leaving zero garbage.
  EXPECT_EQ(report->mode, CompactionMode::kFull);
  EXPECT_EQ(index->StorageStats().dead_bytes, 0u);
  EXPECT_TRUE(index->CheckInvariants().ok());
}

}  // namespace
}  // namespace mindex

// ------------------------------------------------------- wire-level tests

namespace secure {
namespace {

using metric::VectorObject;

struct Stack {
  mindex::PivotSet pivots;
  SecretKey key;
  std::unique_ptr<net::RequestHandler> server;
  std::unique_ptr<net::LoopbackTransport> transport;
  std::unique_ptr<EncryptionClient> client;
};

Stack MakeStack(const std::vector<VectorObject>& objects,
                std::shared_ptr<metric::DistanceFunction> metric,
                size_t num_shards, const std::string& disk_path,
                double compaction_trigger) {
  auto pivots = mindex::PivotSet::SelectRandom(objects, 10, 77);
  EXPECT_TRUE(pivots.ok());
  auto key = SecretKey::Create(*pivots, Bytes(16, 0x42));
  EXPECT_TRUE(key.ok());

  mindex::MIndexOptions options;
  options.num_pivots = 10;
  options.bucket_capacity = 40;
  options.max_level = 4;
  options.compaction_trigger = compaction_trigger;
  if (!disk_path.empty()) {
    options.storage_kind = mindex::StorageKind::kDisk;
    options.disk_path = disk_path;
    options.cache_bytes = 1 << 18;
  }

  Stack stack{std::move(*pivots), std::move(*key), nullptr, nullptr, nullptr};
  if (num_shards <= 1) {
    auto server = EncryptedMIndexServer::Create(options);
    EXPECT_TRUE(server.ok());
    stack.server = std::move(*server);
  } else {
    auto server = ShardedServer::Create(options, num_shards);
    EXPECT_TRUE(server.ok());
    stack.server = std::move(*server);
  }
  stack.transport =
      std::make_unique<net::LoopbackTransport>(stack.server.get());
  stack.client = std::make_unique<EncryptionClient>(stack.key, metric,
                                                    stack.transport.get());
  EXPECT_TRUE(stack.client
                  ->InsertBulk(objects, InsertStrategy::kPrecise, 200)
                  .ok());
  return stack;
}

class CompactOpcodeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CompactOpcodeTest, DeleteBatchThenCompactThroughTheWire) {
  const size_t num_shards = GetParam();
  data::MixtureOptions mixture;
  mixture.num_objects = 500;
  mixture.dimension = 8;
  mixture.num_clusters = 5;
  mixture.seed = 149;
  const auto objects = data::MakeGaussianMixture(mixture);
  auto metric = std::make_shared<metric::L2Distance>();
  const std::string disk_path = testing::TempDir() +
                                "/simcloud_compact_opcode_" +
                                std::to_string(num_shards) + ".bucket";
  Stack stack = MakeStack(objects, metric, num_shards, disk_path,
                          /*compaction_trigger=*/0.0);

  // Batched delete of half the collection: one request per bulk.
  std::vector<VectorObject> victims(objects.begin(),
                                    objects.begin() + objects.size() / 2);
  ASSERT_TRUE(stack.client->DeleteBatch(victims).ok());

  auto stats = stack.client->GetServerStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->object_count, objects.size() - victims.size());
  EXPECT_GT(stats->dead_storage_bytes, 0u);
  const uint64_t log_before = stats->storage_bytes;
  const uint64_t live = stats->live_storage_bytes;

  // Unforced compaction with trigger 0 must refuse...
  auto skipped = stack.client->Compact(/*force=*/false);
  ASSERT_TRUE(skipped.ok());
  EXPECT_FALSE(skipped->compacted);

  // ...forced compaction reclaims everything dead, on every shard.
  auto report = stack.client->Compact(/*force=*/true);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->compacted);
  EXPECT_EQ(report->bytes_before, log_before);
  EXPECT_EQ(report->bytes_after, live);

  stats = stack.client->GetServerStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->storage_bytes, live);
  EXPECT_EQ(stats->dead_storage_bytes, 0u);

  // Queries after compaction equal a reference stack that saw the same
  // inserts and deletes but never compacted.
  const std::string ref_path = disk_path + ".ref";
  Stack reference = MakeStack(objects, metric, num_shards, ref_path, 0.0);
  ASSERT_TRUE(reference.client->DeleteBatch(victims).ok());
  for (size_t qi : {0u, 7u, 140u}) {
    auto got = stack.client->RangeSearch(objects[qi], 2.0);
    auto want = reference.client->RangeSearch(objects[qi], 2.0);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(got->size(), want->size()) << "query " << qi;
    for (size_t i = 0; i < want->size(); ++i) {
      EXPECT_EQ((*got)[i].id, (*want)[i].id);
      EXPECT_EQ((*got)[i].distance, (*want)[i].distance);
    }
  }

  // Deleting already-deleted objects reports NotFound but is harmless.
  auto missing = stack.client->DeleteBatch(victims);
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);

  for (size_t i = 0; i < std::max<size_t>(num_shards, 1); ++i) {
    std::remove((disk_path + "." + std::to_string(i)).c_str());
    std::remove((ref_path + "." + std::to_string(i)).c_str());
  }
  std::remove(disk_path.c_str());
  std::remove(ref_path.c_str());
}

TEST(ShardedDeleteBatchTest, MalformedItemLeavesEveryShardUntouched) {
  data::MixtureOptions mixture;
  mixture.num_objects = 200;
  mixture.dimension = 8;
  mixture.num_clusters = 4;
  mixture.seed = 157;
  const auto objects = data::MakeGaussianMixture(mixture);
  auto metric = std::make_shared<metric::L2Distance>();
  Stack stack = MakeStack(objects, metric, /*num_shards=*/3, "", 0.0);
  auto* sharded = dynamic_cast<ShardedServer*>(stack.server.get());
  ASSERT_NE(sharded, nullptr);

  // Valid deletes for shards 0..2 plus one item whose permutation is
  // invalid: the facade must reject the whole batch with NO shard
  // mutated, exactly like a single-node server would.
  std::vector<DeleteItem> items;
  for (size_t i = 0; i < 6; ++i) {
    std::vector<float> d =
        stack.pivots.ComputeDistances(objects[i], *metric);
    items.push_back(
        DeleteItem{objects[i].id(), mindex::DistancesToPermutation(d)});
  }
  items.push_back(DeleteItem{objects[6].id(),
                             mindex::Permutation{42, 42, 42, 42}});
  auto response =
      stack.server->Handle(EncodeDeleteBatchRequest(items));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(sharded->TotalObjects(), objects.size());
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, CompactOpcodeTest,
                         ::testing::Values(1, 3),
                         [](const auto& info) {
                           return "shards" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace secure
}  // namespace simcloud
