// Crypto substrate tests: AES against FIPS-197 / NIST SP 800-38A known
// answers, SHA-256 and HMAC-SHA256 against FIPS/RFC vectors, PBKDF2
// against published vectors, plus round-trip and tamper-detection
// property tests for the Cipher wrapper.

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/rng.h"
#include "crypto/aead.h"
#include "crypto/aes.h"
#include "crypto/cipher.h"
#include "crypto/cpu_features.h"
#include "crypto/hmac.h"
#include "crypto/kernels.h"
#include "crypto/secure_random.h"
#include "crypto/sha256.h"

namespace simcloud {
namespace crypto {
namespace {

Bytes Hex(const std::string& h) {
  auto r = FromHex(h);
  EXPECT_TRUE(r.ok()) << h;
  return r.value_or(Bytes{});
}

// ---------------------------------------------------------------- AES KATs

TEST(AesTest, Fips197Appendix_Aes128) {
  // FIPS-197 Appendix C.1.
  auto aes = Aes::Create(Hex("000102030405060708090a0b0c0d0e0f"));
  ASSERT_TRUE(aes.ok());
  const Bytes plaintext = Hex("00112233445566778899aabbccddeeff");
  uint8_t out[16];
  aes->EncryptBlock(plaintext.data(), out);
  EXPECT_EQ(ToHex(out, 16), "69c4e0d86a7b0430d8cdb78070b4c55a");

  uint8_t back[16];
  aes->DecryptBlock(out, back);
  EXPECT_EQ(ToHex(back, 16), "00112233445566778899aabbccddeeff");
}

TEST(AesTest, Fips197Appendix_Aes192) {
  // FIPS-197 Appendix C.2.
  auto aes =
      Aes::Create(Hex("000102030405060708090a0b0c0d0e0f1011121314151617"));
  ASSERT_TRUE(aes.ok());
  EXPECT_EQ(aes->rounds(), 12);
  const Bytes plaintext = Hex("00112233445566778899aabbccddeeff");
  uint8_t out[16];
  aes->EncryptBlock(plaintext.data(), out);
  EXPECT_EQ(ToHex(out, 16), "dda97ca4864cdfe06eaf70a0ec0d7191");
}

TEST(AesTest, Fips197Appendix_Aes256) {
  // FIPS-197 Appendix C.3.
  auto aes = Aes::Create(Hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"));
  ASSERT_TRUE(aes.ok());
  EXPECT_EQ(aes->rounds(), 14);
  const Bytes plaintext = Hex("00112233445566778899aabbccddeeff");
  uint8_t out[16];
  aes->EncryptBlock(plaintext.data(), out);
  EXPECT_EQ(ToHex(out, 16), "8ea2b7ca516745bfeafc49904b496089");
}

TEST(AesTest, Sp800_38a_Ecb128Vectors) {
  // NIST SP 800-38A F.1.1 (ECB-AES128) block 1 and 2.
  auto aes = Aes::Create(Hex("2b7e151628aed2a6abf7158809cf4f3c"));
  ASSERT_TRUE(aes.ok());
  uint8_t out[16];
  aes->EncryptBlock(Hex("6bc1bee22e409f96e93d7e117393172a").data(), out);
  EXPECT_EQ(ToHex(out, 16), "3ad77bb40d7a3660a89ecaf32466ef97");
  aes->EncryptBlock(Hex("ae2d8a571e03ac9c9eb76fac45af8e51").data(), out);
  EXPECT_EQ(ToHex(out, 16), "f5d3d58503b9699de785895a96fdbaaf");
}

TEST(AesTest, RejectsBadKeySizes) {
  EXPECT_FALSE(Aes::Create(Bytes(15)).ok());
  EXPECT_FALSE(Aes::Create(Bytes(17)).ok());
  EXPECT_FALSE(Aes::Create(Bytes(0)).ok());
  EXPECT_TRUE(Aes::Create(Bytes(16)).ok());
  EXPECT_TRUE(Aes::Create(Bytes(24)).ok());
  EXPECT_TRUE(Aes::Create(Bytes(32)).ok());
}

TEST(AesTest, EncryptDecryptAllKeySizes) {
  Rng rng(100);
  for (size_t key_len : {16u, 24u, 32u}) {
    Bytes key(key_len);
    for (auto& b : key) b = static_cast<uint8_t>(rng.NextBounded(256));
    auto aes = Aes::Create(key);
    ASSERT_TRUE(aes.ok());
    for (int i = 0; i < 50; ++i) {
      uint8_t block[16], enc[16], dec[16];
      for (auto& b : block) b = static_cast<uint8_t>(rng.NextBounded(256));
      aes->EncryptBlock(block, enc);
      aes->DecryptBlock(enc, dec);
      EXPECT_EQ(ToHex(dec, 16), ToHex(block, 16));
    }
  }
}

// ------------------------------------------------------------- CBC / CTR

TEST(CipherTest, Sp800_38a_Cbc128FirstBlock) {
  // NIST SP 800-38A F.2.1: CBC-AES128.Encrypt, segment 1.
  auto cipher = Cipher::Create(Hex("2b7e151628aed2a6abf7158809cf4f3c"),
                               CipherMode::kCbc);
  ASSERT_TRUE(cipher.ok());
  const Bytes iv = Hex("000102030405060708090a0b0c0d0e0f");
  const Bytes plaintext = Hex("6bc1bee22e409f96e93d7e117393172a");
  auto ct = cipher->EncryptWithIv(plaintext, iv);
  ASSERT_TRUE(ct.ok());
  // Layout: IV || C1 || padding block. First ciphertext block must match.
  EXPECT_EQ(ToHex(ct->data() + 16, 16), "7649abac8119b246cee98e9b12e9197d");
  auto back = cipher->Decrypt(*ct);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, plaintext);
}

TEST(CipherTest, Sp800_38a_Ctr128) {
  // NIST SP 800-38A F.5.1: CTR-AES128.Encrypt, all four segments.
  auto cipher = Cipher::Create(Hex("2b7e151628aed2a6abf7158809cf4f3c"),
                               CipherMode::kCtr);
  ASSERT_TRUE(cipher.ok());
  const Bytes iv = Hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const Bytes plaintext = Hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  auto ct = cipher->EncryptWithIv(plaintext, iv);
  ASSERT_TRUE(ct.ok());
  EXPECT_EQ(ToHex(ct->data() + 16, ct->size() - 16),
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff"
            "5ae4df3edbd5d35e5b4f09020db03eab"
            "1e031dda2fbe03d1792170a0f3009cee");
}

TEST(CipherTest, CiphertextSizeFormulas) {
  auto cbc = Cipher::Create(Bytes(16, 1), CipherMode::kCbc);
  auto ctr = Cipher::Create(Bytes(16, 1), CipherMode::kCtr);
  ASSERT_TRUE(cbc.ok());
  ASSERT_TRUE(ctr.ok());
  EXPECT_EQ(cbc->CiphertextSize(0), 32u);    // IV + 1 padding block
  EXPECT_EQ(cbc->CiphertextSize(15), 32u);
  EXPECT_EQ(cbc->CiphertextSize(16), 48u);   // full block forces extra pad
  EXPECT_EQ(ctr->CiphertextSize(0), 16u);
  EXPECT_EQ(ctr->CiphertextSize(100), 116u);
}

class CipherRoundTripTest
    : public ::testing::TestWithParam<std::tuple<CipherMode, uint64_t>> {};

TEST_P(CipherRoundTripTest, RandomMessagesRoundTrip) {
  const auto [mode, seed] = GetParam();
  Rng rng(seed);
  Bytes key(16);
  for (auto& b : key) b = static_cast<uint8_t>(rng.NextBounded(256));
  auto cipher = Cipher::Create(key, mode);
  ASSERT_TRUE(cipher.ok());

  for (size_t len : {0u, 1u, 15u, 16u, 17u, 31u, 32u, 100u, 1000u}) {
    Bytes plaintext(len);
    for (auto& b : plaintext) b = static_cast<uint8_t>(rng.NextBounded(256));
    auto ct = cipher->Encrypt(plaintext);
    ASSERT_TRUE(ct.ok());
    EXPECT_EQ(ct->size(), cipher->CiphertextSize(len));
    auto back = cipher->Decrypt(*ct);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, plaintext);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, CipherRoundTripTest,
    ::testing::Combine(::testing::Values(CipherMode::kCbc, CipherMode::kCtr),
                       ::testing::Values(1, 2, 3)));

TEST(CipherTest, FreshIvRandomizesCiphertext) {
  auto cipher = Cipher::Create(Bytes(16, 7), CipherMode::kCbc);
  ASSERT_TRUE(cipher.ok());
  const Bytes plaintext(64, 0x42);
  auto c1 = cipher->Encrypt(plaintext);
  auto c2 = cipher->Encrypt(plaintext);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_NE(*c1, *c2) << "same plaintext must not produce same ciphertext";
}

TEST(CipherTest, RejectsShortCiphertext) {
  auto cipher = Cipher::Create(Bytes(16, 7), CipherMode::kCbc);
  ASSERT_TRUE(cipher.ok());
  EXPECT_FALSE(cipher->Decrypt(Bytes(8)).ok());
  EXPECT_FALSE(cipher->Decrypt(Bytes(16)).ok());  // IV only, no body
  EXPECT_FALSE(cipher->Decrypt(Bytes(40)).ok());  // unaligned body
}

TEST(CipherTest, RejectsWrongIvSize) {
  auto cipher = Cipher::Create(Bytes(16, 7), CipherMode::kCbc);
  ASSERT_TRUE(cipher.ok());
  EXPECT_FALSE(cipher->EncryptWithIv(Bytes(10), Bytes(8)).ok());
}

TEST(CipherTest, PaddingTamperDetected) {
  auto cipher = Cipher::Create(Bytes(16, 7), CipherMode::kCbc);
  ASSERT_TRUE(cipher.ok());
  auto ct = cipher->Encrypt(Bytes(20, 0x55));
  ASSERT_TRUE(ct.ok());
  // Corrupt the last ciphertext byte: padding check should usually fail
  // (probability of accidental valid padding is small but non-zero; the
  // chosen plaintext/key here is deterministic, so this test is stable).
  Bytes tampered = *ct;
  tampered.back() ^= 0xFF;
  auto r = cipher->Decrypt(tampered);
  if (r.ok()) {
    EXPECT_NE(*r, Bytes(20, 0x55));  // at minimum the content changed
  }
}

TEST(Pkcs7Test, PadUnpadAllResidues) {
  for (size_t len = 0; len <= 48; ++len) {
    Bytes data(len, 0xAA);
    Bytes padded = Pkcs7Pad(data, 16);
    EXPECT_EQ(padded.size() % 16, 0u);
    EXPECT_GT(padded.size(), data.size());
    auto back = Pkcs7Unpad(padded, 16);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, data);
  }
}

TEST(Pkcs7Test, RejectsMalformedPadding) {
  EXPECT_FALSE(Pkcs7Unpad(Bytes{}, 16).ok());
  EXPECT_FALSE(Pkcs7Unpad(Bytes(15, 1), 16).ok());        // unaligned
  Bytes zero_pad(16, 0);
  EXPECT_FALSE(Pkcs7Unpad(zero_pad, 16).ok());            // pad byte 0
  Bytes too_big(16, 17);
  EXPECT_FALSE(Pkcs7Unpad(too_big, 16).ok());             // pad byte > block
  Bytes inconsistent(16, 4);
  inconsistent[13] = 3;
  EXPECT_FALSE(Pkcs7Unpad(inconsistent, 16).ok());        // mixed pad bytes
}

// ----------------------------------------------------------------- SHA-256

TEST(Sha256Test, Fips180Vectors) {
  EXPECT_EQ(ToHex(Sha256::Hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  const std::string abc = "abc";
  EXPECT_EQ(ToHex(Sha256::Hash(Bytes(abc.begin(), abc.end()))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  const std::string two_blocks =
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  EXPECT_EQ(ToHex(Sha256::Hash(Bytes(two_blocks.begin(), two_blocks.end()))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.Update(chunk);
  auto digest = hasher.Finish();
  EXPECT_EQ(ToHex(digest.data(), digest.size()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Rng rng(77);
  Bytes data(777);
  for (auto& b : data) b = static_cast<uint8_t>(rng.NextBounded(256));
  Sha256 hasher;
  size_t off = 0;
  while (off < data.size()) {
    const size_t take = std::min<size_t>(1 + rng.NextBounded(100),
                                         data.size() - off);
    hasher.Update(data.data() + off, take);
    off += take;
  }
  auto incremental = hasher.Finish();
  EXPECT_EQ(Bytes(incremental.begin(), incremental.end()),
            Sha256::Hash(data));
}

// -------------------------------------------------------------- HMAC/PBKDF2

TEST(HmacTest, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const std::string msg = "Hi There";
  EXPECT_EQ(ToHex(HmacSha256(key, Bytes(msg.begin(), msg.end()))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  const std::string key = "Jefe";
  const std::string msg = "what do ya want for nothing?";
  EXPECT_EQ(ToHex(HmacSha256(Bytes(key.begin(), key.end()),
                             Bytes(msg.begin(), msg.end()))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case6_LongKey) {
  const Bytes key(131, 0xaa);
  const std::string msg = "Test Using Larger Than Block-Size Key - Hash Key First";
  EXPECT_EQ(ToHex(HmacSha256(key, Bytes(msg.begin(), msg.end()))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Pbkdf2Test, KnownVectors) {
  const std::string p = "password", s = "salt";
  const Bytes password(p.begin(), p.end());
  const Bytes salt(s.begin(), s.end());
  auto dk1 = Pbkdf2Sha256(password, salt, 1, 32);
  ASSERT_TRUE(dk1.ok());
  EXPECT_EQ(ToHex(*dk1),
            "120fb6cffcf8b32c43e7225256c4f837a86548c92ccc35480805987cb70be17b");
  auto dk2 = Pbkdf2Sha256(password, salt, 2, 32);
  ASSERT_TRUE(dk2.ok());
  EXPECT_EQ(ToHex(*dk2),
            "ae4d0c95af6b46d32d0adff928f06dd02a303f8ef3c251dfd6e2d85a95474c43");
  auto dk4096 = Pbkdf2Sha256(password, salt, 4096, 32);
  ASSERT_TRUE(dk4096.ok());
  EXPECT_EQ(ToHex(*dk4096),
            "c5e478d59288c841aa530db6845c4c8d962893a001ce4e11a4963873aa98134a");
}

TEST(Pbkdf2Test, MultiBlockOutput) {
  const std::string p = "passwordPASSWORDpassword";
  const std::string s = "saltSALTsaltSALTsaltSALTsaltSALTsalt";
  auto dk = Pbkdf2Sha256(Bytes(p.begin(), p.end()), Bytes(s.begin(), s.end()),
                         4096, 40);
  ASSERT_TRUE(dk.ok());
  EXPECT_EQ(ToHex(*dk),
            "348c89dbcbd32b2f32d814b8116e84cf2b17347ebc1800181c4e2a1fb8dd53e1"
            "c635518c7dac47e9");
}

TEST(Pbkdf2Test, RejectsBadArguments) {
  EXPECT_FALSE(Pbkdf2Sha256({}, {}, 0, 16).ok());
  EXPECT_FALSE(Pbkdf2Sha256({}, {}, 1, 0).ok());
}

// ----------------------------------------------------------- SecureRandom

TEST(SecureRandomTest, ProducesRequestedLengthAndVaries) {
  auto a = SecureRandom::Generate(32);
  auto b = SecureRandom::Generate(32);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->size(), 32u);
  EXPECT_NE(*a, *b);
}

// ------------------------------------------------------------------ AEAD

TEST(AeadTest, SealOpenRoundTrip) {
  auto aead = AeadCipher::Create(Bytes(16, 0xAB));
  ASSERT_TRUE(aead.ok());
  Rng rng(77);
  for (size_t len : {size_t{0}, size_t{1}, size_t{15}, size_t{16}, size_t{17},
                     size_t{100}, size_t{4096}}) {
    Bytes plaintext(len);
    for (auto& b : plaintext) b = static_cast<uint8_t>(rng.NextBounded(256));
    auto sealed = aead->Seal(plaintext);
    ASSERT_TRUE(sealed.ok());
    EXPECT_EQ(sealed->size(), AeadCipher::SealedSize(len));
    auto opened = aead->Open(*sealed);
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ(*opened, plaintext);
  }
}

TEST(AeadTest, DetectsCiphertextTampering) {
  auto aead = AeadCipher::Create(Bytes(16, 0x01));
  ASSERT_TRUE(aead.ok());
  const Bytes plaintext(64, 0x5A);
  auto sealed = aead->Seal(plaintext);
  ASSERT_TRUE(sealed.ok());
  // Flip one bit in every position class: IV, body, tag.
  for (size_t pos : {size_t{0}, size_t{20}, sealed->size() - 1}) {
    Bytes corrupted = *sealed;
    corrupted[pos] ^= 0x80;
    auto opened = aead->Open(corrupted);
    EXPECT_FALSE(opened.ok()) << "tampering at byte " << pos << " undetected";
  }
}

TEST(AeadTest, DetectsTruncation) {
  auto aead = AeadCipher::Create(Bytes(16, 0x02));
  ASSERT_TRUE(aead.ok());
  auto sealed = aead->Seal(Bytes(32, 0x11));
  ASSERT_TRUE(sealed.ok());
  Bytes truncated(sealed->begin(), sealed->end() - 1);
  EXPECT_FALSE(aead->Open(truncated).ok());
  Bytes tiny(sealed->begin(), sealed->begin() + 10);
  EXPECT_FALSE(aead->Open(tiny).ok());
}

TEST(AeadTest, AssociatedDataIsBound) {
  auto aead = AeadCipher::Create(Bytes(16, 0x03));
  ASSERT_TRUE(aead.ok());
  const Bytes plaintext(24, 0x42);
  const Bytes ad = {'c', 't', 'x'};
  auto sealed = aead->Seal(plaintext, ad);
  ASSERT_TRUE(sealed.ok());
  auto ok = aead->Open(*sealed, ad);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, plaintext);
  EXPECT_FALSE(aead->Open(*sealed, Bytes{'c', 't', 'y'}).ok());
  EXPECT_FALSE(aead->Open(*sealed, Bytes{}).ok());
}

TEST(AeadTest, DifferentKeysCannotOpen) {
  auto a = AeadCipher::Create(Bytes(16, 0x04));
  auto b = AeadCipher::Create(Bytes(16, 0x05));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto sealed = a->Seal(Bytes(16, 0x77));
  ASSERT_TRUE(sealed.ok());
  EXPECT_FALSE(b->Open(*sealed).ok());
}

TEST(AeadTest, SealedLengthEqualsPlaintextPlusOverhead) {
  // CTR keeps the body length equal to the plaintext length, so the
  // size formula is exact, not an upper bound.
  auto aead = AeadCipher::Create(Bytes(32, 0x06));
  ASSERT_TRUE(aead.ok());
  for (size_t len = 0; len < 70; ++len) {
    auto sealed = aead->Seal(Bytes(len, 0x01));
    ASSERT_TRUE(sealed.ok());
    EXPECT_EQ(sealed->size(),
              len + AeadCipher::kIvSize + AeadCipher::kTagSize);
  }
}

TEST(AeadTest, RejectsBadMasterKeySizes) {
  EXPECT_FALSE(AeadCipher::Create(Bytes(15, 0)).ok());
  EXPECT_FALSE(AeadCipher::Create(Bytes(0, 0)).ok());
  EXPECT_FALSE(AeadCipher::Create(Bytes(33, 0)).ok());
  EXPECT_TRUE(AeadCipher::Create(Bytes(24, 0)).ok());
}

// ------------------------------------------- hardware kernel cross-checks
//
// The AES-NI / SHA-NI kernels must be bit-identical to the vector-tested
// scalar references. These sweeps compare both on random inputs whenever
// the silicon offers the instructions (raw capability, ignoring the
// SIMCLOUD_FORCE_SCALAR_CRYPTO override, so the forced-scalar CI job
// still exercises them).

Bytes RandomBytes(Rng& rng, size_t n) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<uint8_t>(rng.NextU64());
  return out;
}

TEST(KernelTest, AesNiCtrMatchesScalarOnRandomInputs) {
  if (!AesNiKernelAvailable()) {
    GTEST_SKIP() << "AES-NI not available on this CPU";
  }
  Rng rng(0xAE51);
  for (const size_t key_len : {16u, 24u, 32u}) {
    auto aes = Aes::Create(RandomBytes(rng, key_len));
    ASSERT_TRUE(aes.ok());
    for (const size_t len :
         {0u, 1u, 15u, 16u, 17u, 64u, 127u, 128u, 129u, 255u, 256u, 1000u}) {
      const Bytes iv = RandomBytes(rng, 16);
      const Bytes input = RandomBytes(rng, len);
      Bytes scalar_out(len), hw_out(len);
      ScalarAesCtrXor(*aes, iv.data(), input.data(), scalar_out.data(), len);
      AesNiCtrXor(aes->round_key_bytes(), aes->rounds(), iv.data(),
                  input.data(), hw_out.data(), len);
      EXPECT_EQ(scalar_out, hw_out) << "key_len=" << key_len << " len=" << len;

      // In-place operation must produce the same bytes.
      Bytes in_place = input;
      AesNiCtrXor(aes->round_key_bytes(), aes->rounds(), iv.data(),
                  in_place.data(), in_place.data(), len);
      EXPECT_EQ(scalar_out, in_place);
    }
  }
}

TEST(KernelTest, AesNiCtrCounterCarryPropagates) {
  if (!AesNiKernelAvailable()) {
    GTEST_SKIP() << "AES-NI not available on this CPU";
  }
  Rng rng(0xCA44);
  auto aes = Aes::Create(RandomBytes(rng, 16));
  ASSERT_TRUE(aes.ok());
  // Counter bytes at the carry edge: the increment must ripple across
  // several 0xFF bytes mid-message, identically in both kernels.
  Bytes iv = RandomBytes(rng, 16);
  for (int i = 9; i < 16; ++i) iv[i] = 0xFF;
  iv[15] = 0xFE;
  const size_t len = 64 * 16;  // crosses the carry within the 8-block loop
  const Bytes input = RandomBytes(rng, len);
  Bytes scalar_out(len), hw_out(len);
  ScalarAesCtrXor(*aes, iv.data(), input.data(), scalar_out.data(), len);
  AesNiCtrXor(aes->round_key_bytes(), aes->rounds(), iv.data(), input.data(),
              hw_out.data(), len);
  EXPECT_EQ(scalar_out, hw_out);
}

TEST(KernelTest, ShaNiMatchesScalarOnRandomInputs) {
  if (!ShaNiKernelAvailable()) {
    GTEST_SKIP() << "SHA-NI not available on this CPU";
  }
  Rng rng(0x54A2);
  for (const size_t blocks : {1u, 2u, 3u, 7u, 16u, 33u}) {
    const Bytes data = RandomBytes(rng, blocks * 64);
    uint32_t scalar_h[8], hw_h[8];
    for (int i = 0; i < 8; ++i) {
      scalar_h[i] = static_cast<uint32_t>(rng.NextU64());
      hw_h[i] = scalar_h[i];
    }
    ScalarSha256Blocks(scalar_h, data.data(), blocks);
    ShaNiSha256Blocks(hw_h, data.data(), blocks);
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(scalar_h[i], hw_h[i]) << "blocks=" << blocks << " word=" << i;
    }
  }
}

TEST(CpuFeaturesTest, DispatchIsConsistentWithRawCapability) {
  const CpuFeatures& features = GetCpuFeatures();
  // Dispatch can only enable what the silicon supports.
  EXPECT_LE(features.aes_ni, features.raw_aes_ni);
  EXPECT_LE(features.sha_ni, features.raw_sha_ni);
  if (features.forced_scalar) {
    EXPECT_FALSE(features.aes_ni);
    EXPECT_FALSE(features.sha_ni);
  }
  EXPECT_FALSE(CryptoBackendSummary().empty());
}

}  // namespace
}  // namespace crypto
}  // namespace simcloud
