// Encrypted M-Index tests: secret key lifecycle, the distribution-hiding
// transform's mathematical properties, the wire protocol, and full
// client-server search correctness over the loopback transport.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "data/synthetic.h"
#include "metric/ground_truth.h"
#include "secure/client.h"
#include "secure/distance_transform.h"
#include "secure/privacy.h"
#include "secure/protocol.h"
#include "secure/secret_key.h"
#include "secure/server.h"

namespace simcloud {
namespace secure {
namespace {

using metric::VectorObject;

struct SecureWorld {
  metric::Dataset dataset{};
  SecretKey key;
  std::unique_ptr<EncryptedMIndexServer> server;
  std::unique_ptr<net::LoopbackTransport> transport;
  std::unique_ptr<EncryptionClient> client;
};

SecureWorld MakeSecureWorld(size_t num_pivots = 10, size_t bucket_capacity = 50,
                            bool with_transform = false) {
  SecureWorld world{
      .key =
          []() {
            // placeholder; replaced below
            auto pivots = mindex::PivotSet({VectorObject(0, {0.0f})});
            return SecretKey::Create(std::move(pivots), Bytes(16, 1)).value();
          }(),
      .server = nullptr,
      .transport = nullptr,
      .client = nullptr};

  data::MixtureOptions options;
  options.num_objects = 700;
  options.dimension = 8;
  options.num_clusters = 6;
  options.seed = 77;
  world.dataset = metric::Dataset(
      "test", data::MakeGaussianMixture(options),
      std::make_shared<metric::L2Distance>());

  auto pivots = mindex::PivotSet::SelectRandom(world.dataset.objects(),
                                               num_pivots, 78);
  EXPECT_TRUE(pivots.ok());
  auto key = SecretKey::Create(std::move(pivots).value(), Bytes(16, 0x42));
  EXPECT_TRUE(key.ok());
  world.key = std::move(key).value();
  if (with_transform) {
    EXPECT_TRUE(world.key.EnableDistanceTransform(99, 2000.0).ok());
  }

  mindex::MIndexOptions index_options;
  index_options.num_pivots = num_pivots;
  index_options.bucket_capacity = bucket_capacity;
  index_options.max_level = 4;
  auto server = EncryptedMIndexServer::Create(index_options);
  EXPECT_TRUE(server.ok());
  world.server = std::move(server).value();
  world.transport =
      std::make_unique<net::LoopbackTransport>(world.server.get());
  world.client = std::make_unique<EncryptionClient>(
      world.key, world.dataset.distance(), world.transport.get());
  return world;
}

// -------------------------------------------------------------- SecretKey

TEST(SecretKeyTest, CreateValidates) {
  EXPECT_FALSE(SecretKey::Create(mindex::PivotSet{}, Bytes(16)).ok());
  mindex::PivotSet pivots({VectorObject(0, {1.0f})});
  EXPECT_FALSE(SecretKey::Create(pivots, Bytes(10)).ok());
  EXPECT_TRUE(SecretKey::Create(pivots, Bytes(16)).ok());
}

TEST(SecretKeyTest, DeriveChannelKeyIsDomainSeparated) {
  mindex::PivotSet pivots({VectorObject(0, {1.0f})});
  auto key1 = SecretKey::Create(pivots, Bytes(16, 0x01));
  auto key2 = SecretKey::Create(pivots, Bytes(16, 0x02));
  ASSERT_TRUE(key1.ok() && key2.ok());
  // Deterministic per key (both ends derive the same PSK), 32 bytes,
  // key-dependent, and distinct from every other derived secret.
  EXPECT_EQ(key1->DeriveChannelKey(), key1->DeriveChannelKey());
  EXPECT_EQ(key1->DeriveChannelKey().size(), 32u);
  EXPECT_NE(key1->DeriveChannelKey(), key2->DeriveChannelKey());
  EXPECT_NE(key1->DeriveChannelKey(), key1->DeriveQueryMacKey());
  EXPECT_NE(key1->DeriveChannelKey(), Bytes(16, 0x01));
}

TEST(SecretKeyTest, MovedFromKeysAreCleared) {
  // Key hygiene regression: moving a SecretKey must leave the source
  // without key material (its buffer wiped), so a stale copy on the
  // stack or in a container cannot leak the AES key.
  mindex::PivotSet pivots({VectorObject(0, {1.0f})});
  auto created = SecretKey::Create(pivots, Bytes(16, 0x3C));
  ASSERT_TRUE(created.ok());
  SecretKey original = std::move(*created);
  EXPECT_TRUE(original.has_key_material());

  SecretKey moved_to = std::move(original);
  EXPECT_FALSE(original.has_key_material());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(moved_to.has_key_material());

  auto assigned = SecretKey::Create(pivots, Bytes(16, 0x3D));
  ASSERT_TRUE(assigned.ok());
  *assigned = std::move(moved_to);
  EXPECT_FALSE(moved_to.has_key_material());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(assigned->has_key_material());

  // Copies stay independent: copying does not clear the source.
  SecretKey copy = *assigned;
  EXPECT_TRUE(copy.has_key_material());
  EXPECT_TRUE(assigned->has_key_material());
  // The surviving key still works end to end.
  VectorObject object(7, {1.5f, 2.5f});
  auto ciphertext = copy.EncryptObject(object);
  ASSERT_TRUE(ciphertext.ok());
  auto back = copy.DecryptObject(*ciphertext);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, object);
}

TEST(SecretKeyTest, EncryptDecryptObjectRoundTrip) {
  mindex::PivotSet pivots({VectorObject(0, {1.0f})});
  auto key = SecretKey::Create(pivots, Bytes(16, 9));
  ASSERT_TRUE(key.ok());
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    std::vector<float> values(rng.NextBounded(100) + 1);
    for (auto& v : values) v = rng.NextFloat();
    VectorObject object(rng.NextBounded(1000), std::move(values));
    auto ciphertext = key->EncryptObject(object);
    ASSERT_TRUE(ciphertext.ok());
    auto back = key->DecryptObject(*ciphertext);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, object);
  }
}

TEST(SecretKeyTest, WrongKeyCannotDecrypt) {
  mindex::PivotSet pivots({VectorObject(0, {1.0f})});
  auto key1 = SecretKey::Create(pivots, Bytes(16, 1));
  auto key2 = SecretKey::Create(pivots, Bytes(16, 2));
  ASSERT_TRUE(key1.ok());
  ASSERT_TRUE(key2.ok());
  VectorObject object(7, {1.0f, 2.0f, 3.0f});
  auto ciphertext = key1->EncryptObject(object);
  ASSERT_TRUE(ciphertext.ok());
  auto wrong = key2->DecryptObject(*ciphertext);
  // Either padding fails or the payload deserializes into garbage.
  if (wrong.ok()) {
    EXPECT_NE(*wrong, object);
  }
}

TEST(SecretKeyTest, SerializeRoundTripPreservesEverything) {
  auto dataset = data::MakeYeastLike(1);
  auto pivots = mindex::PivotSet::SelectRandom(dataset.objects(), 5, 2);
  ASSERT_TRUE(pivots.ok());
  auto key = SecretKey::Create(std::move(pivots).value(), Bytes(16, 0xAA));
  ASSERT_TRUE(key.ok());
  ASSERT_TRUE(key->EnableDistanceTransform(3, 1000.0).ok());

  auto blob = key->Serialize();
  ASSERT_TRUE(blob.ok());
  auto back = SecretKey::Deserialize(*blob);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_pivots(), 5u);
  EXPECT_TRUE(back->has_transform());
  // Same pivots.
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(back->pivots().pivot(i), key->pivots().pivot(i));
  }
  // Same transform behaviour.
  for (double x : {0.0, 1.5, 500.0, 5000.0}) {
    EXPECT_DOUBLE_EQ(back->transform().Apply(x), key->transform().Apply(x));
  }
  // Cross-decryption works.
  VectorObject object(3, {4.0f, 5.0f});
  auto ciphertext = key->EncryptObject(object);
  ASSERT_TRUE(ciphertext.ok());
  auto decrypted = back->DecryptObject(*ciphertext);
  ASSERT_TRUE(decrypted.ok());
  EXPECT_EQ(*decrypted, object);
}

TEST(SecretKeyTest, FromPasswordIsDeterministic) {
  mindex::PivotSet pivots({VectorObject(0, {1.0f})});
  const Bytes salt = {1, 2, 3, 4};
  auto key1 = SecretKey::FromPassword(pivots, "hunter2", salt, 100);
  auto key2 = SecretKey::FromPassword(pivots, "hunter2", salt, 100);
  ASSERT_TRUE(key1.ok());
  ASSERT_TRUE(key2.ok());
  VectorObject object(1, {2.0f});
  auto ciphertext = key1->EncryptObject(object);
  ASSERT_TRUE(ciphertext.ok());
  auto decrypted = key2->DecryptObject(*ciphertext);
  ASSERT_TRUE(decrypted.ok());
  EXPECT_EQ(*decrypted, object);
}

TEST(SecretKeyTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(SecretKey::Deserialize(Bytes{1, 2, 3}).ok());
}

// ---------------------------------------------------- ConcaveTransform

class TransformPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TransformPropertyTest, MonotoneConcaveSubadditive) {
  auto transform = ConcaveTransform::FromSeed(GetParam(), 100.0, 32);
  ASSERT_TRUE(transform.ok());
  Rng rng(GetParam() * 31 + 7);
  EXPECT_DOUBLE_EQ(transform->Apply(0.0), 0.0);
  for (int iter = 0; iter < 200; ++iter) {
    const double x = rng.NextUniform(0.0, 300.0);  // also beyond domain
    const double y = rng.NextUniform(0.0, 300.0);
    // Strict monotonicity.
    if (x < y) {
      EXPECT_LT(transform->Apply(x), transform->Apply(y));
    }
    // Subadditivity: T(x+y) <= T(x) + T(y). This is the property every
    // server-side pruning rule relies on (see distance_transform.h).
    EXPECT_LE(transform->Apply(x + y),
              transform->Apply(x) + transform->Apply(y) + 1e-9);
    // The derived filtering bound: |T(x) - T(y)| <= T(|x - y|).
    EXPECT_LE(std::fabs(transform->Apply(x) - transform->Apply(y)),
              transform->Apply(std::fabs(x - y)) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(TransformTest, ValidatesArguments) {
  EXPECT_FALSE(ConcaveTransform::FromSeed(1, 0.0).ok());
  EXPECT_FALSE(ConcaveTransform::FromSeed(1, -5.0).ok());
  EXPECT_FALSE(ConcaveTransform::FromSeed(1, 10.0, 0).ok());
}

TEST(TransformTest, PreservesPermutations) {
  // Strictly increasing => the pivot permutation is unchanged.
  auto transform = ConcaveTransform::FromSeed(17, 50.0);
  ASSERT_TRUE(transform.ok());
  Rng rng(18);
  std::vector<float> distances(20);
  for (auto& d : distances) d = static_cast<float>(rng.NextUniform(0, 60));
  const auto before = mindex::DistancesToPermutation(distances);
  const auto after =
      mindex::DistancesToPermutation(transform->ApplyAll(distances));
  EXPECT_EQ(before, after);
}

// ---------------------------------------------------------------- Protocol

TEST(ProtocolTest, InsertRequestRoundTrip) {
  std::vector<InsertItem> items(2);
  items[0].id = 7;
  items[0].pivot_distances = {1.0f, 2.0f};
  items[0].payload = {9, 9, 9};
  items[1].id = 8;
  items[1].permutation = {1, 0};
  items[1].payload = {1};
  const Bytes encoded = EncodeInsertBatchRequest(items);
  auto request = DecodeRequest(encoded);
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->op, Op::kInsertBatch);
  ASSERT_EQ(request->insert_items.size(), 2u);
  EXPECT_EQ(request->insert_items[0].id, 7u);
  EXPECT_EQ(request->insert_items[0].pivot_distances,
            std::vector<float>({1.0f, 2.0f}));
  EXPECT_EQ(request->insert_items[1].permutation,
            mindex::Permutation({1, 0}));
}

TEST(ProtocolTest, SearchRequestsRoundTrip) {
  auto range = DecodeRequest(EncodeRangeSearchRequest({3.0f, 4.0f}, 2.5));
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->op, Op::kRangeSearch);
  EXPECT_EQ(range->query_distances, std::vector<float>({3.0f, 4.0f}));
  EXPECT_DOUBLE_EQ(range->radius, 2.5);

  mindex::QuerySignature signature;
  signature.permutation = {2, 0, 1};
  auto knn = DecodeRequest(EncodeApproxKnnRequest(signature, 150));
  ASSERT_TRUE(knn.ok());
  EXPECT_EQ(knn->op, Op::kApproxKnn);
  EXPECT_EQ(knn->query.permutation, mindex::Permutation({2, 0, 1}));
  EXPECT_EQ(knn->cand_size, 150u);
}

TEST(ProtocolTest, DeleteRequestRoundTrip) {
  auto request = DecodeRequest(EncodeDeleteRequest(42, {3, 1, 0, 2}));
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->op, Op::kDelete);
  EXPECT_EQ(request->delete_id, 42u);
  EXPECT_EQ(request->delete_permutation, mindex::Permutation({3, 1, 0, 2}));
}

TEST(ProtocolTest, RejectsTruncatedRequests) {
  const Bytes full = EncodeDeleteRequest(42, {3, 1, 0, 2});
  for (size_t len = 1; len + 1 < full.size(); len += 3) {
    Bytes truncated(full.begin(), full.begin() + len);
    EXPECT_FALSE(DecodeRequest(truncated).ok()) << "length " << len;
  }
}

TEST(ProtocolTest, CandidateResponseRoundTrip) {
  mindex::CandidateList candidates(2);
  candidates[0] = {11, 0.5, Bytes{1, 2}};
  candidates[1] = {12, 1.5, Bytes{3}};
  mindex::SearchStats stats;
  stats.cells_visited = 3;
  stats.candidates = 2;
  const Bytes encoded = EncodeCandidateResponse(candidates, stats);
  auto response = DecodeCandidateResponse(encoded);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->stats.cells_visited, 3u);
  ASSERT_EQ(response->candidates.size(), 2u);
  EXPECT_EQ(response->candidates[0].id, 11u);
  EXPECT_DOUBLE_EQ(response->candidates[1].score, 1.5);
  EXPECT_EQ(response->candidates[1].payload, Bytes{3});
}

TEST(ProtocolTest, RejectsUnknownOpcode) {
  EXPECT_FALSE(DecodeRequest(Bytes{0xFD}).ok());
  EXPECT_FALSE(DecodeRequest(Bytes{}).ok());
}

// ------------------------------------------------- Client-server searches

TEST(EncryptedMIndexTest, InsertThenStats) {
  auto world = MakeSecureWorld();
  ASSERT_TRUE(world.client
                  ->InsertBulk(world.dataset.objects(),
                               InsertStrategy::kPrecise, 200)
                  .ok());
  auto stats = world.client->GetServerStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->object_count, world.dataset.size());
  EXPECT_GT(stats->storage_bytes, 0u);
  EXPECT_GT(world.client->costs().encryption_nanos, 0);
  EXPECT_GT(world.client->costs().distance_nanos, 0);
  EXPECT_EQ(world.client->costs().objects_encrypted, world.dataset.size());
}

class SecureRangeTest : public ::testing::TestWithParam<bool> {};

TEST_P(SecureRangeTest, RangeSearchEqualsGroundTruth) {
  const bool with_transform = GetParam();
  auto world = MakeSecureWorld(10, 50, with_transform);
  ASSERT_TRUE(world.client
                  ->InsertBulk(world.dataset.objects(),
                               InsertStrategy::kPrecise, 500)
                  .ok());

  Rng rng(123);
  for (int iter = 0; iter < 8; ++iter) {
    const VectorObject& query =
        world.dataset.objects()[rng.NextBounded(world.dataset.size())];
    const double radius = rng.NextUniform(5.0, 60.0);
    const auto exact = metric::LinearRangeSearch(world.dataset, query, radius);

    auto answer = world.client->RangeSearch(query, radius);
    ASSERT_TRUE(answer.ok());
    ASSERT_EQ(answer->size(), exact.size())
        << "transform=" << with_transform << " radius=" << radius;
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ((*answer)[i].id, exact[i].id);
      EXPECT_NEAR((*answer)[i].distance, exact[i].distance, 1e-5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PlainAndTransformed, SecureRangeTest,
                         ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "withTransform" : "plain";
                         });

TEST(EncryptedMIndexTest, ApproxKnnRecallIsHighWithGenerousCandidates) {
  auto world = MakeSecureWorld();
  ASSERT_TRUE(world.client
                  ->InsertBulk(world.dataset.objects(),
                               InsertStrategy::kPermutationOnly, 500)
                  .ok());
  Rng rng(321);
  double recall_total = 0;
  const int query_count = 10;
  for (int iter = 0; iter < query_count; ++iter) {
    const VectorObject& query =
        world.dataset.objects()[rng.NextBounded(world.dataset.size())];
    const auto exact = metric::LinearKnnSearch(world.dataset, query, 10);
    auto answer = world.client->ApproxKnn(query, 10, 300);
    ASSERT_TRUE(answer.ok());
    EXPECT_LE(answer->size(), 10u);
    recall_total += metric::RecallPercent(*answer, exact);
  }
  EXPECT_GT(recall_total / query_count, 80.0);
}

TEST(EncryptedMIndexTest, PreciseKnnEqualsGroundTruth) {
  auto world = MakeSecureWorld();
  ASSERT_TRUE(world.client
                  ->InsertBulk(world.dataset.objects(),
                               InsertStrategy::kPrecise, 500)
                  .ok());
  Rng rng(55);
  for (int iter = 0; iter < 6; ++iter) {
    const VectorObject& query =
        world.dataset.objects()[rng.NextBounded(world.dataset.size())];
    const auto exact = metric::LinearKnnSearch(world.dataset, query, 5);
    auto answer = world.client->PreciseKnn(query, 5);
    ASSERT_TRUE(answer.ok());
    ASSERT_EQ(answer->size(), exact.size());
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ((*answer)[i].id, exact[i].id);
    }
  }
}

TEST(EncryptedMIndexTest, SearchCostsArePopulated) {
  auto world = MakeSecureWorld();
  ASSERT_TRUE(world.client
                  ->InsertBulk(world.dataset.objects(),
                               InsertStrategy::kPermutationOnly, 500)
                  .ok());
  world.client->ResetCosts();
  world.transport->ResetCosts();

  auto answer =
      world.client->ApproxKnn(world.dataset.objects()[0], 5, 100);
  ASSERT_TRUE(answer.ok());
  const ClientCosts& costs = world.client->costs();
  EXPECT_GT(costs.decryption_nanos, 0);
  EXPECT_GT(costs.distance_nanos, 0);
  EXPECT_EQ(costs.candidates_decrypted, 100u);
  // 10 pivots + 100 candidate refinements.
  EXPECT_EQ(costs.distance_computations, 110u);
  EXPECT_GT(world.transport->costs().bytes_received, 100u * 16u)
      << "candidate ciphertexts dominate the response volume";
}

TEST(EncryptedMIndexTest, CandidateVolumeScalesWithCandSize) {
  auto world = MakeSecureWorld();
  ASSERT_TRUE(world.client
                  ->InsertBulk(world.dataset.objects(),
                               InsertStrategy::kPermutationOnly, 500)
                  .ok());
  world.transport->ResetCosts();
  ASSERT_TRUE(world.client->ApproxKnn(world.dataset.objects()[0], 5, 50).ok());
  const uint64_t volume_small = world.transport->costs().bytes_received;
  world.transport->ResetCosts();
  ASSERT_TRUE(
      world.client->ApproxKnn(world.dataset.objects()[0], 5, 400).ok());
  const uint64_t volume_large = world.transport->costs().bytes_received;
  EXPECT_GT(volume_large, volume_small * 6);
}

TEST(EncryptedMIndexTest, ValidatesQueryArguments) {
  auto world = MakeSecureWorld();
  ASSERT_TRUE(world.client
                  ->InsertBulk(world.dataset.objects(),
                               InsertStrategy::kPrecise, 500)
                  .ok());
  const VectorObject& query = world.dataset.objects()[0];
  EXPECT_FALSE(world.client->RangeSearch(query, -1.0).ok());
  EXPECT_FALSE(world.client->ApproxKnn(query, 0, 10).ok());
  EXPECT_FALSE(world.client->ApproxKnn(query, 20, 10).ok());
  EXPECT_FALSE(world.client->PreciseKnn(query, 0).ok());
}

TEST(EncryptedMIndexTest, EarlyStopKnnMatchesFullRefinementAnswer) {
  auto world = MakeSecureWorld();
  ASSERT_TRUE(world.client
                  ->InsertBulk(world.dataset.objects(),
                               InsertStrategy::kPrecise, 500)
                  .ok());
  // With the candidate budget = whole collection, the candidate set is
  // everything, so the early-stop answer must equal exact ground truth.
  Rng rng(91);
  for (int iter = 0; iter < 5; ++iter) {
    const VectorObject& query =
        world.dataset.objects()[rng.NextBounded(world.dataset.size())];
    const size_t k = 10;
    const auto exact = metric::LinearKnnSearch(world.dataset, query, k);
    auto answer =
        world.client->ApproxKnnEarlyStop(query, k, world.dataset.size());
    ASSERT_TRUE(answer.ok());
    ASSERT_EQ(answer->size(), exact.size());
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ((*answer)[i].id, exact[i].id) << "iter " << iter;
    }
  }
}

TEST(EncryptedMIndexTest, EarlyStopDecryptsFewerCandidates) {
  auto world = MakeSecureWorld();
  ASSERT_TRUE(world.client
                  ->InsertBulk(world.dataset.objects(),
                               InsertStrategy::kPrecise, 500)
                  .ok());
  world.client->ResetCosts();
  const size_t cand_size = 400;
  const VectorObject& query = world.dataset.objects()[3];

  ASSERT_TRUE(world.client->ApproxKnn(query, 10, cand_size).ok());
  const uint64_t full_decrypted = world.client->costs().candidates_decrypted;
  world.client->ResetCosts();

  ASSERT_TRUE(world.client->ApproxKnnEarlyStop(query, 10, cand_size).ok());
  const uint64_t early_decrypted =
      world.client->costs().candidates_decrypted;

  EXPECT_EQ(full_decrypted, cand_size);
  EXPECT_LT(early_decrypted, full_decrypted)
      << "early stop should save decryptions on pre-ranked candidates";
}

TEST(EncryptedMIndexTest, EarlyStopSoundUnderDistanceTransform) {
  auto world = MakeSecureWorld(10, 50, /*with_transform=*/true);
  ASSERT_TRUE(world.client
                  ->InsertBulk(world.dataset.objects(),
                               InsertStrategy::kPrecise, 500)
                  .ok());
  const VectorObject& query = world.dataset.objects()[8];
  const size_t k = 5;
  const auto exact = metric::LinearKnnSearch(world.dataset, query, k);
  auto answer =
      world.client->ApproxKnnEarlyStop(query, k, world.dataset.size());
  ASSERT_TRUE(answer.ok());
  ASSERT_EQ(answer->size(), exact.size());
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ((*answer)[i].id, exact[i].id);
  }
}

TEST(EncryptedMIndexTest, DeleteRemovesObjectEndToEnd) {
  auto world = MakeSecureWorld();
  ASSERT_TRUE(world.client
                  ->InsertBulk(world.dataset.objects(),
                               InsertStrategy::kPrecise, 500)
                  .ok());
  const VectorObject& victim = world.dataset.objects()[42];

  auto before = world.client->RangeSearch(victim, 0.5);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(std::any_of(
      before->begin(), before->end(),
      [&](const metric::Neighbor& n) { return n.id == victim.id(); }));

  ASSERT_TRUE(world.client->Delete(victim).ok());
  auto after = world.client->RangeSearch(victim, 0.5);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(std::none_of(
      after->begin(), after->end(),
      [&](const metric::Neighbor& n) { return n.id == victim.id(); }));

  // Deleting again fails loudly — the server no longer has the object.
  EXPECT_FALSE(world.client->Delete(victim).ok());
}

TEST(EncryptedMIndexTest, DeleteWorksWithPermutationOnlyInserts) {
  auto world = MakeSecureWorld();
  ASSERT_TRUE(world.client
                  ->InsertBulk(world.dataset.objects(),
                               InsertStrategy::kPermutationOnly, 500)
                  .ok());
  const VectorObject& victim = world.dataset.objects()[10];
  ASSERT_TRUE(world.client->Delete(victim).ok());
  auto stats = world.client->GetServerStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->object_count, world.dataset.size() - 1);
}

TEST(EncryptedMIndexTest, AuthenticatedPayloadsDetectServerTampering) {
  // Build a world whose key seals payloads with the AEAD; then corrupt
  // the candidate bytes "on the server" and verify the client refuses.
  auto pivots_objects = []() {
    data::MixtureOptions options;
    options.num_objects = 200;
    options.dimension = 6;
    options.num_clusters = 4;
    options.seed = 31;
    return data::MakeGaussianMixture(options);
  }();
  metric::Dataset dataset("tamper", pivots_objects,
                          std::make_shared<metric::L2Distance>());
  auto pivots = mindex::PivotSet::SelectRandom(dataset.objects(), 6, 32);
  ASSERT_TRUE(pivots.ok());
  auto key = SecretKey::Create(std::move(pivots).value(), Bytes(16, 0x77),
                               PayloadScheme::kAuthenticated);
  ASSERT_TRUE(key.ok());

  // Round trip through the key works.
  auto sealed = key->EncryptObject(dataset.objects()[0]);
  ASSERT_TRUE(sealed.ok());
  auto opened = key->DecryptObject(*sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->id(), dataset.objects()[0].id());

  // A tampered payload is rejected instead of decrypting to garbage.
  Bytes corrupted = *sealed;
  corrupted[corrupted.size() / 2] ^= 0x01;
  EXPECT_FALSE(key->DecryptObject(corrupted).ok());

  // End-to-end: search still returns correct results under the AEAD.
  mindex::MIndexOptions index_options;
  index_options.num_pivots = 6;
  index_options.bucket_capacity = 50;
  index_options.max_level = 3;
  auto server = EncryptedMIndexServer::Create(index_options);
  ASSERT_TRUE(server.ok());
  net::LoopbackTransport transport(server->get());
  EncryptionClient client(*key, dataset.distance(), &transport);
  ASSERT_TRUE(
      client.InsertBulk(dataset.objects(), InsertStrategy::kPrecise, 100)
          .ok());
  const VectorObject& query = dataset.objects()[5];
  const auto exact = metric::LinearKnnSearch(dataset, query, 5);
  auto answer = client.PreciseKnn(query, 5);
  ASSERT_TRUE(answer.ok());
  ASSERT_EQ(answer->size(), exact.size());
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ((*answer)[i].id, exact[i].id);
  }
}

TEST(SecretKeyTest, AuthenticatedSchemeSurvivesSerialization) {
  mindex::PivotSet pivots({VectorObject(0, {1.0f, 2.0f})});
  auto key = SecretKey::Create(pivots, Bytes(16, 3),
                               PayloadScheme::kAuthenticated);
  ASSERT_TRUE(key.ok());
  auto blob = key->Serialize();
  ASSERT_TRUE(blob.ok());
  auto restored = SecretKey::Deserialize(*blob);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->scheme(), PayloadScheme::kAuthenticated);

  // Cross-compatibility: a payload sealed by the original opens under the
  // restored key.
  VectorObject object(7, {3.0f, 4.0f});
  auto sealed = key->EncryptObject(object);
  ASSERT_TRUE(sealed.ok());
  auto opened = restored->DecryptObject(*sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->id(), 7u);
}

TEST(PrivacyTest, TaxonomyNamesAreStable) {
  EXPECT_STREQ(PrivacyLevelName(PrivacyLevel::kMsObjectEncryption),
               "ms-object-encryption");
  EXPECT_STREQ(PrivacyLevelName(PrivacyLevel::kDistributionHiding),
               "distribution-hiding");
  EXPECT_NE(std::string(AttackerView(PrivacyLevel::kMsObjectEncryption)),
            std::string(AttackerView(PrivacyLevel::kNoEncryption)));
}

}  // namespace
}  // namespace secure
}  // namespace simcloud
