// M-Index correctness tests: tree invariants, precise range search
// equivalence with linear-scan ground truth (the key correctness property
// of Algorithm 3's pruning + pivot filtering), approximate candidate-set
// behaviour, and memory/disk storage equivalence.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "common/rng.h"
#include "common/serialize.h"
#include "data/synthetic.h"
#include "metric/ground_truth.h"
#include "mindex/mindex.h"
#include "mindex/pivot_set.h"

namespace simcloud {
namespace mindex {
namespace {

using metric::VectorObject;

// Builds an index over `objects` the way a key-holding client would:
// distances computed outside the index, payload = serialized object.
std::unique_ptr<MIndex> BuildIndex(
    const std::vector<VectorObject>& objects, const PivotSet& pivots,
    const metric::DistanceFunction& metric, MIndexOptions options,
    bool with_distances = true) {
  options.num_pivots = pivots.size();
  auto index = MIndex::Create(options);
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  for (const auto& object : objects) {
    std::vector<float> distances = pivots.ComputeDistances(object, metric);
    BinaryWriter payload;
    object.Serialize(&payload);
    Status st;
    if (with_distances) {
      st = (*index)->Insert(object.id(), std::move(distances), {},
                            payload.buffer());
    } else {
      st = (*index)->Insert(object.id(), {},
                            DistancesToPermutation(distances),
                            payload.buffer());
    }
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  return std::move(index).value();
}

struct TestWorld {
  std::vector<VectorObject> objects;
  std::shared_ptr<metric::DistanceFunction> metric;
  PivotSet pivots;
};

TestWorld MakeWorld(size_t n, size_t dim, size_t num_pivots, uint64_t seed) {
  TestWorld world;
  data::MixtureOptions options;
  options.num_objects = n;
  options.dimension = dim;
  options.num_clusters = 8;
  options.seed = seed;
  world.objects = data::MakeGaussianMixture(options);
  world.metric = std::make_shared<metric::L2Distance>();
  auto pivots = PivotSet::SelectRandom(world.objects, num_pivots, seed + 1);
  EXPECT_TRUE(pivots.ok());
  world.pivots = std::move(pivots).value();
  return world;
}

// ---------------------------------------------------------------- Options

TEST(MIndexOptionsTest, CreateValidatesOptions) {
  MIndexOptions options;
  options.num_pivots = 0;
  EXPECT_FALSE(MIndex::Create(options).ok());
  options = MIndexOptions{};
  options.bucket_capacity = 0;
  EXPECT_FALSE(MIndex::Create(options).ok());
  options = MIndexOptions{};
  options.max_level = 0;
  EXPECT_FALSE(MIndex::Create(options).ok());
  options = MIndexOptions{};
  options.stored_prefix_length = 2;
  options.max_level = 8;
  EXPECT_FALSE(MIndex::Create(options).ok());
  options = MIndexOptions{};
  options.promise_decay = 0.0;
  EXPECT_FALSE(MIndex::Create(options).ok());
  EXPECT_TRUE(MIndex::Create(MIndexOptions{}).ok());
}

TEST(MIndexTest, InsertValidatesInput) {
  MIndexOptions options;
  options.num_pivots = 4;
  options.max_level = 2;
  auto index = MIndex::Create(options);
  ASSERT_TRUE(index.ok());
  // Neither distances nor permutation.
  EXPECT_FALSE((*index)->Insert(1, {}, {}, Bytes{}).ok());
  // Wrong distance vector length.
  EXPECT_FALSE((*index)->Insert(1, {1.0f, 2.0f}, {}, Bytes{}).ok());
  // Permutation too short for the tree depth.
  EXPECT_FALSE((*index)->Insert(1, {}, {2}, Bytes{}).ok());
  // Invalid permutation (duplicate).
  EXPECT_FALSE((*index)->Insert(1, {}, {2, 2, 1, 0}, Bytes{}).ok());
  // Valid inputs.
  EXPECT_TRUE((*index)->Insert(1, {1, 2, 3, 4}, {}, Bytes{1}).ok());
  EXPECT_TRUE((*index)->Insert(2, {}, {3, 2, 1, 0}, Bytes{2}).ok());
  EXPECT_EQ((*index)->size(), 2u);
}

// ------------------------------------------------------------- Invariants

TEST(MIndexTest, TreeInvariantsHoldAfterManyInsertsAndSplits) {
  auto world = MakeWorld(2000, 8, 16, 10);
  MIndexOptions options;
  options.bucket_capacity = 20;  // force many splits
  options.max_level = 5;
  auto index = BuildIndex(world.objects, world.pivots, *world.metric, options);
  EXPECT_EQ(index->size(), 2000u);
  EXPECT_TRUE(index->CheckInvariants().ok());

  auto stats = index->Stats();
  EXPECT_EQ(stats.object_count, 2000u);
  EXPECT_GT(stats.leaf_count, 1u);
  EXPECT_GT(stats.inner_count, 0u);
  EXPECT_LE(stats.max_depth, 5u);
  EXPECT_GT(stats.storage_bytes, 0u);
}

TEST(MIndexTest, DeepSkewedInsertStillSatisfiesInvariants) {
  // All objects identical => same permutation => one chain to max depth.
  MIndexOptions options;
  options.num_pivots = 6;
  options.bucket_capacity = 4;
  options.max_level = 3;
  auto index = MIndex::Create(options);
  ASSERT_TRUE(index.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        (*index)
            ->Insert(i, {1, 2, 3, 4, 5, 6}, {}, Bytes{static_cast<uint8_t>(i)})
            .ok());
  }
  EXPECT_TRUE((*index)->CheckInvariants().ok());
  auto stats = (*index)->Stats();
  EXPECT_EQ(stats.max_depth, 3u);  // grew to max level, then stopped
}

// ----------------------------------------------- Precise range correctness

class RangeCorrectnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RangeCorrectnessTest, CandidatesContainExactlyTheTrueResults) {
  auto world = MakeWorld(800, 6, 12, GetParam());
  MIndexOptions options;
  options.bucket_capacity = 25;
  options.max_level = 4;
  auto index = BuildIndex(world.objects, world.pivots, *world.metric, options);

  Rng rng(GetParam() + 500);
  for (int iter = 0; iter < 10; ++iter) {
    const VectorObject& query =
        world.objects[rng.NextBounded(world.objects.size())];
    // Radii spanning selective to broad.
    const double base =
        world.metric->Distance(query, world.objects[rng.NextBounded(
                                          world.objects.size())]);
    const double radius = base * rng.NextUniform(0.05, 0.6);

    const auto exact =
        metric::LinearRangeSearch(world.objects, *world.metric, query, radius);

    std::vector<float> query_distances =
        world.pivots.ComputeDistances(query, *world.metric);
    SearchStats stats;
    auto candidates =
        index->RangeSearchCandidates(query_distances, radius, &stats);
    ASSERT_TRUE(candidates.ok());

    // Completeness: every true result must be in the candidate set
    // (pruning and pivot filtering are lossless for precise queries).
    std::set<metric::ObjectId> candidate_ids;
    for (const auto& c : *candidates) candidate_ids.insert(c.id);
    for (const auto& n : exact) {
      EXPECT_EQ(candidate_ids.count(n.id), 1u)
          << "true result " << n.id << " missing from candidates";
    }
    // Client-side refinement yields exactly the ground truth.
    metric::NeighborList refined;
    for (const auto& c : *candidates) {
      BinaryReader reader(c.payload);
      auto object = VectorObject::Deserialize(&reader);
      ASSERT_TRUE(object.ok());
      const double d = world.metric->Distance(query, *object);
      if (d <= radius) refined.push_back({object->id(), d});
    }
    std::sort(refined.begin(), refined.end());
    ASSERT_EQ(refined.size(), exact.size());
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ(refined[i].id, exact[i].id);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeCorrectnessTest,
                         ::testing::Values(21, 22, 23, 24));

TEST(MIndexTest, RangePruningActuallyPrunes) {
  auto world = MakeWorld(2000, 6, 16, 31);
  MIndexOptions options;
  options.bucket_capacity = 20;
  options.max_level = 4;
  auto index = BuildIndex(world.objects, world.pivots, *world.metric, options);

  const VectorObject& query = world.objects[7];
  std::vector<float> query_distances =
      world.pivots.ComputeDistances(query, *world.metric);
  SearchStats stats;
  auto candidates = index->RangeSearchCandidates(query_distances, 1.0, &stats);
  ASSERT_TRUE(candidates.ok());
  EXPECT_GT(stats.cells_pruned, 0u) << "selective query should prune cells";
  EXPECT_LT(candidates->size(), world.objects.size() / 2)
      << "pivot filtering should cut most of the collection";
}

TEST(MIndexTest, RangeLowerBoundNeverExceedsTrueDistance) {
  auto world = MakeWorld(500, 5, 10, 41);
  auto index = BuildIndex(world.objects, world.pivots, *world.metric,
                          MIndexOptions{});
  const VectorObject& query = world.objects[3];
  std::vector<float> query_distances =
      world.pivots.ComputeDistances(query, *world.metric);
  auto candidates = index->RangeSearchCandidates(query_distances, 50.0);
  ASSERT_TRUE(candidates.ok());
  for (const auto& c : *candidates) {
    BinaryReader reader(c.payload);
    auto object = VectorObject::Deserialize(&reader);
    ASSERT_TRUE(object.ok());
    const double d = world.metric->Distance(query, *object);
    EXPECT_LE(c.score, d + 1e-4)
        << "pivot-filter score must lower-bound the true distance";
  }
}

TEST(MIndexTest, RangeRequiresDistances) {
  MIndexOptions options;
  options.num_pivots = 4;
  options.max_level = 2;
  auto index = MIndex::Create(options);
  ASSERT_TRUE(index.ok());
  EXPECT_FALSE((*index)->RangeSearchCandidates({1.0f, 2.0f}, 1.0).ok());
  EXPECT_FALSE(
      (*index)->RangeSearchCandidates({1.0f, 2.0f, 3.0f, 4.0f}, -1.0).ok());
}

// ------------------------------------------------ Approximate k-NN search

TEST(MIndexTest, ApproxReturnsRequestedCandidateCount) {
  auto world = MakeWorld(1000, 6, 12, 51);
  MIndexOptions options;
  options.bucket_capacity = 30;
  options.max_level = 4;
  auto index = BuildIndex(world.objects, world.pivots, *world.metric, options);

  std::vector<float> query_distances =
      world.pivots.ComputeDistances(world.objects[0], *world.metric);
  QuerySignature signature;
  signature.permutation = DistancesToPermutation(query_distances);

  for (size_t cand_size : {10u, 100u, 500u}) {
    auto candidates = index->ApproxKnnCandidates(signature, cand_size);
    ASSERT_TRUE(candidates.ok());
    EXPECT_EQ(candidates->size(), cand_size);
  }
  // Requesting more than the collection yields the whole collection.
  auto all = index->ApproxKnnCandidates(signature, 5000);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 1000u);
}

TEST(MIndexTest, ApproxRecallImprovesWithCandidateSize) {
  auto world = MakeWorld(1500, 8, 16, 61);
  MIndexOptions options;
  options.bucket_capacity = 30;
  options.max_level = 5;
  auto index = BuildIndex(world.objects, world.pivots, *world.metric, options);

  Rng rng(62);
  const size_t k = 10;
  double recall_small_total = 0, recall_large_total = 0;
  for (int iter = 0; iter < 15; ++iter) {
    const VectorObject& query =
        world.objects[rng.NextBounded(world.objects.size())];
    const auto exact =
        metric::LinearKnnSearch(world.objects, *world.metric, query, k);

    std::vector<float> query_distances =
        world.pivots.ComputeDistances(query, *world.metric);
    QuerySignature signature;
    signature.permutation = DistancesToPermutation(query_distances);

    auto evaluate = [&](size_t cand_size) {
      auto candidates = index->ApproxKnnCandidates(signature, cand_size);
      EXPECT_TRUE(candidates.ok());
      metric::NeighborList refined;
      for (const auto& c : *candidates) {
        BinaryReader reader(c.payload);
        auto object = VectorObject::Deserialize(&reader);
        EXPECT_TRUE(object.ok());
        refined.push_back(
            {object->id(), world.metric->Distance(query, *object)});
      }
      std::sort(refined.begin(), refined.end());
      if (refined.size() > k) refined.resize(k);
      return metric::RecallPercent(refined, exact);
    };
    recall_small_total += evaluate(30);
    recall_large_total += evaluate(600);
  }
  const double recall_small = recall_small_total / 15;
  const double recall_large = recall_large_total / 15;
  EXPECT_GE(recall_large, recall_small);
  EXPECT_GT(recall_large, 85.0) << "40% of the collection as candidates "
                                   "should recover most true neighbors";
}

TEST(MIndexTest, ApproxWorksWithPermutationOnlyEntries) {
  auto world = MakeWorld(600, 6, 10, 71);
  MIndexOptions options;
  options.bucket_capacity = 25;
  options.max_level = 4;
  auto index = BuildIndex(world.objects, world.pivots, *world.metric, options,
                          /*with_distances=*/false);
  EXPECT_TRUE(index->CheckInvariants().ok());

  std::vector<float> query_distances =
      world.pivots.ComputeDistances(world.objects[5], *world.metric);
  QuerySignature signature;
  signature.permutation = DistancesToPermutation(query_distances);
  auto candidates = index->ApproxKnnCandidates(signature, 100);
  ASSERT_TRUE(candidates.ok());
  EXPECT_EQ(candidates->size(), 100u);
  // The query object itself (distance 0) must be among the candidates of a
  // reasonable approximate search.
  bool found_self = false;
  for (const auto& c : *candidates) found_self |= (c.id == 5u);
  EXPECT_TRUE(found_self);
}

TEST(MIndexTest, ApproxCandidatesArePreRanked) {
  auto world = MakeWorld(800, 6, 12, 81);
  auto index = BuildIndex(world.objects, world.pivots, *world.metric,
                          MIndexOptions{});
  std::vector<float> query_distances =
      world.pivots.ComputeDistances(world.objects[11], *world.metric);
  QuerySignature signature;
  signature.pivot_distances = query_distances;
  signature.permutation = DistancesToPermutation(query_distances);
  auto candidates = index->ApproxKnnCandidates(signature, 200);
  ASSERT_TRUE(candidates.ok());
  for (size_t i = 1; i < candidates->size(); ++i) {
    EXPECT_LE((*candidates)[i - 1].score, (*candidates)[i].score);
  }
}

TEST(MIndexTest, ApproxRejectsInvalidArguments) {
  MIndexOptions options;
  options.num_pivots = 4;
  options.max_level = 2;
  auto index = MIndex::Create(options);
  ASSERT_TRUE(index.ok());
  QuerySignature empty;
  EXPECT_FALSE((*index)->ApproxKnnCandidates(empty, 10).ok());
  QuerySignature ok_sig;
  ok_sig.permutation = {0, 1, 2, 3};
  EXPECT_FALSE((*index)->ApproxKnnCandidates(ok_sig, 0).ok());
}

// ---------------------------------------------------- Storage equivalence

TEST(MIndexTest, DiskAndMemoryBackedIndexesAgree) {
  auto world = MakeWorld(500, 6, 10, 91);
  MIndexOptions mem_options;
  mem_options.bucket_capacity = 25;
  mem_options.max_level = 4;
  auto mem_index =
      BuildIndex(world.objects, world.pivots, *world.metric, mem_options);

  MIndexOptions disk_options = mem_options;
  disk_options.storage_kind = StorageKind::kDisk;
  disk_options.disk_path = testing::TempDir() + "/simcloud_mindex_disk.bin";
  auto disk_index =
      BuildIndex(world.objects, world.pivots, *world.metric, disk_options);

  std::vector<float> query_distances =
      world.pivots.ComputeDistances(world.objects[2], *world.metric);
  for (double radius : {5.0, 20.0, 100.0}) {
    auto from_memory =
        mem_index->RangeSearchCandidates(query_distances, radius);
    auto from_disk =
        disk_index->RangeSearchCandidates(query_distances, radius);
    ASSERT_TRUE(from_memory.ok());
    ASSERT_TRUE(from_disk.ok());
    ASSERT_EQ(from_memory->size(), from_disk->size());
    for (size_t i = 0; i < from_memory->size(); ++i) {
      EXPECT_EQ((*from_memory)[i].id, (*from_disk)[i].id);
      EXPECT_EQ((*from_memory)[i].payload, (*from_disk)[i].payload);
    }
  }
  std::remove(disk_options.disk_path.c_str());
}

// --------------------------------------------------------------- PivotSet

TEST(PivotSetTest, SelectRandomValidatesAndIsDeterministic) {
  auto world = MakeWorld(100, 4, 4, 101);
  EXPECT_FALSE(PivotSet::SelectRandom(world.objects, 0, 1).ok());
  EXPECT_FALSE(PivotSet::SelectRandom(world.objects, 101, 1).ok());
  auto a = PivotSet::SelectRandom(world.objects, 10, 7);
  auto b = PivotSet::SelectRandom(world.objects, 10, 7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(a->pivot(i).id(), b->pivot(i).id());
  }
}

TEST(PivotSetTest, SerializeRoundTrip) {
  auto world = MakeWorld(50, 4, 8, 111);
  BinaryWriter writer;
  world.pivots.Serialize(&writer);
  BinaryReader reader(writer.buffer());
  auto back = PivotSet::Deserialize(&reader);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), world.pivots.size());
  for (size_t i = 0; i < back->size(); ++i) {
    EXPECT_EQ(back->pivot(i), world.pivots.pivot(i));
  }
}

TEST(PivotSetTest, ComputeDistancesMatchesMetric) {
  auto world = MakeWorld(50, 4, 8, 121);
  const VectorObject& object = world.objects[0];
  auto distances = world.pivots.ComputeDistances(object, *world.metric);
  ASSERT_EQ(distances.size(), world.pivots.size());
  for (size_t i = 0; i < distances.size(); ++i) {
    EXPECT_FLOAT_EQ(
        distances[i],
        static_cast<float>(
            world.metric->Distance(object, world.pivots.pivot(i))));
  }
}

}  // namespace
}  // namespace mindex
}  // namespace simcloud
