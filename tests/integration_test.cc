// End-to-end integration tests: the full Encrypted M-Index stack over a
// real TCP connection (two "processes" — server thread and client — as in
// the paper's deployment), plus cross-system consistency checks between
// the encrypted index, the plain index, and the trivial client on the
// same data and queries.

#include <gtest/gtest.h>

#include "baselines/plain_mindex.h"
#include "baselines/trivial.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "metric/ground_truth.h"
#include "net/tcp.h"
#include "secure/client.h"
#include "secure/server.h"

namespace simcloud {
namespace {

using metric::VectorObject;

metric::Dataset MakeDataset(uint64_t seed) {
  data::MixtureOptions options;
  options.num_objects = 500;
  options.dimension = 8;
  options.num_clusters = 5;
  options.seed = seed;
  return metric::Dataset("itest", data::MakeGaussianMixture(options),
                         std::make_shared<metric::L2Distance>());
}

TEST(IntegrationTest, EncryptedSearchOverRealTcp) {
  auto dataset = MakeDataset(1);
  auto pivots = mindex::PivotSet::SelectRandom(dataset.objects(), 8, 2);
  ASSERT_TRUE(pivots.ok());
  auto key = secure::SecretKey::Create(std::move(pivots).value(),
                                       Bytes(16, 0x11));
  ASSERT_TRUE(key.ok());

  mindex::MIndexOptions options;
  options.num_pivots = 8;
  options.bucket_capacity = 40;
  options.max_level = 4;
  auto server_handler = secure::EncryptedMIndexServer::Create(options);
  ASSERT_TRUE(server_handler.ok());

  net::TcpServer server(server_handler->get());
  ASSERT_TRUE(server.Start(0).ok());
  auto transport = net::TcpTransport::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(transport.ok());

  secure::EncryptionClient client(*key, dataset.distance(), transport->get());
  ASSERT_TRUE(client
                  .InsertBulk(dataset.objects(),
                              secure::InsertStrategy::kPrecise, 100)
                  .ok());

  Rng rng(3);
  for (int iter = 0; iter < 4; ++iter) {
    const VectorObject& query =
        dataset.objects()[rng.NextBounded(dataset.size())];
    const double radius = rng.NextUniform(10.0, 40.0);
    const auto exact = metric::LinearRangeSearch(dataset, query, radius);
    auto answer = client.RangeSearch(query, radius);
    ASSERT_TRUE(answer.ok());
    ASSERT_EQ(answer->size(), exact.size());
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ((*answer)[i].id, exact[i].id);
    }
  }
  // Cost split over real TCP: both components observed.
  EXPECT_GT(transport->get()->costs().server_nanos, 0);
  EXPECT_GT(transport->get()->costs().communication_nanos, 0);
  server.Stop();
}

TEST(IntegrationTest, EncryptedAndPlainAgreeOnTheSameWorkload) {
  // The encrypted index and the plain index implement the same search
  // semantics; given the same pivots, parameters, and candidate budget,
  // their approximate k-NN answers must be identical.
  auto dataset = MakeDataset(5);
  const size_t num_pivots = 10;
  auto pivots = mindex::PivotSet::SelectRandom(dataset.objects(), num_pivots,
                                               6);
  ASSERT_TRUE(pivots.ok());

  mindex::MIndexOptions options;
  options.num_pivots = num_pivots;
  options.bucket_capacity = 40;
  options.max_level = 4;

  // Encrypted stack.
  auto key = secure::SecretKey::Create(*pivots, Bytes(16, 0x22));
  ASSERT_TRUE(key.ok());
  auto enc_server = secure::EncryptedMIndexServer::Create(options);
  ASSERT_TRUE(enc_server.ok());
  net::LoopbackTransport enc_transport(enc_server->get());
  secure::EncryptionClient enc_client(*key, dataset.distance(),
                                      &enc_transport);
  // Note: permutation-only inserts — same routing information the plain
  // server derives from its own distance computations.
  ASSERT_TRUE(enc_client
                  .InsertBulk(dataset.objects(),
                              secure::InsertStrategy::kPermutationOnly, 100)
                  .ok());

  // Plain stack with the *same* pivots.
  auto plain_server = baselines::PlainMIndexServer::Create(
      options, *pivots, dataset.distance());
  ASSERT_TRUE(plain_server.ok());
  net::LoopbackTransport plain_transport(plain_server->get());
  baselines::PlainClient plain_client(&plain_transport);
  ASSERT_TRUE(plain_client.InsertBulk(dataset.objects(), 100).ok());

  Rng rng(7);
  for (int iter = 0; iter < 6; ++iter) {
    const VectorObject& query =
        dataset.objects()[rng.NextBounded(dataset.size())];
    const size_t cand_size = 120;
    auto enc_answer = enc_client.ApproxKnn(query, 10, cand_size);
    auto plain_answer = plain_client.ApproxKnn(query, 10, cand_size);
    ASSERT_TRUE(enc_answer.ok());
    ASSERT_TRUE(plain_answer.ok());
    ASSERT_EQ(enc_answer->size(), plain_answer->size());
    for (size_t i = 0; i < enc_answer->size(); ++i) {
      EXPECT_EQ((*enc_answer)[i].id, (*plain_answer)[i].id)
          << "iter " << iter << " rank " << i;
    }
  }
}

TEST(IntegrationTest, EncryptedMatchesTrivialExactlyOnPreciseQueries) {
  auto dataset = MakeDataset(9);
  auto pivots = mindex::PivotSet::SelectRandom(dataset.objects(), 8, 10);
  ASSERT_TRUE(pivots.ok());
  auto key = secure::SecretKey::Create(std::move(pivots).value(),
                                       Bytes(16, 0x33));
  ASSERT_TRUE(key.ok());

  mindex::MIndexOptions options;
  options.num_pivots = 8;
  options.max_level = 4;
  auto enc_server = secure::EncryptedMIndexServer::Create(options);
  ASSERT_TRUE(enc_server.ok());
  net::LoopbackTransport enc_transport(enc_server->get());
  secure::EncryptionClient enc_client(*key, dataset.distance(),
                                      &enc_transport);
  ASSERT_TRUE(enc_client
                  .InsertBulk(dataset.objects(),
                              secure::InsertStrategy::kPrecise, 100)
                  .ok());

  baselines::BlobStoreServer blob_server;
  net::LoopbackTransport blob_transport(&blob_server);
  auto trivial = baselines::TrivialClient::Create(
      Bytes(16, 0x44), dataset.distance(), &blob_transport);
  ASSERT_TRUE(trivial.ok());
  ASSERT_TRUE(trivial->InsertBulk(dataset.objects(), 100).ok());

  Rng rng(11);
  for (int iter = 0; iter < 4; ++iter) {
    const VectorObject& query =
        dataset.objects()[rng.NextBounded(dataset.size())];
    const double radius = rng.NextUniform(10.0, 40.0);
    auto enc_answer = enc_client.RangeSearch(query, radius);
    auto trivial_answer = trivial->RangeSearch(query, radius);
    ASSERT_TRUE(enc_answer.ok());
    ASSERT_TRUE(trivial_answer.ok());
    ASSERT_EQ(enc_answer->size(), trivial_answer->size());
    for (size_t i = 0; i < enc_answer->size(); ++i) {
      EXPECT_EQ((*enc_answer)[i].id, (*trivial_answer)[i].id);
    }
  }
  // But their communication profiles differ radically: the trivial client
  // downloads everything on each query.
  EXPECT_GT(blob_transport.costs().bytes_received,
            enc_transport.costs().bytes_received);
}

TEST(IntegrationTest, SecretKeyHandoffAuthorizedClientWorkflow) {
  // Data-owner inserts, serializes the key, a *different* authorized
  // client deserializes it and queries — the paper's Figure 1 workflow.
  auto dataset = MakeDataset(13);
  auto pivots = mindex::PivotSet::SelectRandom(dataset.objects(), 8, 14);
  ASSERT_TRUE(pivots.ok());
  auto owner_key = secure::SecretKey::Create(std::move(pivots).value(),
                                             Bytes(16, 0x55));
  ASSERT_TRUE(owner_key.ok());

  mindex::MIndexOptions options;
  options.num_pivots = 8;
  options.max_level = 4;
  auto server = secure::EncryptedMIndexServer::Create(options);
  ASSERT_TRUE(server.ok());
  net::LoopbackTransport owner_transport(server->get());
  secure::EncryptionClient owner(*owner_key, dataset.distance(),
                                 &owner_transport);
  ASSERT_TRUE(owner
                  .InsertBulk(dataset.objects(),
                              secure::InsertStrategy::kPrecise, 100)
                  .ok());

  // Key distribution.
  auto key_blob = owner_key->Serialize();
  ASSERT_TRUE(key_blob.ok());
  auto client_key = secure::SecretKey::Deserialize(*key_blob);
  ASSERT_TRUE(client_key.ok());

  net::LoopbackTransport client_transport(server->get());
  secure::EncryptionClient authorized(*client_key, dataset.distance(),
                                      &client_transport);
  const VectorObject& query = dataset.objects()[42];
  const auto exact = metric::LinearKnnSearch(dataset, query, 5);
  auto answer = authorized.PreciseKnn(query, 5);
  ASSERT_TRUE(answer.ok());
  ASSERT_EQ(answer->size(), exact.size());
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ((*answer)[i].id, exact[i].id);
  }
}

}  // namespace
}  // namespace simcloud
