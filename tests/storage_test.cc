// Bucket storage tests: memory and disk backends must behave identically.

#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.h"
#include "mindex/storage.h"

namespace simcloud {
namespace mindex {
namespace {

class StorageTest : public ::testing::TestWithParam<StorageKind> {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/simcloud_storage_test.bin";
    auto storage = MakeStorage(GetParam(), path_);
    ASSERT_TRUE(storage.ok());
    storage_ = std::move(storage).value();
  }
  void TearDown() override {
    storage_.reset();
    std::remove(path_.c_str());
  }

  std::string path_;
  std::unique_ptr<BucketStorage> storage_;
};

TEST_P(StorageTest, StoreFetchRoundTrip) {
  Rng rng(1);
  std::vector<std::pair<PayloadHandle, Bytes>> stored;
  for (int i = 0; i < 100; ++i) {
    Bytes payload(rng.NextBounded(500));
    for (auto& b : payload) b = static_cast<uint8_t>(rng.NextBounded(256));
    auto handle = storage_->Store(payload);
    ASSERT_TRUE(handle.ok());
    stored.emplace_back(*handle, std::move(payload));
  }
  // Fetch in shuffled order.
  rng.Shuffle(stored);
  for (const auto& [handle, expected] : stored) {
    auto got = storage_->Fetch(handle);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, expected);
  }
}

TEST_P(StorageTest, EmptyPayloadIsAllowed) {
  auto handle = storage_->Store({});
  ASSERT_TRUE(handle.ok());
  auto got = storage_->Fetch(*handle);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
}

TEST_P(StorageTest, CountersTrackVolume) {
  EXPECT_EQ(storage_->TotalBytes(), 0u);
  EXPECT_EQ(storage_->Count(), 0u);
  ASSERT_TRUE(storage_->Store(Bytes(100)).ok());
  ASSERT_TRUE(storage_->Store(Bytes(50)).ok());
  EXPECT_EQ(storage_->TotalBytes(), 150u);
  EXPECT_EQ(storage_->Count(), 2u);
}

TEST_P(StorageTest, OutOfRangeHandleIsNotFound) {
  ASSERT_TRUE(storage_->Store(Bytes(10)).ok());
  auto got = storage_->Fetch(999);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
}

INSTANTIATE_TEST_SUITE_P(Backends, StorageTest,
                         ::testing::Values(StorageKind::kMemory,
                                           StorageKind::kDisk),
                         [](const auto& info) {
                           return info.param == StorageKind::kMemory
                                      ? "memory"
                                      : "disk";
                         });

TEST(StorageFactoryTest, DiskRequiresPath) {
  EXPECT_FALSE(MakeStorage(StorageKind::kDisk, "").ok());
  EXPECT_TRUE(MakeStorage(StorageKind::kMemory, "").ok());
}

TEST(StorageFactoryTest, DiskRejectsUnwritablePath) {
  EXPECT_FALSE(
      MakeStorage(StorageKind::kDisk, "/nonexistent/dir/file.bin").ok());
}

TEST(StorageTest, NamesIdentifyBackend) {
  auto mem = MakeStorage(StorageKind::kMemory, "");
  ASSERT_TRUE(mem.ok());
  EXPECT_EQ((*mem)->Name(), "memory");
  const std::string path = testing::TempDir() + "/simcloud_named.bin";
  auto disk = MakeStorage(StorageKind::kDisk, path);
  ASSERT_TRUE(disk.ok());
  EXPECT_EQ((*disk)->Name(), "disk");
  disk->reset();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mindex
}  // namespace simcloud
