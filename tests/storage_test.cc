// Bucket storage tests: memory and disk backends must behave identically,
// including the free/dead-byte accounting compaction is built on, and the
// payload cache must never serve bytes for a freed (possibly recycled)
// handle.

#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.h"
#include "mindex/payload_cache.h"
#include "mindex/storage.h"

namespace simcloud {
namespace mindex {
namespace {

class StorageTest : public ::testing::TestWithParam<StorageKind> {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/simcloud_storage_test.bin";
    auto storage = MakeStorage(GetParam(), path_);
    ASSERT_TRUE(storage.ok());
    storage_ = std::move(storage).value();
  }
  void TearDown() override {
    storage_.reset();
    std::remove(path_.c_str());
  }

  std::string path_;
  std::unique_ptr<BucketStorage> storage_;
};

TEST_P(StorageTest, StoreFetchRoundTrip) {
  Rng rng(1);
  std::vector<std::pair<PayloadHandle, Bytes>> stored;
  for (int i = 0; i < 100; ++i) {
    Bytes payload(rng.NextBounded(500));
    for (auto& b : payload) b = static_cast<uint8_t>(rng.NextBounded(256));
    auto handle = storage_->Store(payload);
    ASSERT_TRUE(handle.ok());
    stored.emplace_back(*handle, std::move(payload));
  }
  // Fetch in shuffled order.
  rng.Shuffle(stored);
  for (const auto& [handle, expected] : stored) {
    auto got = storage_->Fetch(handle);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, expected);
  }
}

TEST_P(StorageTest, EmptyPayloadIsAllowed) {
  auto handle = storage_->Store({});
  ASSERT_TRUE(handle.ok());
  auto got = storage_->Fetch(*handle);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
}

TEST_P(StorageTest, CountersTrackVolume) {
  EXPECT_EQ(storage_->TotalBytes(), 0u);
  EXPECT_EQ(storage_->Count(), 0u);
  ASSERT_TRUE(storage_->Store(Bytes(100)).ok());
  ASSERT_TRUE(storage_->Store(Bytes(50)).ok());
  EXPECT_EQ(storage_->TotalBytes(), 150u);
  EXPECT_EQ(storage_->Count(), 2u);
}

TEST_P(StorageTest, OutOfRangeHandleIsNotFound) {
  ASSERT_TRUE(storage_->Store(Bytes(10)).ok());
  auto got = storage_->Fetch(999);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
}

TEST_P(StorageTest, FreeMarksBytesDeadAndInvalidatesHandle) {
  auto h1 = storage_->Store(Bytes(100, 0xA1));
  auto h2 = storage_->Store(Bytes(60, 0xB2));
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok());
  auto stats = storage_->GetCompactionStats();
  EXPECT_EQ(stats.live_bytes, 160u);
  EXPECT_EQ(stats.dead_bytes, 0u);
  EXPECT_EQ(stats.GarbageRatio(), 0.0);

  ASSERT_TRUE(storage_->Free(*h1).ok());
  stats = storage_->GetCompactionStats();
  EXPECT_EQ(stats.live_bytes, 60u);
  EXPECT_EQ(stats.dead_bytes, 100u);
  EXPECT_EQ(stats.live_payloads, 1u);
  EXPECT_EQ(stats.dead_payloads, 1u);
  EXPECT_NEAR(stats.GarbageRatio(), 100.0 / 160.0, 1e-9);
  // The log keeps the dead bytes until compaction; only Count shrinks.
  EXPECT_EQ(storage_->TotalBytes(), 160u);
  EXPECT_EQ(storage_->Count(), 1u);

  // A freed handle must not serve stale bytes — single or batched path.
  EXPECT_EQ(storage_->Fetch(*h1).status().code(), StatusCode::kNotFound);
  std::vector<Bytes> out;
  std::vector<PayloadHandle> handles = {*h1};
  EXPECT_EQ(storage_->FetchMany(handles, &out).code(),
            StatusCode::kNotFound);
  auto live = storage_->Fetch(*h2);
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(*live, Bytes(60, 0xB2));

  // Double free and unknown handles are errors.
  EXPECT_FALSE(storage_->Free(*h1).ok());
  EXPECT_FALSE(storage_->Free(999).ok());
}

INSTANTIATE_TEST_SUITE_P(Backends, StorageTest,
                         ::testing::Values(StorageKind::kMemory,
                                           StorageKind::kDisk),
                         [](const auto& info) {
                           return info.param == StorageKind::kMemory
                                      ? "memory"
                                      : "disk";
                         });

// ------------------------------------------------------- read-plan builder

TEST(DiskReadPlanTest, MergesRunsAcrossSegmentBoundaries) {
  // Three payloads appended back to back straddling a kSegmentBytes
  // boundary: segments are accounting units, the log bytes stay
  // contiguous, so the plan must coalesce them into ONE run.
  const uint64_t boundary = DiskStorage::kSegmentBytes;
  std::vector<uint64_t> offsets = {boundary - 100, boundary - 50,
                                   boundary + 10};
  std::vector<uint32_t> lengths = {50, 60, 30};
  std::vector<PayloadHandle> handles = {0, 1, 2};
  const DiskReadPlan plan = BuildDiskReadPlan(handles, offsets, lengths);
  ASSERT_EQ(plan.runs.size(), 1u);
  EXPECT_EQ(plan.runs[0].offset, boundary - 100);
  EXPECT_EQ(plan.runs[0].length, 140u);
  EXPECT_EQ(plan.runs[0].first, 0u);
  EXPECT_EQ(plan.runs[0].count, 3u);
}

TEST(DiskReadPlanTest, SortsByOffsetAndSplitsAtGaps) {
  // Handles arrive out of order; payloads 2 and 0 are adjacent
  // (100..150..200), payload 1 sits past a gap.
  std::vector<uint64_t> offsets = {150, 400, 100};
  std::vector<uint32_t> lengths = {50, 25, 50};
  std::vector<PayloadHandle> handles = {0, 1, 2};
  const DiskReadPlan plan = BuildDiskReadPlan(handles, offsets, lengths);
  ASSERT_EQ(plan.runs.size(), 2u);
  EXPECT_EQ(plan.runs[0].offset, 100u);
  EXPECT_EQ(plan.runs[0].length, 100u);
  EXPECT_EQ(plan.runs[0].count, 2u);
  EXPECT_EQ(plan.runs[1].offset, 400u);
  EXPECT_EQ(plan.runs[1].length, 25u);
  EXPECT_EQ(plan.runs[1].count, 1u);
  // order = handle indices sorted by offset: 2 (100), 0 (150), 1 (400).
  ASSERT_EQ(plan.order.size(), 3u);
  EXPECT_EQ(plan.order[0], 2u);
  EXPECT_EQ(plan.order[1], 0u);
  EXPECT_EQ(plan.order[2], 1u);
}

TEST(DiskReadPlanTest, DuplicateHandlesGetTheirOwnRuns) {
  // The same payload requested twice: equal offsets are not adjacent,
  // so each request is its own run and both output slots get filled.
  std::vector<uint64_t> offsets = {100};
  std::vector<uint32_t> lengths = {40};
  std::vector<PayloadHandle> handles = {0, 0};
  const DiskReadPlan plan = BuildDiskReadPlan(handles, offsets, lengths);
  ASSERT_EQ(plan.runs.size(), 2u);
  EXPECT_EQ(plan.runs[0].offset, 100u);
  EXPECT_EQ(plan.runs[1].offset, 100u);
}

TEST(DiskStorageTest, FetchManyCoalescesAcrossSegmentBoundary) {
  // End-to-end cousin of MergesRunsAcrossSegmentBoundaries: payloads
  // sized so consecutive stores straddle segment boundaries, fetched in
  // one batch and compared byte for byte.
  const std::string path =
      testing::TempDir() + "/simcloud_storage_segplan.bin";
  auto created = DiskStorage::Create(path);
  ASSERT_TRUE(created.ok());
  std::unique_ptr<DiskStorage> disk = std::move(created).value();
  Rng rng(7);
  const size_t payload_bytes = 40 * 1024;  // ~1.6 boundaries per pair
  std::vector<PayloadHandle> handles;
  std::vector<Bytes> expected;
  for (int i = 0; i < 8; ++i) {
    Bytes payload(payload_bytes);
    for (auto& b : payload) b = static_cast<uint8_t>(rng.NextBounded(256));
    auto handle = disk->Store(payload);
    ASSERT_TRUE(handle.ok());
    handles.push_back(handle.value_or(0));
    expected.push_back(std::move(payload));
  }
  std::vector<Bytes> fetched;
  ASSERT_TRUE(disk->FetchMany(handles, &fetched).ok());
  ASSERT_EQ(fetched.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(fetched[i], expected[i]) << "payload " << i;
  }
  disk.reset();
  std::remove(path.c_str());
}

TEST(StorageFactoryTest, DiskRequiresPath) {
  EXPECT_FALSE(MakeStorage(StorageKind::kDisk, "").ok());
  EXPECT_TRUE(MakeStorage(StorageKind::kMemory, "").ok());
}

TEST(StorageFactoryTest, DiskRejectsUnwritablePath) {
  EXPECT_FALSE(
      MakeStorage(StorageKind::kDisk, "/nonexistent/dir/file.bin").ok());
}

TEST(DiskStorageTest, SegmentAccountingTracksDeadSegments) {
  const std::string path = testing::TempDir() + "/simcloud_segments.bin";
  auto storage = DiskStorage::Create(path);
  ASSERT_TRUE(storage.ok());
  // 40 KiB payloads against 64 KiB segments: payloads 0,1 start in
  // segment 0 (offsets 0 and 40 KiB), payloads 2,3 in segment 1.
  const size_t payload_size = 40 * 1024;
  std::vector<PayloadHandle> handles;
  for (int i = 0; i < 4; ++i) {
    auto handle = (*storage)->Store(Bytes(payload_size, 0x10 + i));
    ASSERT_TRUE(handle.ok());
    handles.push_back(*handle);
  }
  auto stats = (*storage)->GetCompactionStats();
  EXPECT_EQ(stats.segment_count, 2u);
  EXPECT_EQ(stats.dead_segments, 0u);

  // Freeing both payloads attributed to segment 0 kills that segment.
  ASSERT_TRUE((*storage)->Free(handles[0]).ok());
  stats = (*storage)->GetCompactionStats();
  EXPECT_EQ(stats.dead_segments, 0u);
  ASSERT_TRUE((*storage)->Free(handles[1]).ok());
  stats = (*storage)->GetCompactionStats();
  EXPECT_EQ(stats.dead_segments, 1u);
  EXPECT_EQ(stats.dead_bytes, 2 * payload_size);
  storage->reset();
  std::remove(path.c_str());
}

TEST(DiskStorageTest, SegmentViewAndReleaseReclaimInPlace) {
  const std::string path = testing::TempDir() + "/simcloud_seg_release.bin";
  auto created = DiskStorage::Create(path);
  ASSERT_TRUE(created.ok());
  std::unique_ptr<DiskStorage> storage = std::move(created).value();

  // 3000-byte payloads: ~21 per 64 KiB segment, spanning 3+ segments.
  const size_t payload_size = 3000;
  const size_t count = 50;
  for (size_t i = 0; i < count; ++i) {
    ASSERT_TRUE(
        storage->Store(Bytes(payload_size, static_cast<uint8_t>(i))).ok());
  }

  // The segment iteration API: every live handle reports its segment,
  // and the view marks only the tail segment unsealed.
  std::vector<PayloadHandle> segment0;
  uint64_t last_segment = 0;
  ASSERT_TRUE(storage
                  ->ForEachLiveHandle([&](PayloadHandle handle,
                                          uint64_t segment, uint32_t bytes) {
                    EXPECT_EQ(bytes, payload_size);
                    if (segment == 0) segment0.push_back(handle);
                    last_segment = std::max(last_segment, segment);
                  })
                  .ok());
  ASSERT_GE(last_segment, 2u);
  ASSERT_FALSE(segment0.empty());
  for (const auto& view : storage->Segments()) {
    EXPECT_EQ(view.sealed, view.segment != last_segment)
        << "segment " << view.segment;
  }

  // Releasing needs the segment fully dead and sealed.
  EXPECT_EQ(storage->ReleaseDeadSegments({0}).status().code(),
            StatusCode::kFailedPrecondition);
  for (PayloadHandle handle : segment0) {
    ASSERT_TRUE(storage->Free(handle).ok());
  }
  EXPECT_EQ(storage->ReleaseDeadSegments({last_segment}).status().code(),
            StatusCode::kFailedPrecondition)
      << "the append segment must not be releasable";

  const auto before = storage->GetCompactionStats();
  auto released = storage->ReleaseDeadSegments({0});
  ASSERT_TRUE(released.ok()) << released.status().ToString();
  EXPECT_EQ(*released, segment0.size() * payload_size);

  // The accounting dropped the whole segment: bytes, dead bytes, counts.
  const auto after = storage->GetCompactionStats();
  EXPECT_EQ(after.dead_bytes, 0u);
  EXPECT_EQ(after.live_bytes, before.live_bytes);
  EXPECT_EQ(storage->TotalBytes(), before.TotalBytes() - *released);
  EXPECT_EQ(storage->Count(), count - segment0.size());
  EXPECT_EQ(after.segment_count, before.segment_count - 1);

  // Released handles stay invalid; stores and fetches keep working, and
  // a released segment cannot be released twice.
  EXPECT_EQ(storage->Fetch(segment0[0]).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(storage->ReleaseDeadSegments({0}).status().code(),
            StatusCode::kFailedPrecondition);
  auto fresh = storage->Store(Bytes(64, 0xEE));
  ASSERT_TRUE(fresh.ok());
  auto fetched = storage->Fetch(*fresh);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(*fetched, Bytes(64, 0xEE));

  storage.reset();
  std::remove(path.c_str());
}

// Backend that recycles freed handle slots — the shape a compacted log
// presents to the cache layer. Without cache eviction on Free, a
// deleted-then-reinserted object would be served the PREVIOUS occupant's
// bytes from the cache.
class RecyclingStorage : public BucketStorage {
 public:
  Result<PayloadHandle> Store(const Bytes& payload) override {
    if (!free_slots_.empty()) {
      const PayloadHandle handle = free_slots_.back();
      free_slots_.pop_back();
      payloads_[handle] = payload;
      return handle;
    }
    payloads_.push_back(payload);
    return static_cast<PayloadHandle>(payloads_.size() - 1);
  }
  Result<Bytes> Fetch(PayloadHandle handle) const override {
    if (handle >= payloads_.size()) return Status::NotFound("bad handle");
    return payloads_[handle];
  }
  Status Free(PayloadHandle handle) override {
    if (handle >= payloads_.size()) return Status::NotFound("bad handle");
    free_slots_.push_back(handle);
    return Status::OK();
  }
  CompactionStats GetCompactionStats() const override { return {}; }
  uint64_t TotalBytes() const override { return 0; }
  uint64_t Count() const override { return payloads_.size(); }
  std::string Name() const override { return "recycling"; }

 private:
  std::vector<Bytes> payloads_;
  std::vector<PayloadHandle> free_slots_;
};

TEST(PayloadCacheTest, FreeEvictsSoRecycledHandleNeverServesStaleBytes) {
  PayloadCache cache(std::make_unique<RecyclingStorage>(), 1 << 20);
  auto handle = cache.Store(Bytes(64, 0xAA));
  ASSERT_TRUE(handle.ok());
  auto first = cache.Fetch(*handle);  // populates the cache
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(cache.Contains(*handle));

  ASSERT_TRUE(cache.Free(*handle).ok());
  EXPECT_FALSE(cache.Contains(*handle));

  // The backend recycles the slot for a different payload; the cache must
  // serve the new bytes, not the stale ciphertext.
  auto reused = cache.Store(Bytes(64, 0xBB));
  ASSERT_TRUE(reused.ok());
  ASSERT_EQ(*reused, *handle) << "test premise: the handle is recycled";
  auto got = cache.Fetch(*reused);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, Bytes(64, 0xBB));
}

TEST(PayloadCacheTest, FreeEvictsOverRealBackendToo) {
  PayloadCache cache(std::make_unique<MemoryStorage>(), 1 << 20);
  auto handle = cache.Store(Bytes(32, 0xCD));
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(cache.Fetch(*handle).ok());
  ASSERT_TRUE(cache.Free(*handle).ok());
  // Without the eviction the cache would answer the freed handle.
  EXPECT_EQ(cache.Fetch(*handle).status().code(), StatusCode::kNotFound);
}

TEST(PayloadCacheTest, ClearAndAdmitRebuildTheHotSet) {
  PayloadCache cache(std::make_unique<MemoryStorage>(), 1 << 20);
  auto handle = cache.Store(Bytes(16, 0x01));
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(cache.Fetch(*handle).ok());
  EXPECT_GT(cache.stats().cached_payloads, 0u);
  cache.Clear();
  EXPECT_EQ(cache.stats().cached_payloads, 0u);
  EXPECT_EQ(cache.stats().cached_bytes, 0u);
  cache.Admit(*handle, Bytes(16, 0x01));
  EXPECT_TRUE(cache.Contains(*handle));
}

TEST(StorageTest, NamesIdentifyBackend) {
  auto mem = MakeStorage(StorageKind::kMemory, "");
  ASSERT_TRUE(mem.ok());
  EXPECT_EQ((*mem)->Name(), "memory");
  const std::string path = testing::TempDir() + "/simcloud_named.bin";
  auto disk = MakeStorage(StorageKind::kDisk, path);
  ASSERT_TRUE(disk.ok());
  EXPECT_EQ((*disk)->Name(), "disk");
  disk->reset();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mindex
}  // namespace simcloud
