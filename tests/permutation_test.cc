// Pivot-permutation tests: ordering with tie-breaking (the paper's exact
// definition), prefix consistency, ranks, and footrule properties.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mindex/permutation.h"

namespace simcloud {
namespace mindex {
namespace {

TEST(PermutationTest, OrdersByDistance) {
  const std::vector<float> distances = {5.0f, 1.0f, 3.0f, 2.0f};
  const Permutation perm = DistancesToPermutation(distances);
  EXPECT_EQ(perm, Permutation({1, 3, 2, 0}));
}

TEST(PermutationTest, TiesBrokenBySmallerIndex) {
  // Paper Section 4.1: d equal => smaller pivot index first.
  const std::vector<float> distances = {2.0f, 1.0f, 2.0f, 1.0f};
  const Permutation perm = DistancesToPermutation(distances);
  EXPECT_EQ(perm, Permutation({1, 3, 0, 2}));
}

TEST(PermutationTest, PrefixMatchesFullPermutation) {
  Rng rng(3);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<float> distances(20);
    for (auto& d : distances) d = rng.NextFloat();
    const Permutation full = DistancesToPermutation(distances);
    for (size_t len : {1u, 5u, 19u, 20u, 25u}) {
      const Permutation prefix =
          DistancesToPermutationPrefix(distances, len);
      const size_t expect_len = std::min<size_t>(len, 20);
      ASSERT_EQ(prefix.size(), expect_len);
      for (size_t i = 0; i < expect_len; ++i) {
        EXPECT_EQ(prefix[i], full[i]);
      }
    }
  }
}

TEST(PermutationTest, RanksAreInverse) {
  const Permutation perm = {3, 1, 0, 2};
  const auto ranks = PermutationRanks(perm, 4);
  EXPECT_EQ(ranks[3], 0u);
  EXPECT_EQ(ranks[1], 1u);
  EXPECT_EQ(ranks[0], 2u);
  EXPECT_EQ(ranks[2], 3u);
}

TEST(PermutationTest, RanksOfPrefixDefaultToWorst) {
  const Permutation prefix = {7, 2};
  const auto ranks = PermutationRanks(prefix, 10);
  EXPECT_EQ(ranks[7], 0u);
  EXPECT_EQ(ranks[2], 1u);
  for (uint32_t p : {0u, 1u, 3u, 4u, 5u, 6u, 8u, 9u}) {
    EXPECT_EQ(ranks[p], 10u);
  }
}

TEST(PermutationTest, FootruleZeroForIdenticalPermutations) {
  Rng rng(5);
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<float> distances(15);
    for (auto& d : distances) d = rng.NextFloat();
    const Permutation perm = DistancesToPermutation(distances);
    EXPECT_DOUBLE_EQ(PrefixFootrule(perm, perm, perm.size(), 15), 0.0);
  }
}

TEST(PermutationTest, FootrulePositiveForDifferentPermutations) {
  const Permutation a = {0, 1, 2, 3};
  const Permutation b = {3, 2, 1, 0};
  EXPECT_GT(PrefixFootrule(a, b, 4, 4), 0.0);
  // Full footrule over inverse permutations: |3-0|+|2-1|+|1-2|+|0-3| = 8.
  EXPECT_DOUBLE_EQ(PrefixFootrule(a, b, 4, 4), 8.0);
}

TEST(PermutationTest, FootruleSymmetricOnFullPermutations) {
  Rng rng(8);
  for (int iter = 0; iter < 30; ++iter) {
    std::vector<float> da(12), db(12);
    for (auto& d : da) d = rng.NextFloat();
    for (auto& d : db) d = rng.NextFloat();
    const Permutation a = DistancesToPermutation(da);
    const Permutation b = DistancesToPermutation(db);
    EXPECT_DOUBLE_EQ(PrefixFootrule(a, b, 12, 12),
                     PrefixFootrule(b, a, 12, 12));
  }
}

TEST(PermutationTest, ValidityCheck) {
  EXPECT_TRUE(IsValidPermutation({0, 1, 2}, 3));
  EXPECT_TRUE(IsValidPermutation({2, 0}, 3));   // prefix is fine
  EXPECT_TRUE(IsValidPermutation({}, 3));       // empty prefix is fine
  EXPECT_FALSE(IsValidPermutation({0, 0}, 3));  // duplicate
  EXPECT_FALSE(IsValidPermutation({3}, 3));     // out of range
}

TEST(PermutationTest, FullPermutationContainsEveryPivot) {
  Rng rng(9);
  std::vector<float> distances(64);
  for (auto& d : distances) d = rng.NextFloat();
  const Permutation perm = DistancesToPermutation(distances);
  ASSERT_EQ(perm.size(), 64u);
  EXPECT_TRUE(IsValidPermutation(perm, 64));
  // Sorted by actual distances.
  for (size_t i = 1; i < perm.size(); ++i) {
    EXPECT_LE(distances[perm[i - 1]], distances[perm[i]]);
  }
}

}  // namespace
}  // namespace mindex
}  // namespace simcloud
