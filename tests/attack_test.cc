// Attack-simulation tests: statistical helpers against known answers, and
// the end-to-end leakage story — the precise strategy without a transform
// leaks the exact distance distribution, the ConcaveTransform hides the
// distribution (large KS) while provably keeping rank order (Spearman ~1),
// and the permutation-only strategy leaks no distances at all but still
// reveals co-cell proximity structure.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "data/synthetic.h"
#include "metric/dataset.h"
#include "mindex/mindex.h"
#include "secure/attack.h"
#include "secure/client.h"
#include "secure/server.h"

namespace simcloud {
namespace secure {
namespace {

using metric::VectorObject;

// ------------------------------------------------------- helper statistics

TEST(AttackStatsTest, KsIdenticalSamplesIsZero) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(KolmogorovSmirnovStatistic(a, a), 0.0);
}

TEST(AttackStatsTest, KsDisjointSamplesIsOne) {
  std::vector<double> a = {1, 2, 3};
  std::vector<double> b = {10, 11, 12};
  EXPECT_DOUBLE_EQ(KolmogorovSmirnovStatistic(a, b), 1.0);
}

TEST(AttackStatsTest, KsDetectsShiftedDistributions) {
  Rng rng(5);
  std::vector<double> a(2000);
  std::vector<double> b(2000);
  for (auto& v : a) v = rng.NextGaussian(0.0, 1.0);
  for (auto& v : b) v = rng.NextGaussian(0.5, 1.0);
  const double ks = KolmogorovSmirnovStatistic(a, b);
  EXPECT_GT(ks, 0.1);
  EXPECT_LT(ks, 0.4);
}

TEST(AttackStatsTest, SpearmanPerfectMonotone) {
  std::vector<double> x = {1, 2, 3, 4, 5, 6};
  std::vector<double> y;
  for (double v : x) y.push_back(std::log1p(v) * 7 + 3);  // monotone map
  EXPECT_NEAR(SpearmanRankCorrelation(x, y), 1.0, 1e-12);
}

TEST(AttackStatsTest, SpearmanReversedIsMinusOne) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {10, 8, 6, 4, 2};
  EXPECT_NEAR(SpearmanRankCorrelation(x, y), -1.0, 1e-12);
}

TEST(AttackStatsTest, SpearmanIndependentNearZero) {
  Rng rng(9);
  std::vector<double> x(5000);
  std::vector<double> y(5000);
  for (auto& v : x) v = rng.NextDouble();
  for (auto& v : y) v = rng.NextDouble();
  EXPECT_NEAR(SpearmanRankCorrelation(x, y), 0.0, 0.05);
}

TEST(AttackStatsTest, SpearmanHandlesTiesAndDegenerateInput) {
  std::vector<double> ties_x = {1, 1, 2, 2, 3, 3};
  std::vector<double> ties_y = {1, 1, 2, 2, 3, 3};
  EXPECT_NEAR(SpearmanRankCorrelation(ties_x, ties_y), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(SpearmanRankCorrelation({1.0}, {2.0}), 0.0);
  // Constant series has zero variance.
  EXPECT_DOUBLE_EQ(
      SpearmanRankCorrelation({1.0, 1.0, 1.0}, {1.0, 2.0, 3.0}), 0.0);
}

TEST(AttackStatsTest, EntropyKnownValues) {
  EXPECT_DOUBLE_EQ(ShannonEntropyBits({7, 7, 7, 7}), 0.0);
  EXPECT_NEAR(ShannonEntropyBits({1, 2, 1, 2}), 1.0, 1e-12);
  EXPECT_NEAR(ShannonEntropyBits({1, 2, 3, 4}), 2.0, 1e-12);
}

// ------------------------------------------------------ end-to-end leakage

struct AttackWorld {
  metric::Dataset dataset{};
  mindex::PivotSet pivots;
  std::unique_ptr<EncryptedMIndexServer> server;
  std::unique_ptr<net::LoopbackTransport> transport;
};

AttackWorld MakeAttackWorld(InsertStrategy strategy, bool with_transform,
                            uint64_t seed = 301) {
  AttackWorld world;
  data::MixtureOptions options;
  options.num_objects = 500;
  options.dimension = 8;
  options.num_clusters = 5;
  options.seed = seed;
  world.dataset = metric::Dataset("attack", data::MakeGaussianMixture(options),
                                  std::make_shared<metric::L2Distance>());
  auto pivots =
      mindex::PivotSet::SelectRandom(world.dataset.objects(), 8, seed + 1);
  EXPECT_TRUE(pivots.ok());
  world.pivots = std::move(pivots).value();

  auto key = SecretKey::Create(world.pivots, Bytes(16, 0x71));
  EXPECT_TRUE(key.ok());
  if (with_transform) {
    EXPECT_TRUE(key->EnableDistanceTransform(seed + 2, 2000.0).ok());
  }

  mindex::MIndexOptions index_options;
  index_options.num_pivots = 8;
  index_options.bucket_capacity = 50;
  index_options.max_level = 4;
  auto server = EncryptedMIndexServer::Create(index_options);
  EXPECT_TRUE(server.ok());
  world.server = std::move(server).value();
  world.transport =
      std::make_unique<net::LoopbackTransport>(world.server.get());
  EncryptionClient client(*key, world.dataset.distance(),
                          world.transport.get());
  EXPECT_TRUE(
      client.InsertBulk(world.dataset.objects(), strategy, 200).ok());
  return world;
}

TEST(AttackTest, PreciseStrategyWithoutTransformLeaksDistribution) {
  auto world = MakeAttackWorld(InsertStrategy::kPrecise, false);
  auto view = ExtractServerView(world.server->index());
  ASSERT_TRUE(view.ok());
  auto report = EvaluateLeakage(*view, world.dataset.objects(),
                                *world.dataset.distance(), world.pivots, 1);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->distances_leaked);
  // The stored distances ARE the true distances: distribution fully
  // reconstructed, order fully leaked.
  EXPECT_LT(report->distance_ks_statistic, 0.02);
  EXPECT_GT(report->rank_correlation, 0.999);
}

TEST(AttackTest, TransformHidesDistributionButNotOrder) {
  auto world = MakeAttackWorld(InsertStrategy::kPrecise, true);
  auto view = ExtractServerView(world.server->index());
  ASSERT_TRUE(view.ok());
  auto report = EvaluateLeakage(*view, world.dataset.objects(),
                                *world.dataset.distance(), world.pivots, 1);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->distances_leaked);
  // Nonlinear distortion: the leaked marginal no longer matches the true
  // one...
  EXPECT_GT(report->distance_ks_statistic, 0.2);
  // ...but a monotone transform cannot hide the ordering. The report is
  // honest about this residual leak.
  EXPECT_GT(report->rank_correlation, 0.999);
}

TEST(AttackTest, PermutationOnlyStrategyLeaksNoDistances) {
  auto world = MakeAttackWorld(InsertStrategy::kPermutationOnly, false);
  auto view = ExtractServerView(world.server->index());
  ASSERT_TRUE(view.ok());
  auto report = EvaluateLeakage(*view, world.dataset.objects(),
                                *world.dataset.distance(), world.pivots, 1);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->distances_leaked);
  EXPECT_DOUBLE_EQ(report->distance_ks_statistic, 0.0);
}

TEST(AttackTest, PermutationsRevealCoCellProximityRegardlessOfTransform) {
  for (bool with_transform : {false, true}) {
    auto world =
        MakeAttackWorld(InsertStrategy::kPermutationOnly, with_transform);
    auto view = ExtractServerView(world.server->index());
    ASSERT_TRUE(view.ok());
    auto report = EvaluateLeakage(*view, world.dataset.objects(),
                                  *world.dataset.distance(), world.pivots, 1);
    ASSERT_TRUE(report.ok());
    // Same-cell pairs are measurably closer than random pairs: the cell
    // structure itself leaks proximity (paper Section 4.3's caveat), and
    // a monotone transform does not change permutations.
    EXPECT_LT(report->same_cell_distance_ratio, 0.9)
        << "transform=" << with_transform;
  }
}

TEST(AttackTest, CiphertextSizesAreQuantizedByBlockPadding) {
  auto world = MakeAttackWorld(InsertStrategy::kPrecise, false);
  auto view = ExtractServerView(world.server->index());
  ASSERT_TRUE(view.ok());
  auto report = EvaluateLeakage(*view, world.dataset.objects(),
                                *world.dataset.distance(), world.pivots, 1);
  ASSERT_TRUE(report.ok());
  // Fixed-dimension collection + CBC padding => a single ciphertext size;
  // near-zero entropy means the size channel reveals nothing here.
  EXPECT_EQ(report->distinct_payload_sizes, 1u);
  EXPECT_DOUBLE_EQ(report->payload_size_entropy_bits, 0.0);
}

TEST(AttackTest, ExtractServerViewMatchesIndexContent) {
  auto world = MakeAttackWorld(InsertStrategy::kPrecise, false);
  auto view = ExtractServerView(world.server->index());
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->entries.size(), world.dataset.size());
  for (const auto& entry : view->entries) {
    EXPECT_FALSE(entry.permutation.empty());
    EXPECT_GT(entry.payload_size, 0u);
  }
}

TEST(AttackTest, EvaluateLeakageValidatesInput) {
  auto world = MakeAttackWorld(InsertStrategy::kPrecise, false);
  LeakedServerView empty;
  EXPECT_FALSE(EvaluateLeakage(empty, world.dataset.objects(),
                               *world.dataset.distance(), world.pivots, 1)
                   .ok());
}

}  // namespace
}  // namespace secure
}  // namespace simcloud
