// Server-side cursor battery (kRangeSearchCursor / kCursorNext /
// kCursorClose): the anchor invariant is BYTE identity — re-encoding the
// concatenation of all cursor pages with the open page's stats must
// reproduce the one-shot kRangeSearch response exactly, across storage
// engines (memory / disk), deployment shapes (single node / 3-shard
// facade), and page sizes including 1. Around the anchor: TTL expiry is
// an explicit error (never a silent empty page), max_open_cursors
// rejection, idempotent close, eager disconnect reaping (asserted via
// stats), and snapshot-at-open semantics under concurrent churn.
//
// CI runs this in both channel policies (SIMCLOUD_CHANNEL_POLICY=secure
// seals every page in AEAD records).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "metric/distance.h"
#include "mindex/pivot_set.h"
#include "net/tcp.h"
#include "net/transport.h"
#include "secure/client.h"
#include "secure/protocol.h"
#include "secure/server.h"
#include "secure/sharded_server.h"

namespace simcloud {
namespace secure {
namespace {

using metric::VectorObject;

constexpr size_t kNumPivots = 8;
constexpr size_t kDim = 6;
/// Covers the whole synthetic mixture: every object is a candidate, so
/// cursor totals are large and deterministic.
constexpr double kWideRadius = 1e6;

net::ChannelPolicy PolicyFromEnv() {
  const char* env = std::getenv("SIMCLOUD_CHANNEL_POLICY");
  return env != nullptr && std::string(env) == "secure"
             ? net::ChannelPolicy::kSecure
             : net::ChannelPolicy::kPlaintext;
}

net::SecureChannelOptions CursorChannelOptions() {
  net::SecureChannelOptions options;
  options.psk = Bytes(32, 0x5A);
  options.rekey_after_records = 64;  // cross epochs mid-pagination
  return options;
}

std::vector<VectorObject> MakeObjects(size_t count, uint64_t seed) {
  data::MixtureOptions options;
  options.num_objects = count;
  options.dimension = kDim;
  options.num_clusters = 4;
  options.seed = seed;
  return data::MakeGaussianMixture(options);
}

/// A handler (single node or sharded facade), the key that loaded it,
/// and a loopback client for in-process protocol-level tests.
struct World {
  std::shared_ptr<metric::L2Distance> metric;
  std::unique_ptr<SecretKey> key;
  std::unique_ptr<net::RequestHandler> handler;
  EncryptedMIndexServer* single = nullptr;   // white-box, 1-shard only
  ShardedServer* sharded = nullptr;          // white-box, multi-shard only
  std::unique_ptr<net::LoopbackTransport> transport;
  std::unique_ptr<EncryptionClient> client;
  std::vector<VectorObject> objects;

  /// Pivot distances as the client would send them (no transform here).
  std::vector<float> QueryDistances(const VectorObject& query) const {
    return key->pivots().ComputeDistances(query, *metric);
  }
};

World MakeWorld(size_t num_shards, bool disk, size_t num_objects,
                const CursorConfig& cursor_config = CursorConfig{},
                uint64_t seed = 4242) {
  World world;
  world.metric = std::make_shared<metric::L2Distance>();
  world.objects = MakeObjects(num_objects, seed);
  auto pivots =
      mindex::PivotSet::SelectRandom(world.objects, kNumPivots, seed + 1);
  EXPECT_TRUE(pivots.ok());
  auto key = SecretKey::Create(std::move(pivots).value(), Bytes(16, 0x42));
  EXPECT_TRUE(key.ok());
  world.key = std::make_unique<SecretKey>(std::move(*key));

  mindex::MIndexOptions options;
  options.num_pivots = kNumPivots;
  options.bucket_capacity = 25;
  options.max_level = 4;
  if (disk) {
    options.disk_path = testing::TempDir() + "/simcloud_cursor_" +
                        std::to_string(seed) + "_" +
                        std::to_string(num_shards) + ".bin";
    std::remove(options.disk_path.c_str());
    for (size_t s = 0; s < num_shards; ++s) {  // sharded per-shard files
      std::remove((options.disk_path + "." + std::to_string(s)).c_str());
    }
  }
  if (num_shards <= 1) {
    auto server = EncryptedMIndexServer::Create(options, cursor_config);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    world.single = server->get();
    world.handler = std::move(*server);
  } else {
    auto server = ShardedServer::Create(options, num_shards, cursor_config);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    world.sharded = server->get();
    world.handler = std::move(*server);
  }
  world.transport =
      std::make_unique<net::LoopbackTransport>(world.handler.get());
  world.client = std::make_unique<EncryptionClient>(
      *world.key, world.metric, world.transport.get());
  EXPECT_TRUE(
      world.client->InsertBulk(world.objects, InsertStrategy::kPrecise, 128)
          .ok());
  return world;
}

/// Drains a cursor protocol-level: concatenates every page's candidates
/// and returns the open page's stats. Asserts pages respect page_size
/// and that exhaustion is signalled by cursor id 0, not an error.
struct DrainResult {
  mindex::CandidateList candidates;
  mindex::SearchStats open_stats;
  uint64_t total = 0;
  size_t pages = 0;
};

DrainResult DrainCursor(net::RequestHandler* handler,
                        const std::vector<float>& query_distances,
                        double radius, uint64_t page_size) {
  DrainResult drained;
  auto open = handler->Handle(EncodeRangeSearchCursorRequest(
      query_distances, radius, page_size, 0));
  EXPECT_TRUE(open.ok()) << open.status().ToString();
  auto page = DecodeCursorPage(*open);
  EXPECT_TRUE(page.ok()) << page.status().ToString();
  drained.open_stats = page->stats;
  drained.total = page->total;
  uint64_t cursor_id = page->cursor_id;
  for (;;) {
    ++drained.pages;
    EXPECT_LE(page->candidates.size(), page_size);
    for (auto& candidate : page->candidates) {
      drained.candidates.push_back(std::move(candidate));
    }
    if (cursor_id == 0) break;
    auto next = handler->Handle(EncodeCursorNextRequest(cursor_id));
    EXPECT_TRUE(next.ok()) << next.status().ToString();
    page = DecodeCursorPage(*next);
    EXPECT_TRUE(page.ok()) << page.status().ToString();
    EXPECT_EQ(page->total, drained.total);
    cursor_id = page->cursor_id;
  }
  return drained;
}

/// The tentpole invariant, checked at the byte level.
void ExpectPagedMatchesOneShot(World* world, uint64_t page_size) {
  const VectorObject& query = world->objects[world->objects.size() / 2];
  const std::vector<float> query_distances = world->QueryDistances(query);
  auto one_shot = world->handler->Handle(
      EncodeRangeSearchRequest(query_distances, kWideRadius));
  ASSERT_TRUE(one_shot.ok()) << one_shot.status().ToString();
  auto one_shot_decoded = DecodeCandidateResponse(*one_shot);
  ASSERT_TRUE(one_shot_decoded.ok());
  ASSERT_EQ(one_shot_decoded->candidates.size(), world->objects.size())
      << "the wide radius must admit every object";

  DrainResult drained =
      DrainCursor(world->handler.get(), query_distances, kWideRadius,
                  page_size);
  EXPECT_EQ(drained.total, one_shot_decoded->candidates.size());
  const Bytes reassembled =
      EncodeCandidateResponse(drained.candidates, drained.open_stats);
  EXPECT_EQ(reassembled, *one_shot)
      << "paged concatenation diverges from one-shot at page size "
      << page_size;
}

// ------------------------------------------------- byte identity matrix

TEST(CursorTest, PagedMatchesOneShotSingleShardMemory) {
  World world = MakeWorld(/*num_shards=*/1, /*disk=*/false, 200);
  for (uint64_t page_size : {1u, 7u, 64u, 100000u}) {
    ExpectPagedMatchesOneShot(&world, page_size);
  }
  // Nothing leaks: every drained cursor released its server state.
  EXPECT_EQ(world.single->cursors().counters().open, 0u);
}

TEST(CursorTest, PagedMatchesOneShotSingleShardDisk) {
  World world = MakeWorld(/*num_shards=*/1, /*disk=*/true, 200, {}, 4243);
  for (uint64_t page_size : {1u, 7u, 64u, 100000u}) {
    ExpectPagedMatchesOneShot(&world, page_size);
  }
}

TEST(CursorTest, PagedMatchesOneShotThreeShardsMemory) {
  World world = MakeWorld(/*num_shards=*/3, /*disk=*/false, 200, {}, 4244);
  for (uint64_t page_size : {1u, 7u, 64u, 100000u}) {
    ExpectPagedMatchesOneShot(&world, page_size);
  }
  EXPECT_EQ(world.sharded->cursors().counters().open, 0u);
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(world.sharded->shard(s).cursors().counters().open, 0u)
        << "shard " << s << " leaked a cursor leg";
  }
}

TEST(CursorTest, PagedMatchesOneShotThreeShardsDisk) {
  World world = MakeWorld(/*num_shards=*/3, /*disk=*/true, 200, {}, 4245);
  for (uint64_t page_size : {1u, 7u, 64u, 100000u}) {
    ExpectPagedMatchesOneShot(&world, page_size);
  }
}

// ----------------------------------------------------- client stream API

TEST(CursorTest, ClientCursorStreamMatchesRangeSearch) {
  for (size_t num_shards : {size_t{1}, size_t{3}}) {
    World world = MakeWorld(num_shards, /*disk=*/false, 150, {},
                            4250 + num_shards);
    const VectorObject& query = world.objects[17];
    const double radius = 30.0;
    auto one_shot = world.client->RangeSearch(query, radius);
    ASSERT_TRUE(one_shot.ok()) << one_shot.status().ToString();

    auto stream = world.client->OpenRangeCursor(query, radius, 16);
    ASSERT_TRUE(stream.ok()) << stream.status().ToString();
    metric::NeighborList merged;
    while (!(*stream)->exhausted()) {
      auto page = (*stream)->Next();
      ASSERT_TRUE(page.ok()) << page.status().ToString();
      merged.insert(merged.end(), page->begin(), page->end());
    }
    std::sort(merged.begin(), merged.end());
    ASSERT_EQ(merged.size(), one_shot->size());
    for (size_t i = 0; i < merged.size(); ++i) {
      EXPECT_EQ(merged[i].id, (*one_shot)[i].id);
      EXPECT_EQ(merged[i].distance, (*one_shot)[i].distance);
    }
    // Drained streams need no close, but close must still be clean.
    EXPECT_TRUE((*stream)->Close().ok());
  }
}

// ------------------------------------------------------ lifecycle limits

TEST(CursorTest, ExpiredCursorIsAnExplicitErrorNeverAnEmptyPage) {
  CursorConfig config;
  config.ttl_ms = 50;
  World world = MakeWorld(/*num_shards=*/1, /*disk=*/false, 120, config);
  const std::vector<float> qd = world.QueryDistances(world.objects[0]);
  auto open =
      world.handler->Handle(EncodeRangeSearchCursorRequest(qd, kWideRadius,
                                                           /*page_size=*/8,
                                                           0));
  ASSERT_TRUE(open.ok());
  auto page = DecodeCursorPage(*open);
  ASSERT_TRUE(page.ok());
  ASSERT_NE(page->cursor_id, 0u);

  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  auto next = world.handler->Handle(EncodeCursorNextRequest(page->cursor_id));
  ASSERT_FALSE(next.ok()) << "expiry must surface, not an empty page";
  EXPECT_EQ(next.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(next.status().message().find("cursor expired"), std::string::npos)
      << next.status().ToString();
  EXPECT_GE(world.single->cursors().counters().expired_total, 1u);
  EXPECT_EQ(world.single->cursors().counters().open, 0u);
}

TEST(CursorTest, MaxOpenCursorsRejectsTheOverflowOpen) {
  CursorConfig config;
  config.max_open_cursors = 2;
  World world = MakeWorld(/*num_shards=*/1, /*disk=*/false, 120, config);
  const std::vector<float> qd = world.QueryDistances(world.objects[0]);
  const Bytes open_request =
      EncodeRangeSearchCursorRequest(qd, kWideRadius, /*page_size=*/4, 0);

  std::vector<uint64_t> ids;
  for (int i = 0; i < 2; ++i) {
    auto open = world.handler->Handle(open_request);
    ASSERT_TRUE(open.ok());
    auto page = DecodeCursorPage(*open);
    ASSERT_TRUE(page.ok());
    ASSERT_NE(page->cursor_id, 0u);
    ids.push_back(page->cursor_id);
  }
  auto overflow = world.handler->Handle(open_request);
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(overflow.status().message().find("too many open cursors"),
            std::string::npos);
  // Closing one frees a slot: the next open succeeds again.
  auto close = world.handler->Handle(EncodeCursorCloseRequest(ids[0]));
  ASSERT_TRUE(close.ok());
  auto reopened = world.handler->Handle(open_request);
  EXPECT_TRUE(reopened.ok()) << reopened.status().ToString();
}

TEST(CursorTest, CloseIsIdempotentAndNextAfterCloseIsUnknown) {
  World world = MakeWorld(/*num_shards=*/1, /*disk=*/false, 120);
  const std::vector<float> qd = world.QueryDistances(world.objects[0]);
  auto open = world.handler->Handle(
      EncodeRangeSearchCursorRequest(qd, kWideRadius, 4, 0));
  ASSERT_TRUE(open.ok());
  auto page = DecodeCursorPage(*open);
  ASSERT_TRUE(page.ok());
  ASSERT_NE(page->cursor_id, 0u);

  auto first = world.handler->Handle(EncodeCursorCloseRequest(page->cursor_id));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(DecodeInsertResponse(*first).value(), 1u);
  auto second =
      world.handler->Handle(EncodeCursorCloseRequest(page->cursor_id));
  ASSERT_TRUE(second.ok()) << "double close must stay an ack, not an error";
  EXPECT_EQ(DecodeInsertResponse(*second).value(), 0u);

  auto next = world.handler->Handle(EncodeCursorNextRequest(page->cursor_id));
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kNotFound);
  EXPECT_NE(next.status().message().find("unknown cursor"),
            std::string::npos);
}

TEST(CursorTest, ZeroPageSizeIsRejected) {
  World world = MakeWorld(/*num_shards=*/1, /*disk=*/false, 50);
  const std::vector<float> qd = world.QueryDistances(world.objects[0]);
  auto open = world.handler->Handle(
      EncodeRangeSearchCursorRequest(qd, kWideRadius, 0, 0));
  ASSERT_FALSE(open.ok());
  EXPECT_EQ(open.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------- disconnect reaping

/// TCP fixture shared by the disconnect tests: the handler behind a live
/// TcpServer under the CI channel policy.
struct TcpWorld {
  World world;
  std::unique_ptr<net::TcpServer> server;
  net::ChannelPolicy policy = net::ChannelPolicy::kPlaintext;

  Result<std::unique_ptr<net::TcpTransport>> Connect() const {
    return net::TcpTransport::Connect("127.0.0.1", server->port(), policy,
                                      CursorChannelOptions());
  }
};

TcpWorld StartTcp(size_t num_shards, const CursorConfig& config,
                  uint64_t seed) {
  TcpWorld tcp;
  tcp.world = MakeWorld(num_shards, /*disk=*/false, 150, config, seed);
  tcp.policy = PolicyFromEnv();
  net::TcpServerOptions server_options;
  server_options.channel_policy = tcp.policy;
  if (tcp.policy == net::ChannelPolicy::kSecure) {
    server_options.secure_channel = CursorChannelOptions();
  }
  tcp.server = std::make_unique<net::TcpServer>(tcp.world.handler.get(),
                                                server_options);
  EXPECT_TRUE(tcp.server->Start(0).ok());
  return tcp;
}

/// Polls `predicate` for up to ~5 s (the disconnect reap is asynchronous:
/// the server notices the dropped connection on its event loop).
template <typename Predicate>
bool Eventually(Predicate predicate) {
  for (int i = 0; i < 500; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return predicate();
}

TEST(CursorTest, ConnectionDropReapsSingleServerCursors) {
  TcpWorld tcp = StartTcp(/*num_shards=*/1, CursorConfig{}, 4260);
  {
    auto transport = tcp.Connect();
    ASSERT_TRUE(transport.ok());
    EncryptionClient client(*tcp.world.key, tcp.world.metric,
                            transport->get());
    auto stream =
        client.OpenRangeCursor(tcp.world.objects[3], kWideRadius, 8);
    ASSERT_TRUE(stream.ok()) << stream.status().ToString();
    ASSERT_NE((*stream)->cursor_id(), 0u);
    EXPECT_EQ(tcp.world.single->cursors().counters().open, 1u);
    // The client vanishes without closing: abort the connection first so
    // the stream destructor's best-effort close cannot reach the server —
    // only the disconnect reaper may release the cursor.
    (*transport)->Abort(Status::NetworkError("client vanished"));
  }
  EXPECT_TRUE(Eventually([&] {
    return tcp.world.single->cursors().counters().open == 0;
  })) << "dropped connection did not reap its cursor";
  EXPECT_GE(tcp.world.single->cursors().counters().reaped_total, 1u);
  tcp.server->Stop();
}

TEST(CursorTest, ConnectionDropReapsCompositeCursorsAndShardLegs) {
  TcpWorld tcp = StartTcp(/*num_shards=*/3, CursorConfig{}, 4261);
  ShardedServer* facade = tcp.world.sharded;
  {
    auto transport = tcp.Connect();
    ASSERT_TRUE(transport.ok());
    EncryptionClient client(*tcp.world.key, tcp.world.metric,
                            transport->get());
    auto stream =
        client.OpenRangeCursor(tcp.world.objects[3], kWideRadius, 8);
    ASSERT_TRUE(stream.ok()) << stream.status().ToString();
    ASSERT_NE((*stream)->cursor_id(), 0u);
    EXPECT_EQ(facade->cursors().counters().open, 1u);
    (*transport)->Abort(Status::NetworkError("client vanished"));
  }
  EXPECT_TRUE(Eventually([&] {
    if (facade->cursors().counters().open != 0) return false;
    for (size_t s = 0; s < 3; ++s) {
      if (facade->shard(s).cursors().counters().open != 0) return false;
    }
    return true;
  })) << "dropped connection did not reap the composite cursor or its legs";
  EXPECT_GE(facade->cursors().counters().reaped_total, 1u);
  tcp.server->Stop();
}

TEST(CursorTest, StatsAggregateCursorCountersAcrossShards) {
  TcpWorld tcp = StartTcp(/*num_shards=*/3, CursorConfig{}, 4262);
  auto transport = tcp.Connect();
  ASSERT_TRUE(transport.ok());
  EncryptionClient client(*tcp.world.key, tcp.world.metric, transport->get());
  auto stream = client.OpenRangeCursor(tcp.world.objects[5], kWideRadius, 8);
  ASSERT_TRUE(stream.ok());
  ASSERT_NE((*stream)->cursor_id(), 0u);
  auto stats = client.GetServerStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // One composite cursor on the facade + one leg per shard.
  EXPECT_EQ(stats->cursors_open, 4u);
  EXPECT_GE(stats->cursors_opened_total, 4u);
  EXPECT_TRUE((*stream)->Close().ok());
  auto after = client.GetServerStats();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->cursors_open, 0u);
  tcp.server->Stop();
}

// ------------------------------------------------------ mid-cursor churn

TEST(CursorTest, ChurnDuringPaginationStaysOnTheOpenSnapshot) {
  World world = MakeWorld(/*num_shards=*/1, /*disk=*/false, 300, {}, 4270);
  const VectorObject& query = world.objects[0];
  const std::vector<float> qd = world.QueryDistances(query);

  // The at-open oracle: every candidate id the snapshot can ever yield.
  auto one_shot =
      world.handler->Handle(EncodeRangeSearchRequest(qd, kWideRadius));
  ASSERT_TRUE(one_shot.ok());
  auto oracle = DecodeCandidateResponse(*one_shot);
  ASSERT_TRUE(oracle.ok());
  std::set<metric::ObjectId> snapshot_ids;
  for (const auto& candidate : oracle->candidates) {
    snapshot_ids.insert(candidate.id);
  }

  auto open = world.handler->Handle(
      EncodeRangeSearchCursorRequest(qd, kWideRadius, 16, 0));
  ASSERT_TRUE(open.ok());
  auto page = DecodeCursorPage(*open);
  ASSERT_TRUE(page.ok());
  uint64_t cursor_id = page->cursor_id;
  ASSERT_NE(cursor_id, 0u);

  // Churn between pages: delete indexed objects and insert fresh ones.
  // The cursor pins the at-open candidate snapshot with bounded
  // staleness — deleted candidates MAY vanish from later pages, inserts
  // NEVER appear, nothing crashes, no id is delivered twice.
  const std::vector<VectorObject> fresh = MakeObjects(60, 999999);
  std::vector<VectorObject> shifted;
  shifted.reserve(fresh.size());
  for (const VectorObject& object : fresh) {
    shifted.emplace_back(object.id() + 1000000, object.values());
  }
  std::set<metric::ObjectId> seen;
  for (const auto& candidate : page->candidates) {
    EXPECT_TRUE(seen.insert(candidate.id).second);
  }
  size_t churn_step = 0;
  while (cursor_id != 0) {
    if (churn_step < 10) {
      ASSERT_TRUE(
          world.client->Delete(world.objects[100 + churn_step * 5]).ok());
      ASSERT_TRUE(world.client
                      ->InsertBulk({shifted[churn_step]},
                                   InsertStrategy::kPrecise)
                      .ok());
      ++churn_step;
    }
    auto next = world.handler->Handle(EncodeCursorNextRequest(cursor_id));
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    page = DecodeCursorPage(*next);
    ASSERT_TRUE(page.ok());
    cursor_id = page->cursor_id;
    for (const auto& candidate : page->candidates) {
      EXPECT_TRUE(seen.insert(candidate.id).second)
          << "candidate " << candidate.id << " delivered twice";
      EXPECT_TRUE(snapshot_ids.count(candidate.id))
          << "candidate " << candidate.id
          << " was not in the at-open snapshot";
    }
  }
  // Bounded staleness: everything but the concurrently-deleted ids
  // arrived (deleted ones may or may not, depending on page timing).
  for (metric::ObjectId id : snapshot_ids) {
    bool deleted = false;
    for (size_t d = 0; d < churn_step; ++d) {
      if (world.objects[100 + d * 5].id() == id) {
        deleted = true;
        break;
      }
    }
    if (!deleted) {
      EXPECT_TRUE(seen.count(id)) << "live candidate " << id << " skipped";
    }
  }
}

TEST(CursorTest, CompletedCompactionInvalidatesTheCursorExplicitly) {
  World world = MakeWorld(/*num_shards=*/1, /*disk=*/false, 200, {}, 4271);
  const std::vector<float> qd = world.QueryDistances(world.objects[0]);
  auto open = world.handler->Handle(
      EncodeRangeSearchCursorRequest(qd, kWideRadius, 8, 0));
  ASSERT_TRUE(open.ok());
  auto page = DecodeCursorPage(*open);
  ASSERT_TRUE(page.ok());
  ASSERT_NE(page->cursor_id, 0u);

  // Make garbage, then force a full compaction pass: payload handles are
  // remapped, so the snapshot's handles can no longer be trusted.
  for (size_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(world.client->Delete(world.objects[50 + i]).ok());
  }
  auto report = world.client->Compact(/*force=*/true);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->compacted);

  auto next = world.handler->Handle(EncodeCursorNextRequest(page->cursor_id));
  ASSERT_FALSE(next.ok())
      << "a remapping compaction must invalidate, never serve stale bytes";
  EXPECT_EQ(next.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(next.status().message().find("cursor invalidated"),
            std::string::npos)
      << next.status().ToString();
  EXPECT_EQ(world.single->cursors().counters().open, 0u);
}

}  // namespace
}  // namespace secure
}  // namespace simcloud
