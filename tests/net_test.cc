// Transport tests: loopback cost accounting, real TCP framing, error
// propagation, and the server/communication time split.

#include <gtest/gtest.h>

#include <thread>

#include "net/tcp.h"
#include "net/transport.h"

namespace simcloud {
namespace net {
namespace {

/// Echoes the request back, optionally burning some CPU first.
class EchoHandler : public RequestHandler {
 public:
  explicit EchoHandler(bool burn_cpu = false) : burn_cpu_(burn_cpu) {}

  Result<Bytes> Handle(const Bytes& request) override {
    if (!request.empty() && request[0] == 0xEE) {
      return Status::InvalidArgument("poison request");
    }
    if (burn_cpu_) {
      volatile double x = 0;
      for (int i = 0; i < 200000; ++i) x = x + i * 0.5;
    }
    handled_++;
    return request;
  }

  int handled() const { return handled_; }

 private:
  bool burn_cpu_;
  int handled_ = 0;
};

TEST(LoopbackTransportTest, EchoAndByteAccounting) {
  EchoHandler handler;
  LoopbackTransport transport(&handler);

  const Bytes request = {1, 2, 3, 4, 5};
  auto response = transport.Call(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(*response, request);

  const TransportCosts& costs = transport.costs();
  EXPECT_EQ(costs.calls, 1u);
  EXPECT_EQ(costs.bytes_sent, 5u);
  EXPECT_EQ(costs.bytes_received, 5u);
  EXPECT_EQ(costs.TotalBytes(), 10u);
  EXPECT_GT(costs.communication_nanos, 0);
}

TEST(LoopbackTransportTest, ServerTimeIsMeasured) {
  EchoHandler handler(/*burn_cpu=*/true);
  LoopbackTransport transport(&handler);
  ASSERT_TRUE(transport.Call(Bytes(10)).ok());
  EXPECT_GT(transport.costs().server_nanos, 0);
}

TEST(LoopbackTransportTest, LinkModelScalesWithVolume) {
  EchoHandler handler;
  LinkModel slow;
  slow.latency_seconds = 0.0;
  slow.bandwidth_bytes_per_sec = 1e6;  // 1 MB/s
  LoopbackTransport transport(&handler, slow);

  ASSERT_TRUE(transport.Call(Bytes(1000)).ok());
  const int64_t small_comm = transport.costs().communication_nanos;
  transport.ResetCosts();
  ASSERT_TRUE(transport.Call(Bytes(100000)).ok());
  const int64_t large_comm = transport.costs().communication_nanos;
  EXPECT_GT(large_comm, small_comm * 50);
}

TEST(LoopbackTransportTest, HandlerErrorsPropagate) {
  EchoHandler handler;
  LoopbackTransport transport(&handler);
  auto response = transport.Call(Bytes{0xEE});
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
}

TEST(LoopbackTransportTest, ResetClearsCosts) {
  EchoHandler handler;
  LoopbackTransport transport(&handler);
  ASSERT_TRUE(transport.Call(Bytes(10)).ok());
  transport.ResetCosts();
  EXPECT_EQ(transport.costs().calls, 0u);
  EXPECT_EQ(transport.costs().TotalBytes(), 0u);
}

TEST(TcpTest, EndToEndEcho) {
  EchoHandler handler;
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_GT(server.port(), 0);

  auto transport = TcpTransport::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(transport.ok());

  for (int i = 0; i < 10; ++i) {
    Bytes request(100 + i, static_cast<uint8_t>(i));
    auto response = (*transport)->Call(request);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(*response, request);
  }
  EXPECT_EQ(handler.handled(), 10);
  EXPECT_EQ((*transport)->costs().calls, 10u);
  EXPECT_GT((*transport)->costs().communication_nanos, 0);
  server.Stop();
}

TEST(TcpTest, LargeMessageRoundTrip) {
  EchoHandler handler;
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start(0).ok());
  auto transport = TcpTransport::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(transport.ok());

  Bytes request(4 * 1024 * 1024);
  for (size_t i = 0; i < request.size(); ++i) {
    request[i] = static_cast<uint8_t>(i * 2654435761u >> 24);
  }
  auto response = (*transport)->Call(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(*response, request);
  server.Stop();
}

TEST(TcpTest, RemoteErrorsSurfaceAsStatus) {
  EchoHandler handler;
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start(0).ok());
  auto transport = TcpTransport::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(transport.ok());

  auto response = (*transport)->Call(Bytes{0xEE});
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kNetworkError);
  EXPECT_NE(response.status().message().find("poison"), std::string::npos);

  // The connection survives an application-level error.
  auto ok_response = (*transport)->Call(Bytes{1, 2});
  EXPECT_TRUE(ok_response.ok());
  server.Stop();
}

TEST(TcpTest, ConnectToClosedPortFails) {
  auto transport = TcpTransport::Connect("127.0.0.1", 1);
  EXPECT_FALSE(transport.ok());
}

TEST(TcpTest, RejectsInvalidAddress) {
  auto transport = TcpTransport::Connect("not-an-ip", 80);
  EXPECT_FALSE(transport.ok());
}

TEST(TcpTest, SequentialConnectionsAreServed) {
  EchoHandler handler;
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start(0).ok());
  for (int round = 0; round < 3; ++round) {
    auto transport = TcpTransport::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(transport.ok());
    auto response = (*transport)->Call(Bytes{9});
    ASSERT_TRUE(response.ok());
  }
  server.Stop();
}

}  // namespace
}  // namespace net
}  // namespace simcloud
