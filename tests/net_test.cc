// Transport tests: loopback cost accounting, real TCP framing, error
// propagation, the server/communication time split, request pipelining,
// backpressure against slow clients, and shutdown races of the epoll
// engine.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/clock.h"
#include "common/serialize.h"
#include "net/tcp.h"
#include "net/transport.h"
#include "tests/net_test_util.h"

namespace simcloud {
namespace net {
namespace {

/// Echoes the request back, optionally burning some CPU first. The
/// TcpServer worker pool calls Handle concurrently, hence the atomic.
class EchoHandler : public RequestHandler {
 public:
  explicit EchoHandler(bool burn_cpu = false) : burn_cpu_(burn_cpu) {}

  Result<Bytes> Handle(const Bytes& request) override {
    if (!request.empty() && request[0] == 0xEE) {
      return Status::InvalidArgument("poison request");
    }
    if (burn_cpu_) {
      volatile double x = 0;
      for (int i = 0; i < 200000; ++i) x = x + i * 0.5;
    }
    handled_.fetch_add(1);
    return request;
  }

  int handled() const { return handled_.load(); }

 private:
  bool burn_cpu_;
  std::atomic<int> handled_{0};
};

TEST(LoopbackTransportTest, EchoAndByteAccounting) {
  EchoHandler handler;
  LoopbackTransport transport(&handler);

  const Bytes request = {1, 2, 3, 4, 5};
  auto response = transport.Call(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(*response, request);

  const TransportCosts& costs = transport.costs();
  EXPECT_EQ(costs.calls, 1u);
  EXPECT_EQ(costs.bytes_sent, 5u);
  EXPECT_EQ(costs.bytes_received, 5u);
  EXPECT_EQ(costs.TotalBytes(), 10u);
  EXPECT_GT(costs.communication_nanos, 0);
}

TEST(LoopbackTransportTest, ServerTimeIsMeasured) {
  EchoHandler handler(/*burn_cpu=*/true);
  LoopbackTransport transport(&handler);
  ASSERT_TRUE(transport.Call(Bytes(10)).ok());
  EXPECT_GT(transport.costs().server_nanos, 0);
}

TEST(LoopbackTransportTest, LinkModelScalesWithVolume) {
  EchoHandler handler;
  LinkModel slow;
  slow.latency_seconds = 0.0;
  slow.bandwidth_bytes_per_sec = 1e6;  // 1 MB/s
  LoopbackTransport transport(&handler, slow);

  ASSERT_TRUE(transport.Call(Bytes(1000)).ok());
  const int64_t small_comm = transport.costs().communication_nanos;
  transport.ResetCosts();
  ASSERT_TRUE(transport.Call(Bytes(100000)).ok());
  const int64_t large_comm = transport.costs().communication_nanos;
  EXPECT_GT(large_comm, small_comm * 50);
}

TEST(LoopbackTransportTest, HandlerErrorsPropagate) {
  EchoHandler handler;
  LoopbackTransport transport(&handler);
  auto response = transport.Call(Bytes{0xEE});
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
}

TEST(LoopbackTransportTest, ResetClearsCosts) {
  EchoHandler handler;
  LoopbackTransport transport(&handler);
  ASSERT_TRUE(transport.Call(Bytes(10)).ok());
  transport.ResetCosts();
  EXPECT_EQ(transport.costs().calls, 0u);
  EXPECT_EQ(transport.costs().TotalBytes(), 0u);
}

TEST(TcpTest, EndToEndEcho) {
  EchoHandler handler;
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_GT(server.port(), 0);

  auto transport = TcpTransport::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(transport.ok());

  for (int i = 0; i < 10; ++i) {
    Bytes request(100 + i, static_cast<uint8_t>(i));
    auto response = (*transport)->Call(request);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(*response, request);
  }
  EXPECT_EQ(handler.handled(), 10);
  EXPECT_EQ((*transport)->costs().calls, 10u);
  EXPECT_GT((*transport)->costs().communication_nanos, 0);
  server.Stop();
}

TEST(TcpTest, LargeMessageRoundTrip) {
  EchoHandler handler;
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start(0).ok());
  auto transport = TcpTransport::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(transport.ok());

  Bytes request(4 * 1024 * 1024);
  for (size_t i = 0; i < request.size(); ++i) {
    request[i] = static_cast<uint8_t>(i * 2654435761u >> 24);
  }
  auto response = (*transport)->Call(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(*response, request);
  server.Stop();
}

TEST(TcpTest, RemoteErrorsSurfaceAsStatus) {
  EchoHandler handler;
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start(0).ok());
  auto transport = TcpTransport::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(transport.ok());

  auto response = (*transport)->Call(Bytes{0xEE});
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kNetworkError);
  EXPECT_NE(response.status().message().find("poison"), std::string::npos);

  // The connection survives an application-level error.
  auto ok_response = (*transport)->Call(Bytes{1, 2});
  EXPECT_TRUE(ok_response.ok());
  server.Stop();
}

TEST(TcpTest, ConnectToClosedPortFails) {
  auto transport = TcpTransport::Connect("127.0.0.1", 1);
  EXPECT_FALSE(transport.ok());
}

TEST(TcpTest, RejectsInvalidAddress) {
  auto transport = TcpTransport::Connect("not-an-ip", 80);
  EXPECT_FALSE(transport.ok());
}

TEST(TcpTest, SequentialConnectionsAreServed) {
  EchoHandler handler;
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start(0).ok());
  for (int round = 0; round < 3; ++round) {
    auto transport = TcpTransport::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(transport.ok());
    auto response = (*transport)->Call(Bytes{9});
    ASSERT_TRUE(response.ok());
  }
  server.Stop();
}

// ---------------------------------------------------------------------------
// Pipelining, wire back-compat, backpressure, and shutdown races.
// ---------------------------------------------------------------------------

/// Request: u32 LE size; response: that many bytes. Lets a tiny request
/// provoke an arbitrarily large response (backpressure tests).
class InflateHandler : public RequestHandler {
 public:
  Result<Bytes> Handle(const Bytes& request) override {
    BinaryReader reader(request);
    SIMCLOUD_ASSIGN_OR_RETURN(uint32_t size, reader.ReadU32());
    return Bytes(size, 0xAB);
  }
};

Bytes InflateRequest(uint32_t size) {
  BinaryWriter writer;
  writer.WriteU32(size);
  return writer.TakeBuffer();
}

TEST(PipelineTest, LoopbackSubmitCollectAnyOrder) {
  EchoHandler handler;
  LoopbackTransport transport(&handler);
  std::vector<uint64_t> tickets;
  for (uint8_t i = 0; i < 10; ++i) {
    auto ticket = transport.Submit(Bytes(4, i));
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(*ticket);
  }
  for (int i = 9; i >= 0; --i) {
    auto response = transport.Collect(tickets[i]);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(*response, Bytes(4, static_cast<uint8_t>(i)));
  }
  // Double-collect is an error, not a hang.
  EXPECT_FALSE(transport.Collect(tickets[0]).ok());
}

TEST(PipelineTest, TcpSubmitCollectOutOfOrder) {
  EchoHandler handler;
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start(0).ok());
  auto transport = TcpTransport::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(transport.ok());

  constexpr int kInFlight = 32;
  std::vector<uint64_t> tickets(kInFlight);
  for (int i = 0; i < kInFlight; ++i) {
    auto ticket = (*transport)->Submit(Bytes(100, static_cast<uint8_t>(i)));
    ASSERT_TRUE(ticket.ok());
    tickets[i] = *ticket;
  }
  // Collect in reverse: every response must match its request's ticket,
  // not the arrival order.
  for (int i = kInFlight - 1; i >= 0; --i) {
    auto response = (*transport)->Collect(tickets[i]);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(*response, Bytes(100, static_cast<uint8_t>(i)));
  }
  EXPECT_EQ(handler.handled(), kInFlight);
  EXPECT_FALSE((*transport)->Collect(tickets[0]).ok());  // double collect
  server.Stop();
}

TEST(PipelineTest, TcpPipelineDeeperThanServerInFlightCap) {
  EchoHandler handler;
  TcpServerOptions options;
  options.max_in_flight = 4;  // frames beyond 4 wait in the input buffer
  TcpServer server(&handler, options);
  ASSERT_TRUE(server.Start(0).ok());
  auto transport = TcpTransport::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(transport.ok());

  std::vector<uint64_t> tickets;
  for (int i = 0; i < 64; ++i) {
    auto ticket = (*transport)->Submit(Bytes(64, static_cast<uint8_t>(i)));
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(*ticket);
  }
  for (int i = 0; i < 64; ++i) {
    auto response = (*transport)->Collect(tickets[i]);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(*response, Bytes(64, static_cast<uint8_t>(i)));
  }
  server.Stop();
}

TEST(PipelineTest, LegacyCallsInterleaveWithPipelinedTraffic) {
  EchoHandler handler;
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start(0).ok());
  auto transport = TcpTransport::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(transport.ok());

  auto first = (*transport)->Submit(Bytes{1, 1, 1});
  ASSERT_TRUE(first.ok());
  auto called = (*transport)->Call(Bytes{7, 7});  // legacy frame, id 0
  ASSERT_TRUE(called.ok());
  EXPECT_EQ(*called, (Bytes{7, 7}));
  auto second = (*transport)->Submit(Bytes{2, 2});
  ASSERT_TRUE(second.ok());
  auto second_response = (*transport)->Collect(*second);
  ASSERT_TRUE(second_response.ok());
  EXPECT_EQ(*second_response, (Bytes{2, 2}));
  auto first_response = (*transport)->Collect(*first);
  ASSERT_TRUE(first_response.ok());
  EXPECT_EQ(*first_response, (Bytes{1, 1, 1}));
  server.Stop();
}

TEST(TcpTest, LegacyWireFormatIsByteStable) {
  // A pre-pipelining client speaks raw frames: u32 LE length + body, and
  // expects u32 LE length + (u64 nanos, u8 ok, payload) back, in order.
  EchoHandler handler;
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start(0).ok());
  const int fd = RawConnect(server.port());

  const Bytes body = {42, 43, 44, 45, 46};
  for (int round = 0; round < 3; ++round) {
    uint8_t header[4] = {static_cast<uint8_t>(body.size()), 0, 0, 0};
    ASSERT_EQ(::send(fd, header, 4, 0), 4);
    ASSERT_EQ(::send(fd, body.data(), body.size(), 0),
              static_cast<ssize_t>(body.size()));

    auto frame = ReadAnyFrame(fd);
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ(frame->request_id, 0u) << "legacy request must get a legacy "
                                        "(unflagged) response frame";
    EXPECT_EQ(ResponsePayloadOf(frame->payload), body);
  }
  ::close(fd);
  server.Stop();
}

TEST(TcpTest, DribbledFramesAreReassembled) {
  // A frame arriving one byte at a time (torn across arbitrarily many
  // reads) must be reassembled, for both framings.
  EchoHandler handler;
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start(0).ok());
  const int fd = RawConnect(server.port());

  const Bytes body = {9, 8, 7, 6};
  Bytes legacy_frame = {4, 0, 0, 0, 9, 8, 7, 6};
  Bytes pipelined_frame = {4, 0, 0, 0x80, 0x2A, 0, 0, 0, 9, 8, 7, 6};
  for (const Bytes* frame : {&legacy_frame, &pipelined_frame}) {
    for (uint8_t byte : *frame) {
      ASSERT_EQ(::send(fd, &byte, 1, 0), 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    auto response = ReadAnyFrame(fd);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->request_id, frame == &legacy_frame ? 0u : 0x2Au);
    EXPECT_EQ(ResponsePayloadOf(response->payload), body);
  }
  ::close(fd);
  server.Stop();
}

TEST(TcpTest, SlowClientTripsBackpressureWithoutStallingOthers) {
  InflateHandler handler;
  TcpServerOptions options;
  options.max_output_queue_bytes = 256 * 1024;
  options.max_in_flight = 4;
  TcpServer server(&handler, options);
  ASSERT_TRUE(server.Start(0).ok());

  // The slow client asks for ~25 MB of responses with tiny requests and
  // never reads a byte. The server must park the connection at a bounded
  // output queue instead of buffering everything.
  const int slow_fd = RawConnect(server.port());
  constexpr uint32_t kResponseSize = 64 * 1024;
  constexpr int kRequests = 400;
  const Bytes request = InflateRequest(kResponseSize);
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(
        WritePipelinedFrame(slow_fd, static_cast<uint32_t>(i + 1), request)
            .ok());
  }

  // Wait for backpressure to trip (kernel socket buffers absorb the
  // first few MB; then the output queue fills to its bound).
  Stopwatch waited;
  while (server.reads_paused() == 0 && waited.ElapsedSeconds() < 20) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(server.reads_paused(), 0u) << "backpressure never engaged";
  // Bounded queue: the configured bound plus the <= max_in_flight
  // responses that were already being handled when it tripped.
  EXPECT_LE(server.peak_output_queue_bytes(),
            options.max_output_queue_bytes +
                (options.max_in_flight + 1) * (kResponseSize + 64));

  // A well-behaved connection is not stalled behind the slow one.
  auto transport = TcpTransport::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(transport.ok());
  Stopwatch latency;
  auto response = (*transport)->Call(InflateRequest(1024));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->size(), 1024u);
  EXPECT_LT(latency.ElapsedSeconds(), 5.0);

  ::close(slow_fd);  // discard the parked responses
  server.Stop();
}

TEST(TcpTest, BackpressureReleaseResumesParsingBufferedFrames) {
  // Regression: with a tiny output-queue bound, a pipelined burst lands
  // entirely in the server's input buffer while dispatch is blocked on
  // the bound. Once flushing drains the queue (the client DOES read
  // here), the engine must re-parse the buffered frames by itself — the
  // socket is already empty, so no epoll event will ever prompt it.
  InflateHandler handler;
  TcpServerOptions options;
  options.max_output_queue_bytes = 8 * 1024;
  options.max_in_flight = 4;
  TcpServer server(&handler, options);
  ASSERT_TRUE(server.Start(0).ok());
  auto transport = TcpTransport::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(transport.ok());

  constexpr int kRequests = 24;
  std::vector<uint64_t> tickets;
  for (int i = 0; i < kRequests; ++i) {
    auto ticket = (*transport)->Submit(InflateRequest(4096));
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(*ticket);
  }
  for (uint64_t ticket : tickets) {
    auto response = (*transport)->Collect(ticket);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->size(), 4096u);
  }
  EXPECT_EQ(server.frames_completed(), static_cast<uint64_t>(kRequests));
  server.Stop();
}

TEST(TcpTest, StopWithPipelinedRequestsInFlightJoinsCleanly) {
  // Regression for shutdown races: Stop() while the pipeline is full
  // must join the event loop and every worker without crashing or
  // hanging, and pending Collects must fail instead of blocking.
  for (int round = 0; round < 10; ++round) {
    EchoHandler handler(/*burn_cpu=*/round % 2 == 1);
    TcpServerOptions options;
    options.worker_threads = 2;
    auto server = std::make_unique<TcpServer>(&handler, options);
    ASSERT_TRUE(server->Start(0).ok());
    auto transport = TcpTransport::Connect("127.0.0.1", server->port());
    ASSERT_TRUE(transport.ok());

    std::vector<uint64_t> tickets;
    for (int i = 0; i < 16; ++i) {
      auto ticket = (*transport)->Submit(Bytes(256, static_cast<uint8_t>(i)));
      if (!ticket.ok()) break;
      tickets.push_back(*ticket);
    }
    if (round % 3 == 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    server->Stop();  // joins loop + workers; in-flight handlers finish

    // Every ticket either made it out before the shutdown or fails with
    // a transport error; none may hang.
    for (uint64_t ticket : tickets) {
      auto response = (*transport)->Collect(ticket);
      if (!response.ok()) {
        EXPECT_EQ(response.status().code(), StatusCode::kNetworkError);
      }
    }
  }
}

/// Holds every request long enough that a prompt server kill happens
/// with all responses still pending.
class SleepHandler : public RequestHandler {
 public:
  Result<Bytes> Handle(const Bytes& request) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    return request;
  }
};

TEST(TcpTest, ServerKillFailsAllParkedCollectsPromptly) {
  // Regression: when the stream dies (server killed mid-pipeline), EVERY
  // parked Collect must fail promptly with the sticky stream status —
  // including collectors that are not the elected reader and would
  // otherwise sit in the condition variable until their own I/O noticed.
  SleepHandler handler;
  TcpServerOptions options;
  options.worker_threads = 2;
  TcpServer server(&handler, options);
  ASSERT_TRUE(server.Start(0).ok());
  auto transport = TcpTransport::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(transport.ok());

  constexpr int kCollectors = 8;
  std::vector<uint64_t> tickets(kCollectors);
  for (int i = 0; i < kCollectors; ++i) {
    auto ticket = (*transport)->Submit(Bytes(512, static_cast<uint8_t>(i)));
    ASSERT_TRUE(ticket.ok());
    tickets[i] = *ticket;
  }
  std::atomic<int> completed{0};
  std::vector<std::thread> collectors;
  collectors.reserve(kCollectors);
  for (int i = 0; i < kCollectors; ++i) {
    collectors.emplace_back([&, i] {
      auto response = (*transport)->Collect(tickets[i]);
      if (!response.ok()) {
        EXPECT_EQ(response.status().code(), StatusCode::kNetworkError);
      }
      completed.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  server.Stop();

  // All collectors must return well before any per-collector I/O timeout
  // could: the first reader to see EOF broadcasts the broken status.
  Stopwatch waited;
  while (completed.load() < kCollectors && waited.ElapsedSeconds() < 10) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(completed.load(), kCollectors) << "parked Collects hung";
  for (std::thread& thread : collectors) thread.join();
  EXPECT_LT(waited.ElapsedSeconds(), 5.0);

  // The failure is sticky: later pipelined use reports it immediately.
  EXPECT_FALSE((*transport)->stream_status().ok());
  auto late = (*transport)->Submit(Bytes{1});
  if (late.ok()) {
    EXPECT_FALSE((*transport)->Collect(*late).ok());
  }
}

TEST(TcpTest, AbortWakesCollectorParkedInRecv) {
  // Regression: Abort() from another thread must wake a collector that
  // is blocked inside recv() as the elected reader (only a socket
  // shutdown can — the condition variable does not cover recv).
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 1), 0);
  socklen_t addr_len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                          &addr_len),
            0);
  const uint16_t port = ntohs(addr.sin_port);

  // A "server" that accepts and then never answers.
  std::thread acceptor([listen_fd] {
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn >= 0) {
      uint8_t sink[256];
      while (::recv(conn, sink, sizeof(sink), 0) > 0) {
      }
      ::close(conn);
    }
  });

  auto transport = TcpTransport::Connect("127.0.0.1", port);
  ASSERT_TRUE(transport.ok());
  auto ticket = (*transport)->Submit(Bytes{1, 2, 3});
  ASSERT_TRUE(ticket.ok());

  std::atomic<bool> collected{false};
  std::thread collector([&] {
    auto response = (*transport)->Collect(*ticket);
    EXPECT_FALSE(response.ok());
    collected.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_FALSE(collected.load());  // parked in recv, no response coming

  (*transport)->Abort(Status::NetworkError("test abort"));
  Stopwatch waited;
  while (!collected.load() && waited.ElapsedSeconds() < 10) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(collected.load()) << "Abort() left the reader stuck in recv";
  EXPECT_LT(waited.ElapsedSeconds(), 5.0);
  EXPECT_FALSE((*transport)->stream_status().ok());
  collector.join();
  ::close(listen_fd);
  acceptor.join();
}

TEST(TcpTest, CollectForTimesOutWithoutPoisoningTheStream) {
  // A bounded Collect that expires leaves the ticket outstanding and the
  // stream healthy: a later unbounded Collect still gets the response.
  EchoHandler handler(/*burn_cpu=*/true);
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start(0).ok());
  auto transport = TcpTransport::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(transport.ok());

  auto ticket = (*transport)->Submit(Bytes(64, 7));
  ASSERT_TRUE(ticket.ok());
  // A 0ms deadline expires immediately (the response cannot have landed
  // through a burn-cpu handler yet).
  auto expired = (*transport)->CollectFor(*ticket, 0);
  if (!expired.ok()) {
    EXPECT_EQ(expired.status().code(), StatusCode::kDeadlineExceeded);
    EXPECT_TRUE((*transport)->stream_status().ok());
    auto retried = (*transport)->Collect(*ticket);
    ASSERT_TRUE(retried.ok());
    EXPECT_EQ(*retried, Bytes(64, 7));
  }
  server.Stop();
}

TEST(TcpTest, ManyIdleConnectionsAreCheap) {
  EchoHandler handler;
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start(0).ok());

  std::vector<std::unique_ptr<TcpTransport>> idle;
  for (int i = 0; i < 128; ++i) {
    auto transport = TcpTransport::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(transport.ok());
    idle.push_back(std::move(*transport));
  }
  // Give the accept loop a moment, then verify they are all live and a
  // request on any of them still works: the engine serves them with its
  // fixed thread pool (1 loop + worker_threads), not a thread each.
  Stopwatch waited;
  while (server.active_connections() < idle.size() &&
         waited.ElapsedSeconds() < 10) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.active_connections(), idle.size());
  EXPECT_EQ(server.connections_accepted(), idle.size());
  auto response = idle[97]->Call(Bytes{5, 5});
  ASSERT_TRUE(response.ok());
  server.Stop();
}

}  // namespace
}  // namespace net
}  // namespace simcloud
