// Data-IO tests: CSV and FASTA loaders against hand-written files,
// save/load round trips, and the error paths (malformed rows, ragged
// matrices, missing files, empty inputs).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/rng.h"
#include "data/io.h"
#include "data/synthetic.h"

namespace simcloud {
namespace data {
namespace {

std::string WriteTempFile(const std::string& name,
                          const std::string& contents) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream file(path, std::ios::trunc);
  file << contents;
  return path;
}

// ------------------------------------------------------------------- CSV

TEST(CsvTest, LoadsPlainMatrix) {
  const std::string path = WriteTempFile("plain.csv",
                                         "1.5,2.5,3.5\n"
                                         "4,5,6\n"
                                         "-1,0,2e2\n");
  auto objects = LoadVectorsCsv(path);
  ASSERT_TRUE(objects.ok()) << objects.status().ToString();
  ASSERT_EQ(objects->size(), 3u);
  EXPECT_EQ((*objects)[0].id(), 0u);
  EXPECT_EQ((*objects)[2].id(), 2u);
  EXPECT_FLOAT_EQ((*objects)[0].values()[0], 1.5f);
  EXPECT_FLOAT_EQ((*objects)[2].values()[2], 200.0f);
  std::remove(path.c_str());
}

TEST(CsvTest, HonorsHeaderCommentsAndTabs) {
  const std::string path = WriteTempFile("fancy.tsv",
                                         "gene\tcond1\tcond2\n"
                                         "# a comment line\n"
                                         "g1\t1\t2\n"
                                         "g2\t3\t4\n");
  CsvOptions options;
  options.delimiter = '\t';
  options.skip_lines = 1;
  options.id_column = 0;  // non-numeric gene names -> row-order ids
  auto objects = LoadVectorsCsv(path, options);
  ASSERT_TRUE(objects.ok()) << objects.status().ToString();
  ASSERT_EQ(objects->size(), 2u);
  EXPECT_EQ((*objects)[0].dimension(), 2u);
  EXPECT_FLOAT_EQ((*objects)[1].values()[1], 4.0f);
  std::remove(path.c_str());
}

TEST(CsvTest, NumericIdColumnIsHonored) {
  const std::string path = WriteTempFile("ids.csv",
                                         "100,1,2\n"
                                         "200,3,4\n");
  CsvOptions options;
  options.id_column = 0;
  auto objects = LoadVectorsCsv(path, options);
  ASSERT_TRUE(objects.ok());
  EXPECT_EQ((*objects)[0].id(), 100u);
  EXPECT_EQ((*objects)[1].id(), 200u);
  EXPECT_EQ((*objects)[0].dimension(), 2u);
  std::remove(path.c_str());
}

TEST(CsvTest, RejectsMalformedInput) {
  const std::string ragged = WriteTempFile("ragged.csv", "1,2,3\n4,5\n");
  EXPECT_FALSE(LoadVectorsCsv(ragged).ok());
  std::remove(ragged.c_str());

  const std::string text = WriteTempFile("text.csv", "1,2\nfoo,bar\n");
  EXPECT_FALSE(LoadVectorsCsv(text).ok());
  std::remove(text.c_str());

  const std::string empty = WriteTempFile("empty.csv", "");
  EXPECT_FALSE(LoadVectorsCsv(empty).ok());
  std::remove(empty.c_str());

  EXPECT_FALSE(LoadVectorsCsv("/nonexistent/file.csv").ok());
}

TEST(CsvTest, SaveLoadRoundTrip) {
  MixtureOptions options;
  options.num_objects = 50;
  options.dimension = 7;
  options.seed = 5;
  const auto original = MakeGaussianMixture(options);

  const std::string path = ::testing::TempDir() + "/roundtrip.csv";
  ASSERT_TRUE(SaveVectorsCsv(original, path).ok());
  CsvOptions load_options;
  load_options.id_column = 0;
  auto loaded = LoadVectorsCsv(path, load_options);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*loaded)[i].id(), original[i].id());
    ASSERT_EQ((*loaded)[i].dimension(), original[i].dimension());
    for (size_t d = 0; d < original[i].dimension(); ++d) {
      EXPECT_NEAR((*loaded)[i].values()[d], original[i].values()[d], 1e-3)
          << "row " << i << " dim " << d;
    }
  }
  std::remove(path.c_str());
}

// ----------------------------------------------------------------- FASTA

TEST(FastaTest, LoadsMultiRecordFile) {
  const std::string path = WriteTempFile("genes.fasta",
                                         ">gene one\n"
                                         "ACGT\n"
                                         "TTAA\n"
                                         "\n"
                                         ">gene two | meta\n"
                                         "GGGG\n");
  auto sequences = LoadFasta(path);
  ASSERT_TRUE(sequences.ok()) << sequences.status().ToString();
  ASSERT_EQ(sequences->size(), 2u);
  EXPECT_EQ((*sequences)[0].sequence(), "ACGTTTAA");
  EXPECT_EQ((*sequences)[1].sequence(), "GGGG");
  EXPECT_EQ((*sequences)[0].id(), 0u);
  EXPECT_EQ((*sequences)[1].id(), 1u);
  std::remove(path.c_str());
}

TEST(FastaTest, HandlesWindowsLineEndings) {
  const std::string path =
      WriteTempFile("crlf.fasta", ">a\r\nAC\r\nGT\r\n");
  auto sequences = LoadFasta(path);
  ASSERT_TRUE(sequences.ok());
  EXPECT_EQ((*sequences)[0].sequence(), "ACGT");
  std::remove(path.c_str());
}

TEST(FastaTest, RejectsMalformedInput) {
  const std::string headerless =
      WriteTempFile("headerless.fasta", "ACGT\n");
  EXPECT_FALSE(LoadFasta(headerless).ok());
  std::remove(headerless.c_str());

  const std::string empty = WriteTempFile("empty.fasta", "");
  EXPECT_FALSE(LoadFasta(empty).ok());
  std::remove(empty.c_str());

  EXPECT_FALSE(LoadFasta("/nonexistent/genes.fasta").ok());
}

TEST(FastaTest, SaveLoadRoundTripWithLongSequences) {
  Rng rng(9);
  std::vector<metric::SequenceObject> original;
  static const char kBases[] = {'A', 'C', 'G', 'T'};
  for (uint64_t i = 0; i < 10; ++i) {
    std::string s(50 + rng.NextBounded(200), 'A');
    for (auto& c : s) c = kBases[rng.NextBounded(4)];
    original.emplace_back(i, std::move(s));
  }
  const std::string path = ::testing::TempDir() + "/roundtrip.fasta";
  ASSERT_TRUE(SaveFasta(original, path).ok());
  auto loaded = LoadFasta(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*loaded)[i].sequence(), original[i].sequence()) << i;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace data
}  // namespace simcloud
