// Concurrency soak for the pipelined transport: several clients keep
// multiple query batches in flight on single TCP connections while a
// churn client interleaves kDeleteBatch and kCompact — all against one
// epoll server (memory and disk backends, single-node and 3-shard).
//
// The dataset is split into a STABLE region and a CHURN region placed
// ~500 units away in every dimension. Only churn objects are ever
// deleted, and every verified range query uses a radius far below the
// region separation, so its exact answer is a fixed oracle no matter how
// the churn interleaves. Each collected response must therefore
//   * resolve against the ticket of ITS request (a response delivered to
//     the wrong request id would answer the wrong query), and
//   * match the precomputed brute-force oracle id-for-id.
// Pipelined k-NN batches are additionally checked structurally: every
// returned distance must equal the true distance between THIS request's
// query and the returned id — a cross-wired response cannot pass.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "data/synthetic.h"
#include "metric/ground_truth.h"
#include "net/tcp.h"
#include "secure/client.h"
#include "secure/server.h"
#include "secure/sharded_server.h"

namespace simcloud {
namespace secure {
namespace {

using metric::VectorObject;

struct PipelineConfig {
  mindex::StorageKind storage_kind;
  size_t num_shards;
};

std::string ConfigName(const PipelineConfig& config) {
  std::string name = config.storage_kind == mindex::StorageKind::kMemory
                         ? "memory"
                         : "disk";
  return name + "_shards" + std::to_string(config.num_shards);
}

class PipelineSoakTest : public ::testing::TestWithParam<PipelineConfig> {};

/// CI runs this soak in both channel policies: SIMCLOUD_CHANNEL_POLICY=
/// secure secures every connection (PSK handshake + AEAD records, with
/// an aggressive rekey budget so the soak crosses epoch boundaries);
/// unset/anything else is the plaintext wire.
net::ChannelPolicy PolicyFromEnv() {
  const char* env = std::getenv("SIMCLOUD_CHANNEL_POLICY");
  return env != nullptr && std::string(env) == "secure"
             ? net::ChannelPolicy::kSecure
             : net::ChannelPolicy::kPlaintext;
}

net::SecureChannelOptions SoakChannelOptions() {
  net::SecureChannelOptions options;
  options.psk = Bytes(32, 0x77);
  options.rekey_after_records = 64;  // many rekeys over the soak
  return options;
}

constexpr size_t kStableObjects = 400;
constexpr size_t kChurnObjects = 240;
constexpr size_t kDim = 8;
constexpr float kChurnOffset = 500.0f;
constexpr double kQueryRadius = 2.5;  // << the ~1400 region separation

std::vector<VectorObject> MakeStable(uint64_t seed) {
  data::MixtureOptions options;
  options.num_objects = kStableObjects;
  options.dimension = kDim;
  options.num_clusters = 5;
  options.seed = seed;
  return data::MakeGaussianMixture(options);
}

std::vector<VectorObject> MakeChurn(uint64_t seed) {
  data::MixtureOptions options;
  options.num_objects = kChurnObjects;
  options.dimension = kDim;
  options.num_clusters = 3;
  options.seed = seed;
  std::vector<VectorObject> objects = data::MakeGaussianMixture(options);
  std::vector<VectorObject> shifted;
  shifted.reserve(objects.size());
  for (const VectorObject& object : objects) {
    std::vector<float> values = object.values();
    for (float& v : values) v += kChurnOffset;
    shifted.emplace_back(object.id() + 1000000, std::move(values));
  }
  return shifted;
}

TEST_P(PipelineSoakTest, PipelinedBatchesMatchOracleUnderChurn) {
  const PipelineConfig config = GetParam();
  const std::string tag = ConfigName(config);

  const std::vector<VectorObject> stable = MakeStable(901);
  const std::vector<VectorObject> churn = MakeChurn(902);
  std::vector<VectorObject> all = stable;
  all.insert(all.end(), churn.begin(), churn.end());
  auto metric = std::make_shared<metric::L2Distance>();
  metric::Dataset stable_set("stable", stable, metric);

  auto pivots = mindex::PivotSet::SelectRandom(all, 8, 903);
  ASSERT_TRUE(pivots.ok());
  auto key = SecretKey::Create(std::move(pivots).value(), Bytes(16, 0x71));
  ASSERT_TRUE(key.ok());

  mindex::MIndexOptions options;
  options.num_pivots = 8;
  options.bucket_capacity = 25;
  options.max_level = 4;
  options.compaction_trigger = 0.4;  // automatic compactions mid-churn
  options.cache_bytes = 256 * 1024;
  std::vector<std::string> disk_paths;
  if (config.storage_kind == mindex::StorageKind::kDisk) {
    options.storage_kind = mindex::StorageKind::kDisk;
    options.disk_path =
        testing::TempDir() + "/simcloud_pipeline_" + tag + ".bucket";
    if (config.num_shards <= 1) {
      disk_paths.push_back(options.disk_path);
    } else {
      for (size_t i = 0; i < config.num_shards; ++i) {
        disk_paths.push_back(options.disk_path + "." + std::to_string(i));
      }
    }
  }

  std::unique_ptr<net::RequestHandler> handler;
  std::vector<const mindex::MIndex*> indexes;
  if (config.num_shards <= 1) {
    auto server = EncryptedMIndexServer::Create(options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    indexes.push_back(&(*server)->index());
    handler = std::move(*server);
  } else {
    auto server = ShardedServer::Create(options, config.num_shards);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    for (size_t i = 0; i < config.num_shards; ++i) {
      indexes.push_back(&(*server)->shard(i).index());
    }
    handler = std::move(*server);
  }

  const net::ChannelPolicy policy = PolicyFromEnv();
  net::TcpServerOptions server_options;
  server_options.channel_policy = policy;
  if (policy == net::ChannelPolicy::kSecure) {
    server_options.secure_channel = SoakChannelOptions();
  }
  net::TcpServer server(handler.get(), server_options);
  ASSERT_TRUE(server.Start(0).ok());
  auto connect = [&server, policy] {
    return net::TcpTransport::Connect("127.0.0.1", server.port(), policy,
                                      SoakChannelOptions());
  };

  {
    auto transport = connect();
    ASSERT_TRUE(transport.ok());
    EncryptionClient owner(*key, metric, transport->get());
    ASSERT_TRUE(owner.InsertBulk(all, InsertStrategy::kPrecise, 200).ok());
  }

  // Fixed query set + brute-force oracle over the stable region.
  constexpr size_t kQueryPool = 48;
  Rng query_rng(904);
  std::vector<VectorObject> queries;
  std::vector<metric::NeighborList> oracle;
  std::map<metric::ObjectId, const VectorObject*> by_id;
  for (const VectorObject& object : all) by_id.emplace(object.id(), &object);
  for (size_t i = 0; i < kQueryPool; ++i) {
    queries.push_back(stable[query_rng.NextBounded(stable.size())]);
    oracle.push_back(
        metric::LinearRangeSearch(stable_set, queries.back(), kQueryRadius));
  }

  constexpr int kClients = 3;
  constexpr int kRounds = 6;
  constexpr int kDepth = 3;   // pipelined batches in flight per client
  constexpr int kBatch = 6;   // queries per batch
  std::atomic<int> failures{0};
  std::atomic<bool> queriers_done{false};

  auto fail = [&](const std::string& why) {
    failures.fetch_add(1);
    ADD_FAILURE() << why;
  };

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto transport = connect();
      if (!transport.ok()) return fail("connect failed");
      EncryptionClient client(*key, metric, transport->get());
      Rng rng(910 + c);
      for (int round = 0; round < kRounds; ++round) {
        // Submit kDepth range batches (recording which oracle entries
        // each asks for), plus one k-NN batch, before collecting any.
        std::vector<std::vector<size_t>> picks(kDepth);
        std::vector<PendingQueryBatch> pending(kDepth);
        for (int d = 0; d < kDepth; ++d) {
          std::vector<VectorObject> batch;
          for (int q = 0; q < kBatch; ++q) {
            picks[d].push_back(rng.NextBounded(kQueryPool));
            batch.push_back(queries[picks[d].back()]);
          }
          auto submitted = client.SubmitRangeSearchBatch(batch, kQueryRadius);
          if (!submitted.ok()) return fail("submit failed");
          pending[d] = std::move(*submitted);
        }
        std::vector<VectorObject> knn_queries;
        for (int q = 0; q < kBatch; ++q) {
          knn_queries.push_back(queries[rng.NextBounded(kQueryPool)]);
        }
        auto knn_pending = client.SubmitApproxKnnBatch(knn_queries, 3, 40);
        if (!knn_pending.ok()) return fail("knn submit failed");

        // Collect in a rotated order: responses must resolve by ticket.
        for (int i = 0; i < kDepth; ++i) {
          const int d = (i + round) % kDepth;
          auto answers = client.CollectRangeSearchBatch(&pending[d]);
          if (!answers.ok()) return fail("collect failed");
          for (int q = 0; q < kBatch; ++q) {
            const metric::NeighborList& expected = oracle[picks[d][q]];
            const metric::NeighborList& got = (*answers)[q];
            if (got.size() != expected.size()) {
              return fail("range answer size mismatch vs oracle");
            }
            for (size_t n = 0; n < expected.size(); ++n) {
              if (got[n].id != expected[n].id) {
                return fail("range answer ids diverge from oracle");
              }
            }
          }
        }
        auto knn_answers = client.CollectApproxKnnBatch(&*knn_pending);
        if (!knn_answers.ok()) return fail("knn collect failed");
        for (int q = 0; q < kBatch; ++q) {
          const metric::NeighborList& got = (*knn_answers)[q];
          if (got.size() > 3) return fail("knn answer larger than k");
          for (size_t n = 0; n < got.size(); ++n) {
            auto it = by_id.find(got[n].id);
            if (it == by_id.end()) return fail("knn returned unknown id");
            const double true_distance =
                metric->Distance(knn_queries[q], *it->second);
            if (got[n].distance != true_distance) {
              return fail("knn distance does not match this query — "
                          "response was cross-wired to another request");
            }
            if (n > 0 && got[n].distance < got[n - 1].distance) {
              return fail("knn answer not sorted");
            }
          }
        }
      }
    });
  }

  // Churn client: batched deletes (pipelined on their own connection)
  // interleaved with explicit compactions while the queriers run.
  std::thread churner([&] {
    auto transport = connect();
    if (!transport.ok()) return fail("churn connect failed");
    EncryptionClient client(*key, metric, transport->get());
    constexpr size_t kSlice = 40;
    size_t next = 0;
    int round = 0;
    while (!queriers_done.load() && next + kSlice <= churn.size()) {
      std::vector<VectorObject> slice(churn.begin() + next,
                                      churn.begin() + next + kSlice);
      next += kSlice;
      auto pending = client.SubmitDeleteBatch(slice);
      if (!pending.ok()) return fail("delete submit failed");
      Status deleted = client.CollectDeleteBatch(&*pending);
      if (!deleted.ok()) return fail("delete collect failed");
      if (++round % 2 == 0) {
        auto report = client.Compact(/*force=*/true);
        if (!report.ok()) return fail("compact failed");
      }
      if (!client.Ping().ok()) return fail("ping failed");
    }
  });

  size_t deleted_count = 0;
  for (auto& thread : clients) thread.join();
  queriers_done.store(true);
  churner.join();
  ASSERT_EQ(failures.load(), 0);

  // The dust settles: object count equals stable + surviving churn, and
  // every shard's tree invariants hold.
  {
    auto transport = connect();
    ASSERT_TRUE(transport.ok());
    EncryptionClient client(*key, metric, transport->get());
    auto stats = client.GetServerStats();
    ASSERT_TRUE(stats.ok());
    uint64_t live = 0;
    for (const auto* index : indexes) live += index->size();
    deleted_count = stable.size() + churn.size() - live;
    EXPECT_EQ(stats->object_count, live);
    EXPECT_LE(deleted_count, churn.size());

    // Post-churn answers still equal the oracle, synchronously.
    auto final_answers = client.RangeSearchBatch(
        std::vector<VectorObject>(queries.begin(), queries.begin() + 8),
        kQueryRadius);
    ASSERT_TRUE(final_answers.ok());
    for (size_t q = 0; q < 8; ++q) {
      ASSERT_EQ((*final_answers)[q].size(), oracle[q].size());
      for (size_t n = 0; n < oracle[q].size(); ++n) {
        EXPECT_EQ((*final_answers)[q][n].id, oracle[q][n].id);
      }
    }
  }
  for (const auto* index : indexes) {
    EXPECT_TRUE(index->CheckInvariants().ok());
  }

  server.Stop();
  for (const std::string& path : disk_paths) {
    std::remove(path.c_str());
    std::remove((path + ".compact").c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Deployments, PipelineSoakTest,
    ::testing::Values(PipelineConfig{mindex::StorageKind::kMemory, 1},
                      PipelineConfig{mindex::StorageKind::kMemory, 3},
                      PipelineConfig{mindex::StorageKind::kDisk, 1},
                      PipelineConfig{mindex::StorageKind::kDisk, 3}),
    [](const ::testing::TestParamInfo<PipelineConfig>& info) {
      return ConfigName(info.param);
    });

}  // namespace
}  // namespace secure
}  // namespace simcloud
