// Metric core tests: distance values, metric postulates as properties,
// neighbor/recall semantics, linear-scan ground truth, and dataset I/O.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "data/synthetic.h"
#include "metric/dataset.h"
#include "metric/distance.h"
#include "metric/ground_truth.h"
#include "metric/neighbor.h"

namespace simcloud {
namespace metric {
namespace {

VectorObject Obj(ObjectId id, std::vector<float> values) {
  return VectorObject(id, std::move(values));
}

// ------------------------------------------------------------- Distances

TEST(DistanceTest, L1KnownValues) {
  L1Distance d;
  EXPECT_DOUBLE_EQ(d.Distance(Obj(0, {0, 0}), Obj(1, {3, 4})), 7.0);
  EXPECT_DOUBLE_EQ(d.Distance(Obj(0, {1, -1}), Obj(1, {-1, 1})), 4.0);
  EXPECT_DOUBLE_EQ(d.Distance(Obj(0, {5}), Obj(1, {5})), 0.0);
}

TEST(DistanceTest, L2KnownValues) {
  L2Distance d;
  EXPECT_DOUBLE_EQ(d.Distance(Obj(0, {0, 0}), Obj(1, {3, 4})), 5.0);
  EXPECT_DOUBLE_EQ(d.Distance(Obj(0, {1, 1, 1, 1}), Obj(1, {0, 0, 0, 0})),
                   2.0);
}

TEST(DistanceTest, LInfKnownValues) {
  LInfDistance d;
  EXPECT_DOUBLE_EQ(d.Distance(Obj(0, {0, 0}), Obj(1, {3, 4})), 4.0);
}

TEST(DistanceTest, LpInterpolatesBetweenL1AndLinf) {
  const VectorObject a = Obj(0, {0, 0}), b = Obj(1, {3, 4});
  LpDistance p1(1.0), p2(2.0), p3(3.0);
  L1Distance l1;
  L2Distance l2;
  EXPECT_NEAR(p1.Distance(a, b), l1.Distance(a, b), 1e-9);
  EXPECT_NEAR(p2.Distance(a, b), l2.Distance(a, b), 1e-9);
  // Lp is non-increasing in p.
  EXPECT_LE(p3.Distance(a, b), p2.Distance(a, b));
  EXPECT_LE(p2.Distance(a, b), p1.Distance(a, b));
}

TEST(DistanceTest, SegmentedValidatesParameters) {
  EXPECT_FALSE(SegmentedLpDistance::Create({}).ok());
  EXPECT_FALSE(SegmentedLpDistance::Create({{0, 1.0, 1.0}}).ok());
  EXPECT_FALSE(SegmentedLpDistance::Create({{4, 0.5, 1.0}}).ok());
  EXPECT_FALSE(SegmentedLpDistance::Create({{4, 1.0, -1.0}}).ok());
  EXPECT_TRUE(SegmentedLpDistance::Create({{4, 1.0, 1.0}}).ok());
}

TEST(DistanceTest, SegmentedMatchesManualCombination) {
  auto seg = SegmentedLpDistance::Create({{2, 1.0, 2.0}, {2, 2.0, 0.5}});
  ASSERT_TRUE(seg.ok());
  const VectorObject a = Obj(0, {1, 2, 0, 0}), b = Obj(1, {3, 1, 3, 4});
  // L1 on dims {0,1}: |1-3|+|2-1| = 3; L2 on dims {2,3}: 5.
  EXPECT_NEAR(seg->Distance(a, b), 2.0 * 3 + 0.5 * 5, 1e-9);
  EXPECT_EQ(seg->TotalDimension(), 4u);
}

TEST(DistanceTest, EvaluationCounterCounts) {
  L2Distance d;
  EXPECT_EQ(d.evaluation_count(), 0u);
  d.Distance(Obj(0, {1}), Obj(1, {2}));
  d.Distance(Obj(0, {1}), Obj(1, {2}));
  EXPECT_EQ(d.evaluation_count(), 2u);
  d.ResetCounter();
  EXPECT_EQ(d.evaluation_count(), 0u);
}

TEST(DistanceTest, FactoryByName) {
  EXPECT_TRUE(MakeDistanceByName("L1").ok());
  EXPECT_TRUE(MakeDistanceByName("L2").ok());
  EXPECT_TRUE(MakeDistanceByName("Linf").ok());
  auto lp = MakeDistanceByName("Lp:3.0");
  ASSERT_TRUE(lp.ok());
  EXPECT_EQ((*lp)->Name().rfind("Lp:", 0), 0u);
  EXPECT_FALSE(MakeDistanceByName("cosine").ok());
  EXPECT_FALSE(MakeDistanceByName("Lp:0.5").ok());
}

// Property suite: metric postulates on random vectors, for every distance.
struct MetricCase {
  std::string name;
  std::shared_ptr<DistanceFunction> distance;
  size_t dimension;
};

class MetricPostulatesTest : public ::testing::TestWithParam<int> {
 protected:
  static std::vector<MetricCase> Cases() {
    std::vector<MetricCase> cases;
    cases.push_back({"L1", std::make_shared<L1Distance>(), 8});
    cases.push_back({"L2", std::make_shared<L2Distance>(), 8});
    cases.push_back({"Linf", std::make_shared<LInfDistance>(), 8});
    cases.push_back({"Lp2.5", std::make_shared<LpDistance>(2.5), 8});
    auto seg = SegmentedLpDistance::Create(
        {{3, 1.0, 1.5}, {3, 2.0, 0.5}, {2, 1.0, 2.0}});
    cases.push_back({"segmented",
                     std::make_shared<SegmentedLpDistance>(
                         std::move(seg).value()),
                     8});
    cases.push_back({"cophir", data::MakeCophirDistance(), 280});
    return cases;
  }
};

TEST_P(MetricPostulatesTest, HoldOnRandomVectors) {
  Rng rng(1000 + GetParam());
  for (const auto& test_case : MetricPostulatesTest::Cases()) {
    const auto& d = *test_case.distance;
    auto random_obj = [&](ObjectId id) {
      std::vector<float> v(test_case.dimension);
      for (auto& x : v) {
        x = static_cast<float>(rng.NextUniform(-100.0, 100.0));
      }
      return VectorObject(id, std::move(v));
    };
    for (int iter = 0; iter < 20; ++iter) {
      const VectorObject a = random_obj(0), b = random_obj(1),
                         c = random_obj(2);
      const double ab = d.Distance(a, b);
      const double ba = d.Distance(b, a);
      const double ac = d.Distance(a, c);
      const double cb = d.Distance(c, b);
      const double aa = d.Distance(a, a);
      // Non-negativity, identity, symmetry, triangle inequality.
      EXPECT_GE(ab, 0.0) << test_case.name;
      EXPECT_NEAR(aa, 0.0, 1e-9) << test_case.name;
      EXPECT_NEAR(ab, ba, 1e-9) << test_case.name;
      EXPECT_LE(ab, ac + cb + 1e-6) << test_case.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricPostulatesTest,
                         ::testing::Range(0, 5));

TEST(AngularDistanceTest, KnownAngles) {
  AngularDistance d;
  const VectorObject x(0, {1.0f, 0.0f});
  const VectorObject y(1, {0.0f, 1.0f});
  const VectorObject neg_x(2, {-1.0f, 0.0f});
  const VectorObject diag(3, {1.0f, 1.0f});
  EXPECT_NEAR(d.Distance(x, y), M_PI / 2, 1e-9);
  EXPECT_NEAR(d.Distance(x, neg_x), M_PI, 1e-9);
  EXPECT_NEAR(d.Distance(x, diag), M_PI / 4, 1e-6);
  EXPECT_NEAR(d.Distance(x, x), 0.0, 1e-9);
  // Scale invariance (metric on directions).
  const VectorObject x2(4, {7.5f, 0.0f});
  EXPECT_NEAR(d.Distance(x, x2), 0.0, 1e-9);
  // Zero vector maps to the maximal angle instead of NaN.
  const VectorObject zero(5, {0.0f, 0.0f});
  EXPECT_NEAR(d.Distance(x, zero), M_PI, 1e-9);
}

TEST(AngularDistanceTest, MetricPostulatesOnSphere) {
  AngularDistance d;
  Rng rng(321);
  auto random_direction = [&](ObjectId id) {
    std::vector<float> v(12);
    for (auto& x : v) x = static_cast<float>(rng.NextGaussian());
    return VectorObject(id, std::move(v));
  };
  for (int iter = 0; iter < 100; ++iter) {
    const VectorObject a = random_direction(0);
    const VectorObject b = random_direction(1);
    const VectorObject c = random_direction(2);
    const double ab = d.Distance(a, b);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, M_PI + 1e-9);
    EXPECT_NEAR(ab, d.Distance(b, a), 1e-9);
    EXPECT_LE(ab, d.Distance(a, c) + d.Distance(c, b) + 1e-6);
  }
}

TEST(DistanceFactoryTest, MakesEveryNamedDistance) {
  for (const char* name : {"L1", "L2", "Linf", "angular", "Lp:3"}) {
    auto distance = MakeDistanceByName(name);
    EXPECT_TRUE(distance.ok()) << name;
  }
  EXPECT_FALSE(MakeDistanceByName("Lp:0.5").ok());
  EXPECT_FALSE(MakeDistanceByName("hamming?").ok());
}

// ------------------------------------------------------ Neighbors/recall

TEST(NeighborTest, OrderingByDistanceThenId) {
  Neighbor a{5, 1.0}, b{2, 1.0}, c{9, 0.5};
  EXPECT_TRUE(c < a);
  EXPECT_TRUE(b < a);  // tie on distance, smaller id first
  EXPECT_FALSE(a < b);
}

TEST(NeighborTest, RecallMatchesPaperDefinition) {
  NeighborList exact = {{1, 0.1}, {2, 0.2}, {3, 0.3}, {4, 0.4}};
  NeighborList answer = {{1, 0.1}, {3, 0.3}};
  EXPECT_DOUBLE_EQ(RecallPercent(answer, exact), 50.0);
  EXPECT_DOUBLE_EQ(RecallPercent(exact, exact), 100.0);
  EXPECT_DOUBLE_EQ(RecallPercent({}, exact), 0.0);
  EXPECT_DOUBLE_EQ(RecallPercent({}, {}), 100.0);
}

// ---------------------------------------------------------- Ground truth

TEST(GroundTruthTest, RangeFindsExactlyWithinRadius) {
  std::vector<VectorObject> objects = {
      Obj(0, {0, 0}), Obj(1, {1, 0}), Obj(2, {0, 2}), Obj(3, {5, 5})};
  L2Distance d;
  auto result = LinearRangeSearch(objects, d, Obj(99, {0, 0}), 2.0);
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0].id, 0u);
  EXPECT_EQ(result[1].id, 1u);
  EXPECT_EQ(result[2].id, 2u);
  EXPECT_DOUBLE_EQ(result[2].distance, 2.0);  // boundary is inclusive
}

TEST(GroundTruthTest, KnnReturnsKClosestSorted) {
  std::vector<VectorObject> objects;
  for (int i = 0; i < 20; ++i) {
    objects.push_back(Obj(i, {static_cast<float>(i)}));
  }
  L1Distance d;
  auto result = LinearKnnSearch(objects, d, Obj(99, {7.2f}), 3);
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0].id, 7u);
  EXPECT_EQ(result[1].id, 8u);
  EXPECT_EQ(result[2].id, 6u);
  EXPECT_LE(result[0].distance, result[1].distance);
  EXPECT_LE(result[1].distance, result[2].distance);
}

TEST(GroundTruthTest, KnnHandlesSmallCollectionAndZeroK) {
  std::vector<VectorObject> objects = {Obj(0, {0.0f})};
  L1Distance d;
  EXPECT_EQ(LinearKnnSearch(objects, d, Obj(9, {1.0f}), 5).size(), 1u);
  EXPECT_TRUE(LinearKnnSearch(objects, d, Obj(9, {1.0f}), 0).empty());
}

// --------------------------------------------------------------- Dataset

TEST(DatasetTest, SaveLoadRoundTrip) {
  auto dataset = data::MakeYeastLike(5);
  const std::string path = testing::TempDir() + "/simcloud_dataset_test.bin";
  ASSERT_TRUE(dataset.SaveToFile(path).ok());
  auto loaded = Dataset::LoadFromFile(path, "YEAST",
                                      std::make_shared<L1Distance>());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), dataset.size());
  EXPECT_EQ(loaded->objects()[0], dataset.objects()[0]);
  EXPECT_EQ(loaded->objects().back(), dataset.objects().back());
  std::remove(path.c_str());
}

TEST(DatasetTest, LoadRejectsGarbage) {
  const std::string path = testing::TempDir() + "/simcloud_garbage.bin";
  FILE* f = fopen(path.c_str(), "wb");
  fputs("not a dataset", f);
  fclose(f);
  EXPECT_FALSE(Dataset::LoadFromFile(path, "x",
                                     std::make_shared<L1Distance>())
                   .ok());
  std::remove(path.c_str());
}

TEST(DatasetTest, ExtractQueriesRemovesThem) {
  auto dataset = data::MakeYeastLike(6);
  const size_t before = dataset.size();
  auto queries = dataset.ExtractQueries(100, 99);
  EXPECT_EQ(queries.size(), 100u);
  EXPECT_EQ(dataset.size(), before - 100);
  // None of the extracted ids remain in the collection.
  std::set<ObjectId> remaining;
  for (const auto& o : dataset.objects()) remaining.insert(o.id());
  for (const auto& q : queries) {
    EXPECT_EQ(remaining.count(q.id()), 0u);
  }
}

TEST(DatasetTest, SampleQueriesIsDeterministicAndNonDestructive) {
  auto dataset = data::MakeYeastLike(7);
  const size_t before = dataset.size();
  auto q1 = dataset.SampleQueries(10, 123);
  auto q2 = dataset.SampleQueries(10, 123);
  EXPECT_EQ(dataset.size(), before);
  ASSERT_EQ(q1.size(), q2.size());
  for (size_t i = 0; i < q1.size(); ++i) EXPECT_EQ(q1[i].id(), q2[i].id());
}

TEST(ObjectTest, SerializedSizeMatchesActual) {
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    std::vector<float> values(rng.NextBounded(300));
    for (auto& v : values) v = rng.NextFloat();
    VectorObject obj(rng.NextU64() >> (rng.NextBounded(40)),
                     std::move(values));
    BinaryWriter writer;
    obj.Serialize(&writer);
    EXPECT_EQ(writer.size(), obj.SerializedSize());
  }
}

}  // namespace
}  // namespace metric
}  // namespace simcloud
