// Churn soak test: a randomized interleaving of insert batches, delete
// batches, range queries, and k-NN batches runs against two identically
// fed deployments — one that compacts aggressively (automatic trigger
// plus periodic explicit kCompact, payload cache enabled) and one that
// never compacts — while an in-memory oracle tracks the live collection.
// Invariants checked throughout:
//   * precise range answers equal the oracle's brute-force answer exactly;
//   * every answer (range and k-NN, ids and distances) from the
//     compacting deployment is identical to the never-compacted one —
//     compaction must never change any result;
//   * tree invariants hold and object counts match the oracle;
//   * after a final compaction the log holds exactly the live bytes.
// Runs on memory and disk backends, single-node and sharded servers.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "data/synthetic.h"
#include "mindex/mindex.h"
#include "secure/client.h"
#include "secure/server.h"
#include "secure/sharded_server.h"

namespace simcloud {
namespace secure {
namespace {

using metric::VectorObject;

struct ChurnConfig {
  mindex::StorageKind storage_kind;
  size_t num_shards;
};

std::string ConfigName(const ChurnConfig& config) {
  std::string name = config.storage_kind == mindex::StorageKind::kMemory
                         ? "memory"
                         : "disk";
  name += "_shards" + std::to_string(config.num_shards);
  return name;
}

class ChurnTest : public ::testing::TestWithParam<ChurnConfig> {};

struct Deployment {
  std::unique_ptr<net::RequestHandler> server;
  std::unique_ptr<net::LoopbackTransport> transport;
  std::unique_ptr<EncryptionClient> client;
  std::vector<std::string> disk_paths;

  /// White-box access to every shard's index.
  std::vector<const mindex::MIndex*> Indexes() const {
    std::vector<const mindex::MIndex*> indexes;
    if (auto* sharded = dynamic_cast<ShardedServer*>(server.get())) {
      for (size_t i = 0; i < sharded->num_shards(); ++i) {
        indexes.push_back(&sharded->shard(i).index());
      }
    } else {
      indexes.push_back(
          &static_cast<EncryptedMIndexServer*>(server.get())->index());
    }
    return indexes;
  }
};

Deployment MakeDeployment(const ChurnConfig& config, const SecretKey& key,
                          std::shared_ptr<metric::DistanceFunction> metric,
                          const std::string& tag, double compaction_trigger,
                          uint64_t cache_bytes) {
  mindex::MIndexOptions options;
  options.num_pivots = key.num_pivots();
  options.bucket_capacity = 25;
  options.max_level = 4;
  options.compaction_trigger = compaction_trigger;
  options.cache_bytes = cache_bytes;
  Deployment deployment;
  if (config.storage_kind == mindex::StorageKind::kDisk) {
    options.storage_kind = mindex::StorageKind::kDisk;
    options.disk_path =
        testing::TempDir() + "/simcloud_churn_" + tag + ".bucket";
    if (config.num_shards <= 1) {
      deployment.disk_paths.push_back(options.disk_path);
    } else {
      for (size_t i = 0; i < config.num_shards; ++i) {
        deployment.disk_paths.push_back(options.disk_path + "." +
                                        std::to_string(i));
      }
    }
  }
  if (config.num_shards <= 1) {
    auto server = EncryptedMIndexServer::Create(options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    deployment.server = std::move(*server);
  } else {
    auto server = ShardedServer::Create(options, config.num_shards);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    deployment.server = std::move(*server);
  }
  deployment.transport =
      std::make_unique<net::LoopbackTransport>(deployment.server.get());
  deployment.client = std::make_unique<EncryptionClient>(
      key, std::move(metric), deployment.transport.get());
  return deployment;
}

void RemoveDeploymentFiles(const Deployment& deployment) {
  for (const std::string& path : deployment.disk_paths) {
    std::remove(path.c_str());
    std::remove((path + ".compact").c_str());
  }
}

TEST_P(ChurnTest, RandomizedChurnMatchesOracleAndCompactionChangesNothing) {
  const ChurnConfig config = GetParam();

  data::MixtureOptions mixture;
  mixture.num_objects = 400;
  mixture.dimension = 8;
  mixture.num_clusters = 6;
  mixture.seed = 211;
  const std::vector<VectorObject> pool = data::MakeGaussianMixture(mixture);
  auto metric = std::make_shared<metric::L2Distance>();
  auto pivots = mindex::PivotSet::SelectRandom(pool, 8, 213);
  ASSERT_TRUE(pivots.ok());
  auto key = SecretKey::Create(std::move(*pivots), Bytes(16, 0x37));
  ASSERT_TRUE(key.ok());

  const std::string tag = ConfigName(config);
  Deployment compacting =
      MakeDeployment(config, *key, metric, tag + "_compacting",
                     /*compaction_trigger=*/0.35, /*cache_bytes=*/1 << 17);
  Deployment reference =
      MakeDeployment(config, *key, metric, tag + "_reference",
                     /*compaction_trigger=*/0.0, /*cache_bytes=*/0);

  // Oracle: which pool objects are currently indexed.
  std::vector<bool> live(pool.size(), false);
  size_t live_count = 0;
  Rng rng(503 + config.num_shards);

  auto insert_batch = [&](size_t want) {
    std::vector<VectorObject> batch;
    for (size_t attempts = 0; attempts < 4 * want && batch.size() < want;
         ++attempts) {
      const size_t pick = rng.NextBounded(pool.size());
      if (live[pick]) continue;
      live[pick] = true;
      ++live_count;
      batch.push_back(pool[pick]);
    }
    if (batch.empty()) return;
    ASSERT_TRUE(compacting.client
                    ->InsertBulk(batch, InsertStrategy::kPrecise, 50)
                    .ok());
    ASSERT_TRUE(reference.client
                    ->InsertBulk(batch, InsertStrategy::kPrecise, 50)
                    .ok());
  };

  auto delete_batch = [&](size_t want) {
    std::vector<VectorObject> batch;
    for (size_t attempts = 0; attempts < 6 * want && batch.size() < want;
         ++attempts) {
      const size_t pick = rng.NextBounded(pool.size());
      if (!live[pick]) continue;
      live[pick] = false;
      --live_count;
      batch.push_back(pool[pick]);
    }
    if (batch.empty()) return;
    if (batch.size() == 1) {
      // Exercise the single-delete opcode too.
      ASSERT_TRUE(compacting.client->Delete(batch[0]).ok());
      ASSERT_TRUE(reference.client->Delete(batch[0]).ok());
    } else {
      ASSERT_TRUE(compacting.client->DeleteBatch(batch).ok());
      ASSERT_TRUE(reference.client->DeleteBatch(batch).ok());
    }
  };

  auto check_queries = [&](int round) {
    // Precise range queries: compare both deployments to each other AND
    // to the oracle's brute-force answer (range search is exact).
    for (int qi = 0; qi < 2; ++qi) {
      const VectorObject& query = pool[rng.NextBounded(pool.size())];
      const double radius = 1.0 + 0.25 * rng.NextBounded(8);
      auto got = compacting.client->RangeSearch(query, radius);
      auto want = reference.client->RangeSearch(query, radius);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      ASSERT_EQ(got->size(), want->size()) << "round " << round;
      for (size_t i = 0; i < want->size(); ++i) {
        ASSERT_EQ((*got)[i].id, (*want)[i].id) << "round " << round;
        ASSERT_EQ((*got)[i].distance, (*want)[i].distance)
            << "round " << round;
      }
      std::map<uint64_t, double> oracle;
      for (size_t i = 0; i < pool.size(); ++i) {
        if (!live[i]) continue;
        const double d = metric->Distance(query, pool[i]);
        if (d <= radius) oracle[pool[i].id()] = d;
      }
      ASSERT_EQ(got->size(), oracle.size()) << "round " << round;
      for (const auto& neighbor : *got) {
        auto it = oracle.find(neighbor.id);
        ASSERT_NE(it, oracle.end()) << "round " << round;
        ASSERT_EQ(neighbor.distance, it->second) << "round " << round;
      }
    }
    // Batched approximate k-NN: byte-identical across deployments.
    std::vector<VectorObject> knn_queries;
    for (int qi = 0; qi < 4; ++qi) {
      knn_queries.push_back(pool[rng.NextBounded(pool.size())]);
    }
    auto got = compacting.client->ApproxKnnBatch(knn_queries, 5, 40);
    auto want = reference.client->ApproxKnnBatch(knn_queries, 5, 40);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    ASSERT_EQ(got->size(), want->size());
    for (size_t q = 0; q < want->size(); ++q) {
      ASSERT_EQ((*got)[q].size(), (*want)[q].size()) << "round " << round;
      for (size_t i = 0; i < (*want)[q].size(); ++i) {
        ASSERT_EQ((*got)[q][i].id, (*want)[q][i].id) << "round " << round;
        ASSERT_EQ((*got)[q][i].distance, (*want)[q][i].distance)
            << "round " << round;
      }
    }
  };

  insert_batch(200);
  for (int round = 0; round < 12; ++round) {
    insert_batch(5 + rng.NextBounded(25));
    delete_batch(5 + rng.NextBounded(30));
    if (round % 3 == 2) delete_batch(1);  // single-delete opcode
    if (round % 4 == 3) {
      auto report = compacting.client->Compact(/*force=*/true);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
    }
    check_queries(round);
  }

  // Final accounting: counts match the oracle on both deployments...
  auto stats = compacting.client->GetServerStats();
  auto ref_stats = reference.client->GetServerStats();
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(ref_stats.ok());
  EXPECT_EQ(stats->object_count, live_count);
  EXPECT_EQ(ref_stats->object_count, live_count);

  // ...tree invariants hold on every shard...
  for (const Deployment* deployment : {&compacting, &reference}) {
    for (const mindex::MIndex* index : deployment->Indexes()) {
      EXPECT_TRUE(index->CheckInvariants().ok());
    }
  }

  // ...and one final forced compaction leaves a log of exactly the live
  // bytes while the reference kept every byte ever appended.
  auto report = compacting.client->Compact(/*force=*/true);
  ASSERT_TRUE(report.ok());
  stats = compacting.client->GetServerStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->dead_storage_bytes, 0u);
  EXPECT_EQ(stats->storage_bytes, stats->live_storage_bytes);
  EXPECT_EQ(stats->live_storage_bytes, ref_stats->live_storage_bytes);
  EXPECT_GT(ref_stats->dead_storage_bytes, 0u)
      << "the reference deployment must have accumulated garbage for this "
         "test to mean anything";
  check_queries(999);

  RemoveDeploymentFiles(compacting);
  RemoveDeploymentFiles(reference);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ChurnTest,
    ::testing::Values(
        ChurnConfig{mindex::StorageKind::kMemory, 1},
        ChurnConfig{mindex::StorageKind::kMemory, 3},
        ChurnConfig{mindex::StorageKind::kDisk, 1},
        ChurnConfig{mindex::StorageKind::kDisk, 3}),
    [](const auto& info) { return ConfigName(info.param); });

// Background compaction vs. REAL concurrency: two mutator threads churn
// disjoint id ranges (their deletes cross the trigger, so the server's
// background thread compacts underneath them), a third thread hammers
// explicit kCompact, and a query thread continuously verifies a stable
// region that is never deleted — every stable object in range must appear
// in every answer, with its exact distance, no matter where a pass is.
// This is the relocation journal's adversarial workout; run it under
// ThreadSanitizer via `ci.sh --tsan`.
TEST(ConcurrentChurnTest, BackgroundCompactionRacesMutatorsAndQueries) {
  data::MixtureOptions mixture;
  mixture.num_objects = 600;
  mixture.dimension = 8;
  mixture.num_clusters = 6;
  mixture.seed = 271;
  const std::vector<VectorObject> pool = data::MakeGaussianMixture(mixture);
  auto metric = std::make_shared<metric::L2Distance>();
  auto pivots = mindex::PivotSet::SelectRandom(pool, 8, 277);
  ASSERT_TRUE(pivots.ok());
  auto key = SecretKey::Create(std::move(*pivots), Bytes(16, 0x44));
  ASSERT_TRUE(key.ok());

  mindex::MIndexOptions options;
  options.num_pivots = key->num_pivots();
  options.bucket_capacity = 25;
  options.max_level = 4;
  options.storage_kind = mindex::StorageKind::kDisk;
  options.disk_path =
      testing::TempDir() + "/simcloud_concurrent_churn.bucket";
  options.cache_bytes = 1 << 17;
  options.compaction_trigger = 0.3;  // background thread territory
  auto server = EncryptedMIndexServer::Create(options);
  ASSERT_TRUE(server.ok());

  // One transport+client per thread: the server handles concurrent
  // calls, the client-side cost accounting does not.
  auto make_client = [&](std::unique_ptr<net::LoopbackTransport>* transport) {
    *transport = std::make_unique<net::LoopbackTransport>(server->get());
    return std::make_unique<EncryptionClient>(*key, metric,
                                              transport->get());
  };

  // Stable region [500, 600): inserted up front, never deleted.
  const std::vector<VectorObject> stable(pool.begin() + 500, pool.end());
  {
    std::unique_ptr<net::LoopbackTransport> transport;
    auto client = make_client(&transport);
    ASSERT_TRUE(
        client->InsertBulk(stable, InsertStrategy::kPrecise, 50).ok());
  }

  std::atomic<bool> stop{false};
  // gtest assertions are not thread-safe; threads record failures and the
  // main thread asserts after the join.
  std::vector<std::string> failures(4);
  std::vector<std::vector<bool>> live_sets(2);

  // Mutators: churn [begin, end) with insert/delete batches.
  auto mutator = [&](size_t slot, size_t begin, size_t end, uint64_t seed) {
    std::unique_ptr<net::LoopbackTransport> transport;
    auto client = make_client(&transport);
    std::vector<bool> live(end - begin, false);
    Rng rng(seed);
    for (int round = 0; round < 10 && failures[slot].empty(); ++round) {
      std::vector<VectorObject> batch;
      for (size_t tries = 0; tries < 120 && batch.size() < 30; ++tries) {
        const size_t pick = begin + rng.NextBounded(end - begin);
        if (live[pick - begin]) continue;
        live[pick - begin] = true;
        batch.push_back(pool[pick]);
      }
      if (!batch.empty()) {
        Status inserted =
            client->InsertBulk(batch, InsertStrategy::kPrecise, 30);
        if (!inserted.ok()) {
          failures[slot] = "insert: " + inserted.ToString();
          break;
        }
      }
      batch.clear();
      for (size_t tries = 0; tries < 160 && batch.size() < 22; ++tries) {
        const size_t pick = begin + rng.NextBounded(end - begin);
        if (!live[pick - begin]) continue;
        live[pick - begin] = false;
        batch.push_back(pool[pick]);
      }
      if (!batch.empty()) {
        Status deleted = client->DeleteBatch(batch);
        if (!deleted.ok()) {
          failures[slot] = "delete: " + deleted.ToString();
          break;
        }
      }
    }
    live_sets[slot] = std::move(live);
  };

  // Query thread: the stable region must answer exactly, always.
  auto querier = [&] {
    std::unique_ptr<net::LoopbackTransport> transport;
    auto client = make_client(&transport);
    Rng rng(701);
    while (!stop.load(std::memory_order_relaxed) && failures[2].empty()) {
      const VectorObject& query = stable[rng.NextBounded(stable.size())];
      const double radius = 1.5 + 0.5 * rng.NextBounded(3);
      auto got = client->RangeSearch(query, radius);
      if (!got.ok()) {
        failures[2] = "query: " + got.status().ToString();
        return;
      }
      for (const VectorObject& object : stable) {
        const double d = metric->Distance(query, object);
        if (d > radius) continue;
        bool found = false;
        for (const auto& neighbor : *got) {
          if (neighbor.id == object.id() && neighbor.distance == d) {
            found = true;
            break;
          }
        }
        if (!found) {
          failures[2] = "stable object " + std::to_string(object.id()) +
                        " missing from a range answer mid-compaction";
          return;
        }
      }
    }
  };

  // Admin thread: explicit forced passes racing the background trigger.
  auto compactor = [&] {
    std::unique_ptr<net::LoopbackTransport> transport;
    auto client = make_client(&transport);
    for (int i = 0; i < 6 && failures[3].empty(); ++i) {
      auto report = client->Compact(/*force=*/true);
      if (!report.ok()) {
        failures[3] = "compact: " + report.status().ToString();
        return;
      }
    }
  };

  std::thread t_mut_a(mutator, 0, size_t{0}, size_t{250}, 881);
  std::thread t_mut_b(mutator, 1, size_t{250}, size_t{500}, 883);
  std::thread t_query(querier);
  std::thread t_compact(compactor);
  t_mut_a.join();
  t_mut_b.join();
  t_compact.join();
  stop.store(true, std::memory_order_relaxed);
  t_query.join();
  for (const std::string& failure : failures) {
    ASSERT_TRUE(failure.empty()) << failure;
  }

  // Quiescent now: a final forced pass, then exact accounting against the
  // mutators' recorded live sets and the oracle answer for every region.
  std::unique_ptr<net::LoopbackTransport> transport;
  auto client = make_client(&transport);
  auto report = client->Compact(/*force=*/true);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  auto stats = client->GetServerStats();
  ASSERT_TRUE(stats.ok());
  size_t expect_live = stable.size();
  std::vector<bool> live_all(pool.size(), false);
  for (size_t i = 500; i < 600; ++i) live_all[i] = true;
  for (size_t slot = 0; slot < 2; ++slot) {
    for (size_t i = 0; i < live_sets[slot].size(); ++i) {
      if (!live_sets[slot][i]) continue;
      live_all[slot * 250 + i] = true;
      ++expect_live;
    }
  }
  EXPECT_EQ(stats->object_count, expect_live);
  EXPECT_EQ(stats->dead_storage_bytes, 0u);
  // Some of the 6 explicit + N triggered passes found work (a forced
  // pass with zero dead bytes is a no-op and does not count).
  EXPECT_GE(stats->compaction_passes, 1u);
  EXPECT_TRUE((*server)->index().CheckInvariants().ok());
  Rng verify_rng(907);
  for (int qi = 0; qi < 6; ++qi) {
    const VectorObject& query = pool[verify_rng.NextBounded(pool.size())];
    auto got = client->RangeSearch(query, 2.0);
    ASSERT_TRUE(got.ok());
    std::map<uint64_t, double> oracle;
    for (size_t i = 0; i < pool.size(); ++i) {
      if (!live_all[i]) continue;
      const double d = metric->Distance(query, pool[i]);
      if (d <= 2.0) oracle[pool[i].id()] = d;
    }
    ASSERT_EQ(got->size(), oracle.size()) << "verify query " << qi;
    for (const auto& neighbor : *got) {
      auto it = oracle.find(neighbor.id);
      ASSERT_NE(it, oracle.end());
      ASSERT_EQ(neighbor.distance, it->second);
    }
  }

  std::remove(options.disk_path.c_str());
  std::remove((options.disk_path + ".compact").c_str());
}

}  // namespace
}  // namespace secure
}  // namespace simcloud
