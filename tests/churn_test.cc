// Churn soak test: a randomized interleaving of insert batches, delete
// batches, range queries, and k-NN batches runs against two identically
// fed deployments — one that compacts aggressively (automatic trigger
// plus periodic explicit kCompact, payload cache enabled) and one that
// never compacts — while an in-memory oracle tracks the live collection.
// Invariants checked throughout:
//   * precise range answers equal the oracle's brute-force answer exactly;
//   * every answer (range and k-NN, ids and distances) from the
//     compacting deployment is identical to the never-compacted one —
//     compaction must never change any result;
//   * tree invariants hold and object counts match the oracle;
//   * after a final compaction the log holds exactly the live bytes.
// Runs on memory and disk backends, single-node and sharded servers.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "data/synthetic.h"
#include "mindex/mindex.h"
#include "secure/client.h"
#include "secure/server.h"
#include "secure/sharded_server.h"

namespace simcloud {
namespace secure {
namespace {

using metric::VectorObject;

struct ChurnConfig {
  mindex::StorageKind storage_kind;
  size_t num_shards;
};

std::string ConfigName(const ChurnConfig& config) {
  std::string name = config.storage_kind == mindex::StorageKind::kMemory
                         ? "memory"
                         : "disk";
  name += "_shards" + std::to_string(config.num_shards);
  return name;
}

class ChurnTest : public ::testing::TestWithParam<ChurnConfig> {};

struct Deployment {
  std::unique_ptr<net::RequestHandler> server;
  std::unique_ptr<net::LoopbackTransport> transport;
  std::unique_ptr<EncryptionClient> client;
  std::vector<std::string> disk_paths;

  /// White-box access to every shard's index.
  std::vector<const mindex::MIndex*> Indexes() const {
    std::vector<const mindex::MIndex*> indexes;
    if (auto* sharded = dynamic_cast<ShardedServer*>(server.get())) {
      for (size_t i = 0; i < sharded->num_shards(); ++i) {
        indexes.push_back(&sharded->shard(i).index());
      }
    } else {
      indexes.push_back(
          &static_cast<EncryptedMIndexServer*>(server.get())->index());
    }
    return indexes;
  }
};

Deployment MakeDeployment(const ChurnConfig& config, const SecretKey& key,
                          std::shared_ptr<metric::DistanceFunction> metric,
                          const std::string& tag, double compaction_trigger,
                          uint64_t cache_bytes) {
  mindex::MIndexOptions options;
  options.num_pivots = key.num_pivots();
  options.bucket_capacity = 25;
  options.max_level = 4;
  options.compaction_trigger = compaction_trigger;
  options.cache_bytes = cache_bytes;
  Deployment deployment;
  if (config.storage_kind == mindex::StorageKind::kDisk) {
    options.storage_kind = mindex::StorageKind::kDisk;
    options.disk_path =
        testing::TempDir() + "/simcloud_churn_" + tag + ".bucket";
    if (config.num_shards <= 1) {
      deployment.disk_paths.push_back(options.disk_path);
    } else {
      for (size_t i = 0; i < config.num_shards; ++i) {
        deployment.disk_paths.push_back(options.disk_path + "." +
                                        std::to_string(i));
      }
    }
  }
  if (config.num_shards <= 1) {
    auto server = EncryptedMIndexServer::Create(options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    deployment.server = std::move(*server);
  } else {
    auto server = ShardedServer::Create(options, config.num_shards);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    deployment.server = std::move(*server);
  }
  deployment.transport =
      std::make_unique<net::LoopbackTransport>(deployment.server.get());
  deployment.client = std::make_unique<EncryptionClient>(
      key, std::move(metric), deployment.transport.get());
  return deployment;
}

void RemoveDeploymentFiles(const Deployment& deployment) {
  for (const std::string& path : deployment.disk_paths) {
    std::remove(path.c_str());
    std::remove((path + ".compact").c_str());
  }
}

TEST_P(ChurnTest, RandomizedChurnMatchesOracleAndCompactionChangesNothing) {
  const ChurnConfig config = GetParam();

  data::MixtureOptions mixture;
  mixture.num_objects = 400;
  mixture.dimension = 8;
  mixture.num_clusters = 6;
  mixture.seed = 211;
  const std::vector<VectorObject> pool = data::MakeGaussianMixture(mixture);
  auto metric = std::make_shared<metric::L2Distance>();
  auto pivots = mindex::PivotSet::SelectRandom(pool, 8, 213);
  ASSERT_TRUE(pivots.ok());
  auto key = SecretKey::Create(std::move(*pivots), Bytes(16, 0x37));
  ASSERT_TRUE(key.ok());

  const std::string tag = ConfigName(config);
  Deployment compacting =
      MakeDeployment(config, *key, metric, tag + "_compacting",
                     /*compaction_trigger=*/0.35, /*cache_bytes=*/1 << 17);
  Deployment reference =
      MakeDeployment(config, *key, metric, tag + "_reference",
                     /*compaction_trigger=*/0.0, /*cache_bytes=*/0);

  // Oracle: which pool objects are currently indexed.
  std::vector<bool> live(pool.size(), false);
  size_t live_count = 0;
  Rng rng(503 + config.num_shards);

  auto insert_batch = [&](size_t want) {
    std::vector<VectorObject> batch;
    for (size_t attempts = 0; attempts < 4 * want && batch.size() < want;
         ++attempts) {
      const size_t pick = rng.NextBounded(pool.size());
      if (live[pick]) continue;
      live[pick] = true;
      ++live_count;
      batch.push_back(pool[pick]);
    }
    if (batch.empty()) return;
    ASSERT_TRUE(compacting.client
                    ->InsertBulk(batch, InsertStrategy::kPrecise, 50)
                    .ok());
    ASSERT_TRUE(reference.client
                    ->InsertBulk(batch, InsertStrategy::kPrecise, 50)
                    .ok());
  };

  auto delete_batch = [&](size_t want) {
    std::vector<VectorObject> batch;
    for (size_t attempts = 0; attempts < 6 * want && batch.size() < want;
         ++attempts) {
      const size_t pick = rng.NextBounded(pool.size());
      if (!live[pick]) continue;
      live[pick] = false;
      --live_count;
      batch.push_back(pool[pick]);
    }
    if (batch.empty()) return;
    if (batch.size() == 1) {
      // Exercise the single-delete opcode too.
      ASSERT_TRUE(compacting.client->Delete(batch[0]).ok());
      ASSERT_TRUE(reference.client->Delete(batch[0]).ok());
    } else {
      ASSERT_TRUE(compacting.client->DeleteBatch(batch).ok());
      ASSERT_TRUE(reference.client->DeleteBatch(batch).ok());
    }
  };

  auto check_queries = [&](int round) {
    // Precise range queries: compare both deployments to each other AND
    // to the oracle's brute-force answer (range search is exact).
    for (int qi = 0; qi < 2; ++qi) {
      const VectorObject& query = pool[rng.NextBounded(pool.size())];
      const double radius = 1.0 + 0.25 * rng.NextBounded(8);
      auto got = compacting.client->RangeSearch(query, radius);
      auto want = reference.client->RangeSearch(query, radius);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      ASSERT_EQ(got->size(), want->size()) << "round " << round;
      for (size_t i = 0; i < want->size(); ++i) {
        ASSERT_EQ((*got)[i].id, (*want)[i].id) << "round " << round;
        ASSERT_EQ((*got)[i].distance, (*want)[i].distance)
            << "round " << round;
      }
      std::map<uint64_t, double> oracle;
      for (size_t i = 0; i < pool.size(); ++i) {
        if (!live[i]) continue;
        const double d = metric->Distance(query, pool[i]);
        if (d <= radius) oracle[pool[i].id()] = d;
      }
      ASSERT_EQ(got->size(), oracle.size()) << "round " << round;
      for (const auto& neighbor : *got) {
        auto it = oracle.find(neighbor.id);
        ASSERT_NE(it, oracle.end()) << "round " << round;
        ASSERT_EQ(neighbor.distance, it->second) << "round " << round;
      }
    }
    // Batched approximate k-NN: byte-identical across deployments.
    std::vector<VectorObject> knn_queries;
    for (int qi = 0; qi < 4; ++qi) {
      knn_queries.push_back(pool[rng.NextBounded(pool.size())]);
    }
    auto got = compacting.client->ApproxKnnBatch(knn_queries, 5, 40);
    auto want = reference.client->ApproxKnnBatch(knn_queries, 5, 40);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    ASSERT_EQ(got->size(), want->size());
    for (size_t q = 0; q < want->size(); ++q) {
      ASSERT_EQ((*got)[q].size(), (*want)[q].size()) << "round " << round;
      for (size_t i = 0; i < (*want)[q].size(); ++i) {
        ASSERT_EQ((*got)[q][i].id, (*want)[q][i].id) << "round " << round;
        ASSERT_EQ((*got)[q][i].distance, (*want)[q][i].distance)
            << "round " << round;
      }
    }
  };

  insert_batch(200);
  for (int round = 0; round < 12; ++round) {
    insert_batch(5 + rng.NextBounded(25));
    delete_batch(5 + rng.NextBounded(30));
    if (round % 3 == 2) delete_batch(1);  // single-delete opcode
    if (round % 4 == 3) {
      auto report = compacting.client->Compact(/*force=*/true);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
    }
    check_queries(round);
  }

  // Final accounting: counts match the oracle on both deployments...
  auto stats = compacting.client->GetServerStats();
  auto ref_stats = reference.client->GetServerStats();
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(ref_stats.ok());
  EXPECT_EQ(stats->object_count, live_count);
  EXPECT_EQ(ref_stats->object_count, live_count);

  // ...tree invariants hold on every shard...
  for (const Deployment* deployment : {&compacting, &reference}) {
    for (const mindex::MIndex* index : deployment->Indexes()) {
      EXPECT_TRUE(index->CheckInvariants().ok());
    }
  }

  // ...and one final forced compaction leaves a log of exactly the live
  // bytes while the reference kept every byte ever appended.
  auto report = compacting.client->Compact(/*force=*/true);
  ASSERT_TRUE(report.ok());
  stats = compacting.client->GetServerStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->dead_storage_bytes, 0u);
  EXPECT_EQ(stats->storage_bytes, stats->live_storage_bytes);
  EXPECT_EQ(stats->live_storage_bytes, ref_stats->live_storage_bytes);
  EXPECT_GT(ref_stats->dead_storage_bytes, 0u)
      << "the reference deployment must have accumulated garbage for this "
         "test to mean anything";
  check_queries(999);

  RemoveDeploymentFiles(compacting);
  RemoveDeploymentFiles(reference);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ChurnTest,
    ::testing::Values(
        ChurnConfig{mindex::StorageKind::kMemory, 1},
        ChurnConfig{mindex::StorageKind::kMemory, 3},
        ChurnConfig{mindex::StorageKind::kDisk, 1},
        ChurnConfig{mindex::StorageKind::kDisk, 3}),
    [](const auto& info) { return ConfigName(info.param); });

}  // namespace
}  // namespace secure
}  // namespace simcloud
