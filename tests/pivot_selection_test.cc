// Pivot selection strategy tests: basic contracts (count, distinctness,
// determinism, error paths) for every strategy, plus geometric sanity
// checks — farthest-first must spread pivots wider than random, medoids
// must sit closer to cluster mass.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>

#include "data/synthetic.h"
#include "metric/dataset.h"
#include "mindex/pivot_selection.h"

namespace simcloud {
namespace mindex {
namespace {

using metric::VectorObject;

std::vector<VectorObject> MakeClusteredObjects(uint64_t seed) {
  data::MixtureOptions options;
  options.num_objects = 600;
  options.dimension = 10;
  options.num_clusters = 6;
  options.seed = seed;
  return data::MakeGaussianMixture(options);
}

double MinPairwiseDistance(const PivotSet& pivots,
                           const metric::DistanceFunction& distance) {
  double min_dist = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < pivots.size(); ++i) {
    for (size_t j = i + 1; j < pivots.size(); ++j) {
      min_dist = std::min(
          min_dist, distance.Distance(pivots.pivot(i), pivots.pivot(j)));
    }
  }
  return min_dist;
}

class PivotStrategyContractTest
    : public ::testing::TestWithParam<PivotStrategy> {};

TEST_P(PivotStrategyContractTest, ReturnsRequestedCountOfDistinctPivots) {
  const auto objects = MakeClusteredObjects(21);
  metric::L2Distance distance;
  PivotSelectionOptions options;
  options.strategy = GetParam();
  options.count = 12;
  options.seed = 5;
  auto pivots = SelectPivots(objects, distance, options);
  ASSERT_TRUE(pivots.ok()) << PivotStrategyName(GetParam());
  EXPECT_EQ(pivots->size(), 12u);

  std::set<uint64_t> ids;
  for (size_t i = 0; i < pivots->size(); ++i) {
    ids.insert(pivots->pivot(i).id());
  }
  EXPECT_EQ(ids.size(), 12u) << "duplicate pivots selected";
}

TEST_P(PivotStrategyContractTest, DeterministicGivenSeed) {
  const auto objects = MakeClusteredObjects(22);
  metric::L2Distance distance;
  PivotSelectionOptions options;
  options.strategy = GetParam();
  options.count = 8;
  options.seed = 99;
  auto a = SelectPivots(objects, distance, options);
  auto b = SelectPivots(objects, distance, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(a->pivot(i).id(), b->pivot(i).id()) << "slot " << i;
  }
}

TEST_P(PivotStrategyContractTest, RejectsDegenerateCounts) {
  const auto objects = MakeClusteredObjects(23);
  metric::L2Distance distance;
  PivotSelectionOptions options;
  options.strategy = GetParam();
  options.seed = 1;
  options.count = 0;
  EXPECT_FALSE(SelectPivots(objects, distance, options).ok());
  options.count = objects.size() + 1;
  EXPECT_FALSE(SelectPivots(objects, distance, options).ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, PivotStrategyContractTest,
    ::testing::Values(PivotStrategy::kRandom, PivotStrategy::kFarthestFirst,
                      PivotStrategy::kMaxVariance, PivotStrategy::kMedoids),
    [](const ::testing::TestParamInfo<PivotStrategy>& info) {
      std::string name = PivotStrategyName(info.param);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(PivotSelectionTest, FarthestFirstSpreadsWiderThanRandom) {
  const auto objects = MakeClusteredObjects(31);
  metric::L2Distance distance;

  PivotSelectionOptions ff;
  ff.strategy = PivotStrategy::kFarthestFirst;
  ff.count = 10;
  ff.seed = 7;
  auto ff_pivots = SelectPivots(objects, distance, ff);
  ASSERT_TRUE(ff_pivots.ok());

  // Average the random spread over several seeds so the comparison is not
  // hostage to one lucky draw.
  double random_spread = 0.0;
  const int kTrials = 5;
  for (int trial = 0; trial < kTrials; ++trial) {
    PivotSelectionOptions rnd;
    rnd.strategy = PivotStrategy::kRandom;
    rnd.count = 10;
    rnd.seed = 100 + trial;
    auto rnd_pivots = SelectPivots(objects, distance, rnd);
    ASSERT_TRUE(rnd_pivots.ok());
    random_spread += MinPairwiseDistance(*rnd_pivots, distance);
  }
  random_spread /= kTrials;

  EXPECT_GT(MinPairwiseDistance(*ff_pivots, distance), random_spread);
}

TEST(PivotSelectionTest, MedoidsReduceAssignmentCostVersusRandom) {
  const auto objects = MakeClusteredObjects(33);
  metric::L2Distance distance;
  const size_t count = 6;  // one pivot per generated cluster

  auto assignment_cost = [&](const PivotSet& pivots) {
    double total = 0.0;
    for (const auto& object : objects) {
      double best = std::numeric_limits<double>::infinity();
      for (size_t p = 0; p < pivots.size(); ++p) {
        best = std::min(best, distance.Distance(object, pivots.pivot(p)));
      }
      total += best;
    }
    return total;
  };

  PivotSelectionOptions med;
  med.strategy = PivotStrategy::kMedoids;
  med.count = count;
  med.seed = 4;
  auto med_pivots = SelectPivots(objects, distance, med);
  ASSERT_TRUE(med_pivots.ok());

  double random_cost = 0.0;
  const int kTrials = 5;
  for (int trial = 0; trial < kTrials; ++trial) {
    PivotSelectionOptions rnd;
    rnd.strategy = PivotStrategy::kRandom;
    rnd.count = count;
    rnd.seed = 200 + trial;
    auto rnd_pivots = SelectPivots(objects, distance, rnd);
    ASSERT_TRUE(rnd_pivots.ok());
    random_cost += assignment_cost(*rnd_pivots);
  }
  random_cost /= kTrials;

  EXPECT_LT(assignment_cost(*med_pivots), random_cost);
}

TEST(PivotSelectionTest, SampleSizeBoundsSelectionWork) {
  const auto objects = MakeClusteredObjects(35);
  metric::L2Distance distance;
  PivotSelectionOptions options;
  options.strategy = PivotStrategy::kFarthestFirst;
  options.count = 5;
  options.seed = 11;
  options.sample_size = 50;  // far below the collection size
  auto pivots = SelectPivots(objects, distance, options);
  ASSERT_TRUE(pivots.ok());
  EXPECT_EQ(pivots->size(), 5u);

  // A sample smaller than the pivot count is rejected.
  options.sample_size = 3;
  EXPECT_FALSE(SelectPivots(objects, distance, options).ok());
}

TEST(PivotSelectionTest, StrategyNamesAreStable) {
  EXPECT_EQ(PivotStrategyName(PivotStrategy::kRandom), "random");
  EXPECT_EQ(PivotStrategyName(PivotStrategy::kFarthestFirst),
            "farthest-first");
  EXPECT_EQ(PivotStrategyName(PivotStrategy::kMaxVariance), "max-variance");
  EXPECT_EQ(PivotStrategyName(PivotStrategy::kMedoids), "medoids");
}

}  // namespace
}  // namespace mindex
}  // namespace simcloud
