// Query-authentication tests: authorized clients pass transparently,
// forged / unauthenticated / tampered / replayed requests are rejected,
// the nonce cache stays bounded, and the whole thing composes with the
// encrypted search stack end to end.

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "metric/ground_truth.h"
#include "net/tcp.h"
#include "secure/auth.h"
#include "secure/client.h"
#include "secure/server.h"

namespace simcloud {
namespace secure {
namespace {

using metric::VectorObject;

/// A handler that records what reaches it and echoes the request.
class EchoHandler : public net::RequestHandler {
 public:
  Result<Bytes> Handle(const Bytes& request) override {
    ++calls_;
    last_request_ = request;
    return request;
  }
  uint64_t calls() const { return calls_; }
  const Bytes& last_request() const { return last_request_; }

 private:
  uint64_t calls_ = 0;
  Bytes last_request_;
};

TEST(AuthTest, AuthorizedRequestPassesThroughUnchanged) {
  EchoHandler echo;
  const Bytes mac_key(32, 0x4D);
  AuthenticatingHandler handler(mac_key, &echo);
  net::LoopbackTransport inner(&handler);
  AuthenticatingTransport transport(mac_key, &inner);

  const Bytes request = {1, 2, 3, 4, 5};
  auto response = transport.Call(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(*response, request);
  EXPECT_EQ(echo.calls(), 1u);
  EXPECT_EQ(echo.last_request(), request);
  EXPECT_EQ(handler.rejected_count(), 0u);
}

TEST(AuthTest, UnauthenticatedRequestIsRejected) {
  EchoHandler echo;
  AuthenticatingHandler handler(Bytes(32, 0x4D), &echo);
  net::LoopbackTransport bare(&handler);

  // A raw request without the header never reaches the inner handler.
  auto response = bare.Call(Bytes{9, 9, 9});
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(echo.calls(), 0u);
  EXPECT_EQ(handler.rejected_count(), 1u);
}

TEST(AuthTest, WrongMacKeyIsRejected) {
  EchoHandler echo;
  AuthenticatingHandler handler(Bytes(32, 0x01), &echo);
  net::LoopbackTransport inner(&handler);
  AuthenticatingTransport wrong_key(Bytes(32, 0x02), &inner);

  auto response = wrong_key.Call(Bytes{1, 2, 3});
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(echo.calls(), 0u);
  EXPECT_EQ(handler.rejected_count(), 1u);
}

TEST(AuthTest, TamperedRequestBodyIsRejected) {
  EchoHandler echo;
  const Bytes mac_key(32, 0x4D);
  AuthenticatingHandler handler(mac_key, &echo);

  /// Capture an authentic frame, then corrupt the body.
  class CapturingTransport : public net::Transport {
   public:
    Result<Bytes> Call(const Bytes& request) override {
      captured = request;
      return Bytes{};
    }
    const net::TransportCosts& costs() const override { return costs_; }
    void ResetCosts() override {}
    Bytes captured;

   private:
    net::TransportCosts costs_;
  };
  CapturingTransport capture;
  AuthenticatingTransport transport(mac_key, &capture);
  ASSERT_TRUE(transport.Call(Bytes{1, 2, 3, 4}).ok());

  Bytes tampered = capture.captured;
  tampered.back() ^= 0xFF;  // flip a body bit
  EXPECT_FALSE(handler.Handle(tampered).ok());
  EXPECT_EQ(handler.rejected_count(), 1u);
}

TEST(AuthTest, ReplayedRequestIsRejected) {
  EchoHandler echo;
  const Bytes mac_key(32, 0x4D);
  AuthenticatingHandler handler(mac_key, &echo);

  class CapturingTransport : public net::Transport {
   public:
    explicit CapturingTransport(net::RequestHandler* handler)
        : handler_(handler) {}
    Result<Bytes> Call(const Bytes& request) override {
      captured = request;
      return handler_->Handle(request);
    }
    const net::TransportCosts& costs() const override { return costs_; }
    void ResetCosts() override {}
    Bytes captured;

   private:
    net::RequestHandler* handler_;
    net::TransportCosts costs_;
  };
  CapturingTransport capture(&handler);
  AuthenticatingTransport transport(mac_key, &capture);
  ASSERT_TRUE(transport.Call(Bytes{5, 6, 7}).ok());
  EXPECT_EQ(echo.calls(), 1u);

  // An attacker replays the captured (authentic) frame verbatim.
  auto replay = handler.Handle(capture.captured);
  EXPECT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(echo.calls(), 1u);
}

TEST(AuthTest, NonceCacheIsBoundedButFreshRequestsKeepWorking) {
  EchoHandler echo;
  const Bytes mac_key(32, 0x4D);
  AuthenticatingHandler handler(mac_key, &echo, /*replay_window=*/16);
  net::LoopbackTransport inner(&handler);
  AuthenticatingTransport transport(mac_key, &inner);

  for (int i = 0; i < 200; ++i) {
    auto response = transport.Call(Bytes{static_cast<uint8_t>(i)});
    ASSERT_TRUE(response.ok()) << "request " << i;
  }
  EXPECT_EQ(echo.calls(), 200u);
  EXPECT_EQ(handler.rejected_count(), 0u);
}

TEST(AuthTest, ComposesWithEncryptedSearchEndToEnd) {
  data::MixtureOptions options;
  options.num_objects = 300;
  options.dimension = 8;
  options.num_clusters = 4;
  options.seed = 71;
  metric::Dataset dataset("auth", data::MakeGaussianMixture(options),
                          std::make_shared<metric::L2Distance>());
  auto pivots = mindex::PivotSet::SelectRandom(dataset.objects(), 8, 72);
  ASSERT_TRUE(pivots.ok());
  auto key = SecretKey::Create(std::move(pivots).value(), Bytes(16, 0x11));
  ASSERT_TRUE(key.ok());

  mindex::MIndexOptions index_options;
  index_options.num_pivots = 8;
  index_options.max_level = 4;
  auto server = EncryptedMIndexServer::Create(index_options);
  ASSERT_TRUE(server.ok());

  // Server provisioned with the derived MAC key.
  AuthenticatingHandler auth_handler(key->DeriveQueryMacKey(),
                                     server->get());
  net::LoopbackTransport inner(&auth_handler);
  AuthenticatingTransport auth_transport(key->DeriveQueryMacKey(), &inner);

  EncryptionClient client(*key, dataset.distance(), &auth_transport);
  ASSERT_TRUE(
      client.InsertBulk(dataset.objects(), InsertStrategy::kPrecise, 100)
          .ok());

  const VectorObject& query = dataset.objects()[17];
  const auto exact = metric::LinearRangeSearch(dataset, query, 2.0);
  auto answer = client.RangeSearch(query, 2.0);
  ASSERT_TRUE(answer.ok());
  ASSERT_EQ(answer->size(), exact.size());
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ((*answer)[i].id, exact[i].id);
  }

  // An attacker without the MAC key cannot get anything past the door —
  // exactly the arbitrary-permutation probe of paper Section 4.3.
  net::LoopbackTransport attacker(&auth_handler);
  mindex::QuerySignature probe;
  probe.permutation = {0, 1, 2, 3, 4, 5, 6, 7};
  auto probe_response = attacker.Call(EncodeApproxKnnRequest(probe, 50));
  EXPECT_FALSE(probe_response.ok());
  EXPECT_GE(auth_handler.rejected_count(), 1u);
}

TEST(AuthTest, DerivedMacKeyIsStableAndKeyDependent) {
  mindex::PivotSet pivots({VectorObject(0, {1.0f})});
  auto key1 = SecretKey::Create(pivots, Bytes(16, 0x01));
  auto key2 = SecretKey::Create(pivots, Bytes(16, 0x02));
  ASSERT_TRUE(key1.ok());
  ASSERT_TRUE(key2.ok());
  EXPECT_EQ(key1->DeriveQueryMacKey(), key1->DeriveQueryMacKey());
  EXPECT_NE(key1->DeriveQueryMacKey(), key2->DeriveQueryMacKey());
  // The MAC key must not equal the AES key (domain separation).
  EXPECT_NE(key1->DeriveQueryMacKey(), Bytes(16, 0x01));
}

TEST(AuthTest, PipelinedRequestsComposeWithRequestIdFrames) {
  // The lightweight plaintext-deployment alternative to the secure
  // channel: AuthenticatingHandler in front of the server behind a real
  // TcpServer, and an AuthenticatingTransport that pipelines many
  // authenticated requests as bit-31 frames on ONE connection. Each
  // request carries its own nonce+tag inside the frame body, so
  // out-of-order responses resolve by ticket without corrupting the
  // framing.
  EchoHandler echo;
  const Bytes mac_key(32, 0x4E);
  AuthenticatingHandler handler(mac_key, &echo);
  net::TcpServer server(&handler);
  ASSERT_TRUE(server.Start(0).ok());
  auto inner = net::TcpTransport::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(inner.ok());
  AuthenticatingTransport transport(mac_key, inner->get());

  constexpr int kInFlight = 24;
  std::vector<uint64_t> tickets;
  for (int i = 0; i < kInFlight; ++i) {
    auto ticket = transport.Submit(Bytes(32, static_cast<uint8_t>(i)));
    ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
    tickets.push_back(*ticket);
  }
  for (int i = kInFlight - 1; i >= 0; --i) {  // collect in reverse
    auto response = transport.Collect(tickets[i]);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(*response, Bytes(32, static_cast<uint8_t>(i)));
  }
  EXPECT_EQ(echo.calls(), static_cast<uint64_t>(kInFlight));
  EXPECT_EQ(handler.rejected_count(), 0u);

  // Synchronous legacy Calls still interleave with pipelined traffic.
  auto first = transport.Submit(Bytes{1, 2, 3});
  ASSERT_TRUE(first.ok());
  auto called = transport.Call(Bytes{9, 9});
  ASSERT_TRUE(called.ok());
  EXPECT_EQ(*called, (Bytes{9, 9}));
  auto collected = transport.Collect(*first);
  ASSERT_TRUE(collected.ok());
  EXPECT_EQ(*collected, (Bytes{1, 2, 3}));

  // An unauthenticated pipelined request is still rejected per-request;
  // the connection (and the authenticated traffic) lives on.
  auto bare = (*inner)->Submit(Bytes{7, 7, 7});
  ASSERT_TRUE(bare.ok());
  auto rejected = (*inner)->Collect(*bare);
  EXPECT_FALSE(rejected.ok());
  EXPECT_GE(handler.rejected_count(), 1u);
  EXPECT_TRUE(transport.Call(Bytes{4}).ok());
  server.Stop();
}

TEST(AuthTest, SubmitOnNonPipelinedInnerFailsCleanly) {
  /// A Transport that is NOT pipelined.
  class CallOnlyTransport : public net::Transport {
   public:
    explicit CallOnlyTransport(net::RequestHandler* handler)
        : handler_(handler) {}
    Result<Bytes> Call(const Bytes& request) override {
      return handler_->Handle(request);
    }
    const net::TransportCosts& costs() const override { return costs_; }
    void ResetCosts() override { costs_.Clear(); }

   private:
    net::RequestHandler* handler_;
    net::TransportCosts costs_;
  };

  EchoHandler echo;
  const Bytes mac_key(32, 0x4F);
  AuthenticatingHandler handler(mac_key, &echo);
  CallOnlyTransport inner(&handler);
  AuthenticatingTransport transport(mac_key, &inner);
  auto ticket = transport.Submit(Bytes{1});
  ASSERT_FALSE(ticket.ok());
  EXPECT_EQ(ticket.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(transport.Call(Bytes{1}).ok());  // Call still works
}

}  // namespace
}  // namespace secure
}  // namespace simcloud
