// Dynamic-maintenance and persistence tests: M-Index deletions (tree
// invariants, search correctness after removals, interleaved workloads)
// and whole-index snapshots (round trips, compaction of deleted payloads,
// corruption handling, disk-storage path overrides).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <set>

#include "common/rng.h"
#include "common/serialize.h"
#include "data/synthetic.h"
#include "metric/ground_truth.h"
#include "mindex/mindex.h"
#include "mindex/persistence.h"
#include "mindex/pivot_set.h"

namespace simcloud {
namespace mindex {
namespace {

using metric::VectorObject;

struct TestWorld {
  std::vector<VectorObject> objects;
  std::shared_ptr<metric::DistanceFunction> metric;
  PivotSet pivots;
};

TestWorld MakeWorld(size_t n, uint64_t seed) {
  TestWorld world;
  data::MixtureOptions options;
  options.num_objects = n;
  options.dimension = 8;
  options.num_clusters = 6;
  options.seed = seed;
  world.objects = data::MakeGaussianMixture(options);
  world.metric = std::make_shared<metric::L2Distance>();
  auto pivots = PivotSet::SelectRandom(world.objects, 8, seed + 1);
  EXPECT_TRUE(pivots.ok());
  world.pivots = std::move(pivots).value();
  return world;
}

std::unique_ptr<MIndex> BuildIndex(const TestWorld& world,
                                   MIndexOptions options,
                                   bool with_distances = true) {
  options.num_pivots = world.pivots.size();
  auto index = MIndex::Create(options);
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  for (const auto& object : world.objects) {
    std::vector<float> distances =
        world.pivots.ComputeDistances(object, *world.metric);
    BinaryWriter payload;
    object.Serialize(&payload);
    Status st;
    if (with_distances) {
      st = (*index)->Insert(object.id(), std::move(distances), {},
                            payload.buffer());
    } else {
      st = (*index)->Insert(object.id(), {},
                            DistancesToPermutation(distances),
                            payload.buffer());
    }
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  return std::move(index).value();
}

std::vector<float> DistancesFor(const TestWorld& world,
                                const VectorObject& object) {
  return world.pivots.ComputeDistances(object, *world.metric);
}

std::set<uint64_t> RangeIds(const MIndex& index, const TestWorld& world,
                            const VectorObject& query, double radius) {
  auto candidates =
      index.RangeSearchCandidates(DistancesFor(world, query), radius);
  EXPECT_TRUE(candidates.ok()) << candidates.status().ToString();
  std::set<uint64_t> ids;
  for (const auto& c : *candidates) ids.insert(c.id);
  return ids;
}

// --------------------------------------------------------------- Deletes

TEST(MIndexDeleteTest, DeletedObjectDisappearsFromRangeCandidates) {
  TestWorld world = MakeWorld(400, 41);
  MIndexOptions options;
  options.bucket_capacity = 40;
  options.max_level = 4;
  auto index = BuildIndex(world, options);

  const VectorObject& victim = world.objects[123];
  ASSERT_TRUE(RangeIds(*index, world, victim, 1.0).count(victim.id()) > 0);

  ASSERT_TRUE(
      index->Delete(victim.id(), DistancesFor(world, victim), {}).ok());
  EXPECT_EQ(index->size(), world.objects.size() - 1);
  EXPECT_EQ(RangeIds(*index, world, victim, 1.0).count(victim.id()), 0u);
  EXPECT_TRUE(index->CheckInvariants().ok());
}

TEST(MIndexDeleteTest, DeleteByPermutationOnly) {
  TestWorld world = MakeWorld(300, 43);
  MIndexOptions options;
  options.bucket_capacity = 30;
  options.max_level = 4;
  auto index = BuildIndex(world, options, /*with_distances=*/false);

  const VectorObject& victim = world.objects[7];
  const Permutation perm =
      DistancesToPermutation(DistancesFor(world, victim));
  ASSERT_TRUE(index->Delete(victim.id(), {}, perm).ok());
  EXPECT_EQ(index->size(), world.objects.size() - 1);
  EXPECT_TRUE(index->CheckInvariants().ok());
}

TEST(MIndexDeleteTest, DeleteMissingObjectIsNotFound) {
  TestWorld world = MakeWorld(200, 47);
  MIndexOptions options;
  options.bucket_capacity = 30;
  options.max_level = 3;
  auto index = BuildIndex(world, options);

  const VectorObject& present = world.objects[0];
  // Wrong id under a real cell.
  auto status = index->Delete(999999, DistancesFor(world, present), {});
  EXPECT_EQ(status.code(), StatusCode::kNotFound) << status.ToString();

  // Deleting twice: second attempt must fail.
  ASSERT_TRUE(
      index->Delete(present.id(), DistancesFor(world, present), {}).ok());
  status = index->Delete(present.id(), DistancesFor(world, present), {});
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(MIndexDeleteTest, DeleteValidatesArguments) {
  TestWorld world = MakeWorld(100, 53);
  MIndexOptions options;
  options.max_level = 3;
  auto index = BuildIndex(world, options);
  EXPECT_FALSE(index->Delete(1, {}, {}).ok());
  EXPECT_FALSE(index->Delete(1, std::vector<float>(3, 1.0f), {}).ok());
}

TEST(MIndexDeleteTest, DeleteThenReinsertRestoresSearchability) {
  TestWorld world = MakeWorld(300, 59);
  MIndexOptions options;
  options.bucket_capacity = 30;
  options.max_level = 4;
  auto index = BuildIndex(world, options);

  const VectorObject& victim = world.objects[50];
  ASSERT_TRUE(
      index->Delete(victim.id(), DistancesFor(world, victim), {}).ok());

  BinaryWriter payload;
  victim.Serialize(&payload);
  ASSERT_TRUE(index->Insert(victim.id(), DistancesFor(world, victim), {},
                            payload.buffer())
                  .ok());
  EXPECT_EQ(index->size(), world.objects.size());
  EXPECT_GT(RangeIds(*index, world, victim, 1.0).count(victim.id()), 0u);
  EXPECT_TRUE(index->CheckInvariants().ok());
}

TEST(MIndexDeleteTest, InterleavedInsertDeleteKeepsInvariantsAndResults) {
  TestWorld world = MakeWorld(500, 61);
  MIndexOptions options;
  options.bucket_capacity = 25;
  options.max_level = 4;
  options.num_pivots = world.pivots.size();
  auto index = MIndex::Create(options);
  ASSERT_TRUE(index.ok());

  // Mirror set of what should currently be indexed.
  std::set<uint64_t> live;
  Rng rng(62);
  for (int step = 0; step < 1200; ++step) {
    const size_t pick = rng.NextBounded(world.objects.size());
    const VectorObject& object = world.objects[pick];
    if (live.count(object.id()) == 0) {
      BinaryWriter payload;
      object.Serialize(&payload);
      ASSERT_TRUE((*index)
                      ->Insert(object.id(), DistancesFor(world, object), {},
                               payload.buffer())
                      .ok());
      live.insert(object.id());
    } else {
      ASSERT_TRUE(
          (*index)->Delete(object.id(), DistancesFor(world, object), {}).ok());
      live.erase(object.id());
    }
    if (step % 300 == 299) {
      ASSERT_TRUE((*index)->CheckInvariants().ok()) << "step " << step;
    }
  }
  EXPECT_EQ((*index)->size(), live.size());

  // Range results over the survivors match a linear scan over `live`.
  const VectorObject& query = world.objects[11];
  const double radius = 2.0;
  std::set<uint64_t> expected;
  for (const auto& object : world.objects) {
    if (live.count(object.id()) > 0 &&
        world.metric->Distance(query, object) <= radius) {
      expected.insert(object.id());
    }
  }
  // Candidates are a superset of the true result (pivot filtering keeps
  // every true hit); verify against the true-member subset.
  auto got = RangeIds(**index, world, query, radius);
  for (uint64_t id : expected) {
    EXPECT_TRUE(got.count(id) > 0) << "lost live object " << id;
  }
  for (uint64_t id : got) {
    EXPECT_TRUE(live.count(id) > 0) << "candidate " << id << " was deleted";
  }
}

// ----------------------------------------------------------- Persistence

TEST(PersistenceTest, SnapshotRoundTripPreservesContentAndResults) {
  TestWorld world = MakeWorld(400, 71);
  MIndexOptions options;
  options.bucket_capacity = 40;
  options.max_level = 4;
  // Compaction policy (snapshot version 4) must survive the round trip.
  options.compaction_trigger = 0.4;
  options.compaction_mode = CompactionMode::kPartial;
  options.segment_dead_threshold = 0.6;
  options.compaction_max_pass_bytes = 1 << 20;
  auto index = BuildIndex(world, options);

  auto snapshot = SerializeIndex(*index);
  ASSERT_TRUE(snapshot.ok());
  auto loaded = DeserializeIndex(*snapshot);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ((*loaded)->size(), index->size());
  EXPECT_TRUE((*loaded)->CheckInvariants().ok());
  EXPECT_EQ((*loaded)->options().compaction_trigger, 0.4);
  EXPECT_EQ((*loaded)->options().compaction_mode, CompactionMode::kPartial);
  EXPECT_EQ((*loaded)->options().segment_dead_threshold, 0.6);
  EXPECT_EQ((*loaded)->options().compaction_max_pass_bytes,
            uint64_t{1} << 20);

  for (size_t qi : {0u, 50u, 111u}) {
    const VectorObject& query = world.objects[qi];
    EXPECT_EQ(RangeIds(*index, world, query, 2.0),
              RangeIds(**loaded, world, query, 2.0))
        << "query " << qi;
  }
}

TEST(PersistenceTest, SnapshotIsDeterministic) {
  TestWorld world = MakeWorld(200, 73);
  MIndexOptions options;
  options.bucket_capacity = 20;
  options.max_level = 3;
  auto index = BuildIndex(world, options);
  auto a = SerializeIndex(*index);
  auto b = SerializeIndex(*index);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(PersistenceTest, SaveLoadFileRoundTrip) {
  TestWorld world = MakeWorld(250, 79);
  MIndexOptions options;
  options.bucket_capacity = 30;
  options.max_level = 4;
  auto index = BuildIndex(world, options);

  const std::string path = ::testing::TempDir() + "/simcloud_snapshot.midx";
  ASSERT_TRUE(SaveIndex(*index, path).ok());
  auto loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->size(), index->size());
  std::remove(path.c_str());
}

TEST(PersistenceTest, SnapshotCompactsDeletedPayloads) {
  TestWorld world = MakeWorld(300, 83);
  MIndexOptions options;
  options.bucket_capacity = 30;
  options.max_level = 4;
  auto index = BuildIndex(world, options);
  const uint64_t bytes_before = index->Stats().storage_bytes;

  // Delete a third of the collection; append-only storage keeps the bytes.
  for (size_t i = 0; i < world.objects.size(); i += 3) {
    const VectorObject& victim = world.objects[i];
    ASSERT_TRUE(
        index->Delete(victim.id(), DistancesFor(world, victim), {}).ok());
  }
  EXPECT_EQ(index->Stats().storage_bytes, bytes_before)
      << "deletes must not rewrite append-only storage";

  auto snapshot = SerializeIndex(*index);
  ASSERT_TRUE(snapshot.ok());
  auto compacted = DeserializeIndex(*snapshot);
  ASSERT_TRUE(compacted.ok());
  EXPECT_EQ((*compacted)->size(), index->size());
  EXPECT_LT((*compacted)->Stats().storage_bytes, bytes_before);
}

TEST(PersistenceTest, CrashMidCompactionLosesAndDuplicatesNothing) {
  TestWorld world = MakeWorld(300, 101);
  MIndexOptions options;
  options.bucket_capacity = 30;
  options.max_level = 4;
  options.storage_kind = StorageKind::kDisk;
  options.disk_path = ::testing::TempDir() + "/simcloud_crash.bucket";
  const std::string temp_path = options.disk_path + ".compact";
  const std::string snapshot_path =
      ::testing::TempDir() + "/simcloud_crash.midx";
  auto index = BuildIndex(world, options);

  // Delete a third, snapshot the durable state, remember the live set.
  std::set<uint64_t> expected_live;
  for (const auto& object : world.objects) expected_live.insert(object.id());
  for (size_t i = 0; i < world.objects.size(); i += 3) {
    const VectorObject& victim = world.objects[i];
    ASSERT_TRUE(
        index->Delete(victim.id(), DistancesFor(world, victim), {}).ok());
    expected_live.erase(victim.id());
  }
  ASSERT_TRUE(SaveIndex(*index, snapshot_path).ok());
  const auto pre_crash = RangeIds(*index, world, world.objects[7], 2.0);

  // Crash mid-compaction: the test hook aborts after 50 payloads, leaving
  // the fresh log half-written. The old log was never touched, so the
  // live index keeps answering exactly as before...
  CompactorOptions copts;
  copts.force = true;
  copts.fail_after_payloads = 50;
  auto crashed = index->Compact(copts);
  ASSERT_FALSE(crashed.ok());
  EXPECT_EQ(RangeIds(*index, world, world.objects[7], 2.0), pre_crash);
  EXPECT_EQ(index->size(), expected_live.size());

  // ...even if the half-written log is truncated further (simulating an
  // unflushed page cache at crash time), recovery from the snapshot sees
  // exactly the pre-compaction live set: nothing lost, nothing doubled.
  {
    std::FILE* file = std::fopen(temp_path.c_str(), "rb");
    ASSERT_NE(file, nullptr) << "crash must leave the temp log behind";
    std::fclose(file);
  }
  ASSERT_EQ(::truncate(temp_path.c_str(), 100), 0);
  index.reset();  // the crashed process is gone; its descriptors close

  auto recovered = LoadIndex(snapshot_path, options.disk_path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  {
    // Recovery reclaims the crashed pass's temp log along the way.
    std::FILE* stale = std::fopen(temp_path.c_str(), "rb");
    EXPECT_EQ(stale, nullptr) << "stale .compact file must be removed";
    if (stale != nullptr) std::fclose(stale);
  }
  EXPECT_EQ((*recovered)->size(), expected_live.size());
  EXPECT_TRUE((*recovered)->CheckInvariants().ok());
  std::multiset<uint64_t> seen;
  ASSERT_TRUE((*recovered)
                  ->ForEachEntry([&](const Entry& entry,
                                     const Bytes& payload) -> Status {
                    seen.insert(entry.id);
                    if (payload.empty()) {
                      return Status::Corruption("payload lost");
                    }
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(seen.size(), expected_live.size()) << "no duplicated payloads";
  for (uint64_t id : expected_live) {
    EXPECT_EQ(seen.count(id), 1u) << "object " << id;
  }
  EXPECT_EQ(RangeIds(**recovered, world, world.objects[7], 2.0), pre_crash);

  // The stale temp file does not break the next compaction.
  auto report = (*recovered)->Compact();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->compacted) << "fresh load starts with a clean log";

  std::remove(options.disk_path.c_str());
  std::remove(temp_path.c_str());
  std::remove(snapshot_path.c_str());
}

TEST(PersistenceTest, RejectsCorruptedSnapshots) {
  TestWorld world = MakeWorld(100, 89);
  MIndexOptions options;
  options.max_level = 3;
  auto index = BuildIndex(world, options);
  auto snapshot = SerializeIndex(*index);
  ASSERT_TRUE(snapshot.ok());

  Bytes bad_magic = *snapshot;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(DeserializeIndex(bad_magic).ok());

  Bytes truncated(snapshot->begin(), snapshot->begin() + snapshot->size() / 2);
  EXPECT_FALSE(DeserializeIndex(truncated).ok());

  EXPECT_FALSE(LoadIndex("/nonexistent/simcloud.midx").ok());
}

TEST(PersistenceTest, DiskStorageSnapshotWithPathOverride) {
  TestWorld world = MakeWorld(200, 97);
  MIndexOptions options;
  options.bucket_capacity = 30;
  options.max_level = 3;
  options.storage_kind = StorageKind::kDisk;
  options.disk_path = ::testing::TempDir() + "/simcloud_original.bucket";
  auto index = BuildIndex(world, options);

  auto snapshot = SerializeIndex(*index);
  ASSERT_TRUE(snapshot.ok());
  const std::string override_path =
      ::testing::TempDir() + "/simcloud_restored.bucket";
  auto loaded = DeserializeIndex(*snapshot, override_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->size(), index->size());
  EXPECT_EQ((*loaded)->options().disk_path, override_path);

  const VectorObject& query = world.objects[3];
  EXPECT_EQ(RangeIds(*index, world, query, 2.0),
            RangeIds(**loaded, world, query, 2.0));
  std::remove(options.disk_path.c_str());
  std::remove(override_path.c_str());
}

}  // namespace
}  // namespace mindex
}  // namespace simcloud
