// Observability subsystem tests: histogram bucket grid and quantile
// math against a sorted-sample oracle, exact counting under concurrent
// writers (the TSan sweep runs this), the append-only snapshot codec,
// merge semantics, the slow-query log's exact threshold boundary, and
// kGetMetrics end to end — both the in-process exactness property
// (a ShardedServer facade's merge equals the sum of per-shard scrapes)
// and a 3-shard secure TCP cluster scraped while churn runs.
//
// The registry is process-global, so every test uses test-local metric
// names and restores any toggles (enabled flag, slow-query threshold,
// sink) it flips.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "data/synthetic.h"
#include "net/tcp.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "secure/client.h"
#include "secure/protocol.h"
#include "secure/server.h"
#include "secure/sharded_server.h"

namespace simcloud {
namespace {

using metric::VectorObject;

/// Field-wise deep equality; histogram buckets must match pair-for-pair.
void ExpectSnapshotsEqual(const obs::MetricsSnapshot& want,
                          const obs::MetricsSnapshot& got) {
  EXPECT_EQ(want.counters, got.counters);
  EXPECT_EQ(want.gauges, got.gauges);
  ASSERT_EQ(want.histograms.size(), got.histograms.size());
  for (size_t i = 0; i < want.histograms.size(); ++i) {
    EXPECT_EQ(want.histograms[i].name, got.histograms[i].name);
    EXPECT_EQ(want.histograms[i].count, got.histograms[i].count);
    EXPECT_EQ(want.histograms[i].sum, got.histograms[i].sum);
    EXPECT_EQ(want.histograms[i].buckets, got.histograms[i].buckets);
  }
}

/// Restores the slow-query threshold and sink on scope exit so a failed
/// assertion cannot leak armed tracing into later tests.
struct SlowQueryGuard {
  int64_t saved_threshold = obs::SlowQueryThresholdMs();
  ~SlowQueryGuard() {
    obs::SetSlowQueryThresholdMs(saved_threshold);
    obs::SetSlowQuerySinkForTest(nullptr);
  }
};

// ---------------------------------------------------------------------------
// Bucket grid
// ---------------------------------------------------------------------------

TEST(HistogramBuckets, GridIsContiguousExhaustiveAndTight) {
  // The first four buckets hold the exact values 0..3.
  for (uint64_t v = 0; v < 4; ++v) {
    EXPECT_EQ(obs::BucketIndex(v), v);
    EXPECT_EQ(obs::BucketLowerBound(v), v);
    EXPECT_EQ(obs::BucketUpperBound(v), v + 1);
  }
  for (size_t b = 0; b < obs::kHistogramBucketCount; ++b) {
    const uint64_t lower = obs::BucketLowerBound(b);
    const uint64_t upper = obs::BucketUpperBound(b);
    // Each bucket owns its inclusive lower bound ...
    EXPECT_EQ(obs::BucketIndex(lower), b) << "bucket " << b;
    if (b + 1 < obs::kHistogramBucketCount) {
      // ... is non-empty, ends exactly where the next begins, and owns
      // the value just below its exclusive upper bound.
      ASSERT_GT(upper, lower) << "bucket " << b;
      EXPECT_EQ(obs::BucketLowerBound(b + 1), upper) << "bucket " << b;
      EXPECT_EQ(obs::BucketIndex(upper - 1), b) << "bucket " << b;
    } else {
      EXPECT_EQ(upper, UINT64_MAX);
    }
    // Sub-bucketing keeps relative width <= 25% everywhere above the
    // exact range (this is what bounds the quantile readout error).
    if (b >= 4 && b + 1 < obs::kHistogramBucketCount) {
      EXPECT_LE(static_cast<double>(upper - lower),
                0.25 * static_cast<double>(lower) + 1e-9)
          << "bucket " << b;
    }
  }
  // The grid is a total order over uint64: random probes land in the
  // bucket whose [lower, upper) range contains them.
  Rng rng(4242);
  for (int i = 0; i < 4000; ++i) {
    const uint64_t v = rng.NextU64() >> rng.NextBounded(64);
    const size_t b = obs::BucketIndex(v);
    ASSERT_LT(b, obs::kHistogramBucketCount);
    EXPECT_GE(v, obs::BucketLowerBound(b));
    if (b + 1 < obs::kHistogramBucketCount) {
      EXPECT_LT(v, obs::BucketUpperBound(b));
    }
  }
  EXPECT_EQ(obs::BucketIndex(UINT64_MAX), obs::kHistogramBucketCount - 1);
}

// ---------------------------------------------------------------------------
// Quantiles vs a sorted-sample oracle
// ---------------------------------------------------------------------------

TEST(HistogramQuantiles, TracksSortedOracleWithinBucketResolution) {
  obs::Histogram* histogram =
      obs::Registry::Default().GetHistogram("test_quantile_oracle_nanos");
  ASSERT_TRUE(obs::MetricsEnabled());

  // Log-uniform samples spanning ~12 decades, the shape of a latency
  // distribution with a heavy tail.
  Rng rng(77);
  std::vector<uint64_t> values;
  values.reserve(20000);
  uint64_t sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v =
        static_cast<uint64_t>(std::pow(2.0, rng.NextUniform(0.0, 40.0)));
    values.push_back(v);
    sum += v;
    histogram->Record(v);
  }
  std::sort(values.begin(), values.end());

  const obs::MetricsSnapshot snapshot = obs::Registry::Default().Snapshot();
  const obs::HistogramSnapshot* h =
      snapshot.histogram("test_quantile_oracle_nanos");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, values.size());
  EXPECT_EQ(h->sum, sum);

  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const size_t rank = std::min(
        values.size() - 1, static_cast<size_t>(q * values.size()));
    const double oracle = static_cast<double>(values[rank]);
    const double estimate = h->Quantile(q);
    // The estimate interpolates inside a bucket of <= 25% relative
    // width, so it must stay within that resolution of the true sample
    // quantile (small absolute slack for the exact low buckets).
    EXPECT_LE(estimate, oracle * 1.30 + 2.0) << "q=" << q;
    EXPECT_GE(estimate, oracle * 0.75 - 2.0) << "q=" << q;
  }
  // Degenerate inputs.
  obs::HistogramSnapshot empty;
  EXPECT_EQ(empty.Quantile(0.5), 0.0);
  EXPECT_EQ(empty.Mean(), 0.0);
}

// ---------------------------------------------------------------------------
// Snapshot codec: round trip, append-only, corruption
// ---------------------------------------------------------------------------

TEST(MetricsCodec, RoundTripIsAppendOnlyAndRejectsCorruption) {
  obs::MetricsSnapshot snapshot;
  snapshot.counters = {{"a_total", 7},
                       {"b_total{op=\"ping\"}", 912345678901ull}};
  snapshot.gauges = {{"depth", -5}, {"queue_bytes", 1 << 20}};
  obs::HistogramSnapshot histogram;
  histogram.name = "lat_nanos{op=\"range_search\"}";
  histogram.buckets = {{0, 2}, {17, 5}, {251, 1}};
  histogram.count = 8;  // must equal the bucket total for round-trip
  histogram.sum = 123456;
  snapshot.histograms.push_back(histogram);

  const Bytes encoded = obs::EncodeMetricsSnapshot(snapshot);
  auto decoded = obs::DecodeMetricsSnapshot(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectSnapshotsEqual(snapshot, *decoded);

  // Append-only envelope: a future revision appending an unknown block
  // must not break this decoder.
  Bytes extended = encoded;
  for (uint8_t junk : {0xde, 0xad, 0xbe, 0xef, 0x00}) {
    extended.push_back(junk);
  }
  auto decoded_extended = obs::DecodeMetricsSnapshot(extended);
  ASSERT_TRUE(decoded_extended.ok());
  ExpectSnapshotsEqual(snapshot, *decoded_extended);

  // A bucket index beyond the grid is corruption, not UB.
  {
    BinaryWriter writer;
    writer.WriteVarint(0);  // counters
    writer.WriteVarint(0);  // gauges
    writer.WriteVarint(1);  // histograms
    writer.WriteString("h");
    writer.WriteVarint(0);  // sum
    writer.WriteVarint(1);  // buckets
    writer.WriteVarint(obs::kHistogramBucketCount);  // first invalid index
    writer.WriteVarint(1);
    auto bad = obs::DecodeMetricsSnapshot(writer.TakeBuffer());
    EXPECT_FALSE(bad.ok());
  }
  // Non-ascending bucket indices are corruption too (the merge and the
  // Prometheus writer both rely on the ordering).
  {
    BinaryWriter writer;
    writer.WriteVarint(0);
    writer.WriteVarint(0);
    writer.WriteVarint(1);
    writer.WriteString("h");
    writer.WriteVarint(0);
    writer.WriteVarint(2);
    writer.WriteVarint(9);
    writer.WriteVarint(1);
    writer.WriteVarint(9);  // duplicate index
    writer.WriteVarint(1);
    auto bad = obs::DecodeMetricsSnapshot(writer.TakeBuffer());
    EXPECT_FALSE(bad.ok());
  }
  // Truncation anywhere inside the known blocks is an error, never a
  // partial snapshot.
  for (size_t cut = 1; cut < encoded.size(); ++cut) {
    auto truncated = obs::DecodeMetricsSnapshot(
        Bytes(encoded.begin(), encoded.begin() + cut));
    EXPECT_FALSE(truncated.ok()) << "cut at " << cut;
  }
}

// ---------------------------------------------------------------------------
// Merge semantics
// ---------------------------------------------------------------------------

TEST(MetricsMerge, CountersGaugesAndHistogramsSumElementWise) {
  obs::MetricsSnapshot a;
  a.counters = {{"x_total", 5}, {"y_total", 2}};
  a.gauges = {{"g", 4}};
  obs::HistogramSnapshot ha;
  ha.name = "h_nanos";
  ha.buckets = {{3, 1}, {10, 2}};
  ha.count = 3;
  ha.sum = 100;
  a.histograms.push_back(ha);

  obs::MetricsSnapshot b;
  b.counters = {{"y_total", 10}, {"z_total", 1}};
  b.gauges = {{"g", -1}, {"g2", 7}};
  obs::HistogramSnapshot hb;
  hb.name = "h_nanos";
  hb.buckets = {{10, 5}, {40, 1}};
  hb.count = 6;
  hb.sum = 900;
  b.histograms.push_back(hb);
  obs::HistogramSnapshot only_b;
  only_b.name = "only_b_nanos";
  only_b.buckets = {{0, 1}};
  only_b.count = 1;
  only_b.sum = 0;
  b.histograms.push_back(only_b);

  a.Merge(b);

  obs::MetricsSnapshot want;
  want.counters = {{"x_total", 5}, {"y_total", 12}, {"z_total", 1}};
  want.gauges = {{"g", 3}, {"g2", 7}};
  obs::HistogramSnapshot hw;
  hw.name = "h_nanos";
  hw.buckets = {{3, 1}, {10, 7}, {40, 1}};
  hw.count = 9;
  hw.sum = 1000;
  want.histograms.push_back(hw);
  want.histograms.push_back(only_b);
  ExpectSnapshotsEqual(want, a);
}

// ---------------------------------------------------------------------------
// Concurrency: sharded cells count exactly (TSan sweep target)
// ---------------------------------------------------------------------------

TEST(MetricsConcurrency, ConcurrentWritersLoseNoIncrements) {
  obs::Counter* counter =
      obs::Registry::Default().GetCounter("test_concurrent_total");
  obs::Histogram* histogram =
      obs::Registry::Default().GetHistogram("test_concurrent_nanos");
  constexpr int kThreads = 8;
  constexpr uint64_t kOpsPerThread = 150000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kOpsPerThread; ++i) {
        counter->Add(1);
        if (i % 16 == 0) histogram->Record(t * 1000 + i % 97);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(counter->Value(), kThreads * kOpsPerThread);
  const obs::MetricsSnapshot snapshot = obs::Registry::Default().Snapshot();
  const obs::HistogramSnapshot* h =
      snapshot.histogram("test_concurrent_nanos");
  ASSERT_NE(h, nullptr);
  // ceil(kOpsPerThread / 16) records per thread.
  EXPECT_EQ(h->count, kThreads * ((kOpsPerThread + 15) / 16));
  const uint64_t* c = snapshot.counter("test_concurrent_total");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(*c, kThreads * kOpsPerThread);
}

// ---------------------------------------------------------------------------
// Kill switch
// ---------------------------------------------------------------------------

TEST(MetricsToggle, DisabledRegistryIsInert) {
  SlowQueryGuard guard;
  obs::SetSlowQueryThresholdMs(-1);
  const bool was_enabled = obs::MetricsEnabled();
  obs::Counter* counter =
      obs::Registry::Default().GetCounter("test_toggle_total");
  obs::Histogram* histogram =
      obs::Registry::Default().GetHistogram("test_toggle_nanos");

  obs::SetMetricsEnabled(false);
  counter->Add(5);
  histogram->Record(1234);
  EXPECT_EQ(counter->Value(), 0u);
  // With metrics off and no slow-query threshold armed, the per-request
  // clock work is skipped entirely.
  EXPECT_FALSE(obs::TracingActive());

  obs::SetMetricsEnabled(true);
  counter->Add(2);
  EXPECT_EQ(counter->Value(), 2u);
  EXPECT_TRUE(obs::TracingActive());
  const obs::MetricsSnapshot snapshot = obs::Registry::Default().Snapshot();
  const obs::HistogramSnapshot* h = snapshot.histogram("test_toggle_nanos");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 0u);
  obs::SetMetricsEnabled(was_enabled);
}

// ---------------------------------------------------------------------------
// Slow-query log: exact boundary + structured line
// ---------------------------------------------------------------------------

TEST(SlowQuery, FiresExactlyAtTheThreshold) {
  SlowQueryGuard guard;
  obs::SetSlowQueryThresholdMs(5);
  EXPECT_FALSE(obs::ShouldLogSlowQuery(4999999));
  EXPECT_TRUE(obs::ShouldLogSlowQuery(5000000));  // exact threshold fires
  EXPECT_TRUE(obs::ShouldLogSlowQuery(5000001));
  obs::SetSlowQueryThresholdMs(0);
  EXPECT_TRUE(obs::ShouldLogSlowQuery(0));
  obs::SetSlowQueryThresholdMs(-1);
  EXPECT_FALSE(obs::ShouldLogSlowQuery(UINT64_MAX));  // disabled

  obs::TraceSpan span;
  span.set_opcode(10);  // ping
  span.set_shard(2);
  span.set_batch_size(8);
  span.AddDistanceComputations(41);
  span.AddStageNanos(obs::Stage::kQueueWait, 1500);
  span.AddStageNanos(obs::Stage::kIndexEval, 250000);
  const std::string line = obs::FormatSlowQueryLine(span, 7500000);
  EXPECT_NE(line.find("slow_query op=ping"), std::string::npos) << line;
  EXPECT_NE(line.find("total_ms=7.500"), std::string::npos) << line;
  EXPECT_NE(line.find("shard=2"), std::string::npos) << line;
  EXPECT_NE(line.find("batch=8"), std::string::npos) << line;
  EXPECT_NE(line.find("dist_comps=41"), std::string::npos) << line;
  EXPECT_NE(line.find("queue_us=1.5"), std::string::npos) << line;
  EXPECT_NE(line.find("index_us=250.0"), std::string::npos) << line;
}

// ---------------------------------------------------------------------------
// Sharded kGetMetrics: merge == sum of per-shard scrapes (exactness)
// ---------------------------------------------------------------------------

TEST(GetMetricsSharded, FacadeMergeEqualsSumOfPerShardScrapes) {
  constexpr size_t kShards = 3;
  mindex::MIndexOptions options;
  options.num_pivots = 4;
  options.bucket_capacity = 25;
  options.max_level = 3;
  auto facade = secure::ShardedServer::Create(options, kShards);
  ASSERT_TRUE(facade.ok()) << facade.status().ToString();

  // Make sure the scrape has content.
  obs::Registry::Default().GetCounter("test_sharded_total")->Add(11);
  obs::Registry::Default().GetHistogram("test_sharded_nanos")->Record(777);

  // Freeze the registry for the comparison window: every record call is
  // gated on the enabled flag, so no straggler thread can move a cell
  // between the reference snapshot and the shard snapshots.
  const bool was_enabled = obs::MetricsEnabled();
  obs::SetMetricsEnabled(false);

  // In-process shards all answer the one process-global registry, and
  // neither the facade fan-out nor the shard handlers record anything on
  // the in-process kGetMetrics path — so "scrape each shard, then merge"
  // is N identical snapshots summed, and the facade's answer must equal
  // it EXACTLY (counters, gauges, and histogram buckets pair-for-pair).
  const obs::MetricsSnapshot one = obs::Registry::Default().Snapshot();
  obs::MetricsSnapshot expected;
  for (size_t s = 0; s < kShards; ++s) expected.Merge(one);

  auto response = (*facade)->Handle(secure::EncodeGetMetricsRequest());
  obs::SetMetricsEnabled(was_enabled);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  auto merged = secure::DecodeMetricsResponse(*response);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  ExpectSnapshotsEqual(expected, *merged);

  const uint64_t* tripled = merged->counter("test_sharded_total");
  ASSERT_NE(tripled, nullptr);
  EXPECT_GE(*tripled, kShards * 11u);
}

// ---------------------------------------------------------------------------
// Slow-query log end to end: threshold 0 logs a real TCP request
// ---------------------------------------------------------------------------

TEST(SlowQuery, ThresholdZeroEmitsStructuredLineForTcpPing) {
  SlowQueryGuard guard;
  std::mutex mutex;
  std::vector<std::string> lines;
  obs::SetSlowQuerySinkForTest([&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex);
    lines.push_back(line);
  });
  obs::SetSlowQueryThresholdMs(0);  // every request is "slow"

  mindex::MIndexOptions options;
  options.num_pivots = 4;
  auto handler = secure::EncryptedMIndexServer::Create(options);
  ASSERT_TRUE(handler.ok());
  net::TcpServer server(handler->get());
  ASSERT_TRUE(server.Start(0).ok());

  auto transport = net::TcpTransport::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(transport.ok()) << transport.status().ToString();
  auto response = (*transport)->Call(secure::EncodePingRequest());
  ASSERT_TRUE(response.ok()) << response.status().ToString();

  // The worker emits the line when it finishes the span; the response
  // can race ahead of the sink call, so poll briefly.
  bool found = false;
  for (int i = 0; i < 200 && !found; ++i) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      for (const std::string& line : lines) {
        if (line.find("slow_query op=ping") != std::string::npos) {
          found = true;
          EXPECT_NE(line.find("total_ms="), std::string::npos) << line;
          EXPECT_NE(line.find("seal_us="), std::string::npos) << line;
        }
      }
    }
    if (!found) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(found) << "no slow_query line for the ping arrived";
  server.Stop();
}

// ---------------------------------------------------------------------------
// kGetMetrics end to end: 3-shard secure TCP cluster under churn
// ---------------------------------------------------------------------------

TEST(GetMetricsCluster, SecureShardedScrapeEndToEndUnderChurn) {
  constexpr size_t kShards = 3;
  constexpr size_t kDim = 8;
  constexpr double kRadius = 2.5;

  // Stable region for queries, far-away churn region for deletes
  // (pipeline_test.cc's layout).
  data::MixtureOptions stable_options;
  stable_options.num_objects = 200;
  stable_options.dimension = kDim;
  stable_options.num_clusters = 5;
  stable_options.seed = 411;
  const std::vector<VectorObject> stable =
      data::MakeGaussianMixture(stable_options);
  data::MixtureOptions churn_options;
  churn_options.num_objects = 150;
  churn_options.dimension = kDim;
  churn_options.num_clusters = 3;
  churn_options.seed = 412;
  std::vector<VectorObject> churn;
  for (const VectorObject& object : data::MakeGaussianMixture(churn_options)) {
    std::vector<float> values = object.values();
    for (float& v : values) v += 500.0f;
    churn.emplace_back(object.id() + 1000000, std::move(values));
  }
  std::vector<VectorObject> all = stable;
  all.insert(all.end(), churn.begin(), churn.end());

  auto metric = std::make_shared<metric::L2Distance>();
  auto pivots = mindex::PivotSet::SelectRandom(all, 8, 413);
  ASSERT_TRUE(pivots.ok());
  auto key = secure::SecretKey::Create(std::move(*pivots), Bytes(16, 0x72));
  ASSERT_TRUE(key.ok());

  mindex::MIndexOptions index_options;
  index_options.num_pivots = 8;
  index_options.bucket_capacity = 25;
  index_options.max_level = 4;
  index_options.cache_bytes = 256 * 1024;

  net::SecureChannelOptions secure_options;
  secure_options.psk = Bytes(32, 0x77);
  net::TcpServerOptions server_options;
  server_options.worker_threads = 2;
  server_options.channel_policy = net::ChannelPolicy::kSecure;
  server_options.secure_channel = secure_options;

  std::vector<std::unique_ptr<secure::EncryptedMIndexServer>> handlers;
  std::vector<std::unique_ptr<net::TcpServer>> servers;
  std::vector<std::vector<secure::ShardEndpoint>> replica_sets(kShards);
  for (size_t s = 0; s < kShards; ++s) {
    auto handler = secure::EncryptedMIndexServer::Create(index_options);
    ASSERT_TRUE(handler.ok()) << handler.status().ToString();
    handlers.push_back(std::move(*handler));
    servers.push_back(std::make_unique<net::TcpServer>(handlers.back().get(),
                                                       server_options));
    ASSERT_TRUE(servers.back()->Start(0).ok());
    replica_sets[s].push_back(
        secure::ShardEndpoint{"127.0.0.1", servers.back()->port()});
  }
  auto facade = secure::ShardedServer::Connect(
      replica_sets, index_options.num_pivots, net::ChannelPolicy::kSecure,
      secure_options);
  ASSERT_TRUE(facade.ok()) << facade.status().ToString();

  net::LoopbackTransport owner_transport(facade->get());
  secure::EncryptionClient owner(*key, metric, &owner_transport);
  ASSERT_TRUE(
      owner.InsertBulk(all, secure::InsertStrategy::kPrecise, 100).ok());

  // Facade-level counter sums are monotone across scrapes even while
  // churn runs (the merge is over live shard registries).
  auto sum_prefix = [](const obs::MetricsSnapshot& snapshot,
                       const std::string& prefix) {
    uint64_t total = 0;
    for (const auto& [name, value] : snapshot.counters) {
      if (name.rfind(prefix, 0) == 0) total += value;
    }
    return total;
  };

  std::atomic<bool> stop{false};
  std::atomic<int> worker_failures{0};
  std::thread querier([&] {
    net::LoopbackTransport transport(facade->get());
    secure::EncryptionClient client(*key, metric, &transport);
    Rng rng(414);
    while (!stop.load()) {
      const VectorObject& q = stable[rng.NextBounded(stable.size())];
      if (!client.RangeSearch(q, kRadius).ok()) worker_failures.fetch_add(1);
      if (!client.ApproxKnnBatch({q}, 5, 32).ok()) worker_failures.fetch_add(1);
    }
  });
  std::thread deleter([&] {
    net::LoopbackTransport transport(facade->get());
    secure::EncryptionClient client(*key, metric, &transport);
    for (size_t at = 0; at < churn.size() && !stop.load(); at += 25) {
      const size_t end = std::min(churn.size(), at + 25);
      std::vector<VectorObject> chunk(churn.begin() + at, churn.begin() + end);
      if (!client.DeleteBatch(chunk).ok()) worker_failures.fetch_add(1);
    }
  });

  // Scrape the facade repeatedly mid-churn: every scrape must decode and
  // the request totals must never move backwards.
  net::LoopbackTransport scrape_transport(facade->get());
  secure::EncryptionClient scraper(*key, metric, &scrape_transport);
  uint64_t last_requests = 0;
  for (int round = 0; round < 5; ++round) {
    auto scrape = scraper.GetMetrics();
    ASSERT_TRUE(scrape.ok()) << scrape.status().ToString();
    const uint64_t requests =
        sum_prefix(*scrape, "simcloud_requests_total");
    EXPECT_GE(requests, last_requests) << "round " << round;
    last_requests = requests;
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }

  deleter.join();
  stop.store(true);
  querier.join();
  EXPECT_EQ(worker_failures.load(), 0);

  // The deletes left dead bytes on every shard; a forced compaction must
  // run real passes and show up in the pass histogram.
  ASSERT_TRUE(owner.Compact(/*force=*/true).ok());

  auto final_scrape = scraper.GetMetrics();
  ASSERT_TRUE(final_scrape.ok()) << final_scrape.status().ToString();
  const obs::MetricsSnapshot& metrics = *final_scrape;

  // Per-opcode accounting reached the shard registries over secure TCP.
  const uint64_t* searches =
      metrics.counter("simcloud_requests_total{op=\"range_search\"}");
  ASSERT_NE(searches, nullptr);
  EXPECT_GT(*searches, 0u);
  const uint64_t* scrapes =
      metrics.counter("simcloud_requests_total{op=\"get_metrics\"}");
  ASSERT_NE(scrapes, nullptr);
  EXPECT_GE(*scrapes, kShards);  // at least one fan-out of the final scrape
  EXPECT_GT(sum_prefix(metrics, "simcloud_net_bytes_in_total"), 0u);
  EXPECT_GT(sum_prefix(metrics, "simcloud_net_bytes_out_total"), 0u);

  // Distance accounting: query evaluation and pivot permutations.
  const uint64_t* distances =
      metrics.counter("simcloud_distance_computations_total");
  ASSERT_NE(distances, nullptr);
  EXPECT_GT(*distances, 0u);
  const uint64_t* pivot_distances =
      metrics.counter("simcloud_pivot_distance_computations_total");
  ASSERT_NE(pivot_distances, nullptr);
  EXPECT_GT(*pivot_distances, 0u);

  // Payload cache saw traffic (cache_bytes is set on every shard).
  const uint64_t hits =
      sum_prefix(metrics, "simcloud_payload_cache_hits_total");
  const uint64_t misses =
      sum_prefix(metrics, "simcloud_payload_cache_misses_total");
  EXPECT_GT(hits + misses, 0u);

  // The PSK handshake histograms carry one sample per secure connection:
  // the facade dialed each shard at least once, on both sides.
  const obs::HistogramSnapshot* server_handshakes = metrics.histogram(
      "simcloud_secure_handshake_nanos{side=\"server\"}");
  ASSERT_NE(server_handshakes, nullptr);
  EXPECT_GE(server_handshakes->count, kShards);
  const obs::HistogramSnapshot* client_handshakes = metrics.histogram(
      "simcloud_secure_handshake_nanos{side=\"client\"}");
  ASSERT_NE(client_handshakes, nullptr);
  EXPECT_GE(client_handshakes->count, kShards);

  // Latency histograms are well-formed: quantiles are monotone.
  const obs::HistogramSnapshot* latency = metrics.histogram(
      "simcloud_request_nanos{op=\"range_search\"}");
  ASSERT_NE(latency, nullptr);
  EXPECT_GT(latency->count, 0u);
  EXPECT_LE(latency->Quantile(0.5), latency->Quantile(0.99));
  EXPECT_GT(latency->Mean(), 0.0);

  // The forced compaction after the delete churn recorded its passes.
  const obs::HistogramSnapshot* passes =
      metrics.histogram("simcloud_compaction_pass_nanos");
  ASSERT_NE(passes, nullptr);
  EXPECT_GE(passes->count, 1u);
  const uint64_t* moved =
      metrics.counter("simcloud_compaction_payloads_moved_total");
  ASSERT_NE(moved, nullptr);

  // The merged block re-encodes and re-decodes cleanly (what a facade of
  // facades, or tools/scrape_metrics.py --merge, would consume).
  auto reencoded =
      obs::DecodeMetricsSnapshot(obs::EncodeMetricsSnapshot(metrics));
  ASSERT_TRUE(reencoded.ok());
  ExpectSnapshotsEqual(metrics, *reencoded);

  facade->reset();
  for (auto& server : servers) server->Stop();
}

}  // namespace
}  // namespace simcloud
