// Baseline tests: each comparator (plain M-Index, trivial, EHI, MPT, FDH)
// must return correct (or plausibly approximate) results, so the Table 9
// comparison bench measures real algorithms, not broken ones.

#include <gtest/gtest.h>

#include "baselines/ehi.h"
#include "baselines/fdh.h"
#include "baselines/mpt.h"
#include "baselines/plain_mindex.h"
#include "baselines/trivial.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "metric/ground_truth.h"

namespace simcloud {
namespace baselines {
namespace {

using metric::VectorObject;

metric::Dataset MakeSmallDataset(uint64_t seed = 7) {
  data::MixtureOptions options;
  options.num_objects = 600;
  options.dimension = 8;
  options.num_clusters = 6;
  options.seed = seed;
  return metric::Dataset("test", data::MakeGaussianMixture(options),
                         std::make_shared<metric::L2Distance>());
}

// ------------------------------------------------------------ Plain index

TEST(PlainMIndexTest, ServerSideKnnMatchesGroundTruthWithFullCandidates) {
  auto dataset = MakeSmallDataset();
  auto pivots = mindex::PivotSet::SelectRandom(dataset.objects(), 10, 1);
  ASSERT_TRUE(pivots.ok());
  mindex::MIndexOptions options;
  options.num_pivots = 10;
  options.bucket_capacity = 50;
  options.max_level = 4;
  auto server = PlainMIndexServer::Create(options, std::move(pivots).value(),
                                          dataset.distance());
  ASSERT_TRUE(server.ok());
  net::LoopbackTransport transport(server->get());
  PlainClient client(&transport);
  ASSERT_TRUE(client.InsertBulk(dataset.objects(), 200).ok());

  Rng rng(2);
  for (int iter = 0; iter < 6; ++iter) {
    const VectorObject& query =
        dataset.objects()[rng.NextBounded(dataset.size())];
    const auto exact = metric::LinearKnnSearch(dataset, query, 10);
    // Candidate set = whole collection => exact result.
    auto answer = client.ApproxKnn(query, 10, dataset.size());
    ASSERT_TRUE(answer.ok());
    ASSERT_EQ(answer->size(), exact.size());
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ((*answer)[i].id, exact[i].id);
    }
  }
  EXPECT_GT((*server)->costs().distance_computations, 0u);
}

TEST(PlainMIndexTest, RangeSearchIsExact) {
  auto dataset = MakeSmallDataset(8);
  auto pivots = mindex::PivotSet::SelectRandom(dataset.objects(), 10, 1);
  ASSERT_TRUE(pivots.ok());
  mindex::MIndexOptions options;
  options.num_pivots = 10;
  options.max_level = 4;
  auto server = PlainMIndexServer::Create(options, std::move(pivots).value(),
                                          dataset.distance());
  ASSERT_TRUE(server.ok());
  net::LoopbackTransport transport(server->get());
  PlainClient client(&transport);
  ASSERT_TRUE(client.InsertBulk(dataset.objects(), 200).ok());

  Rng rng(3);
  for (int iter = 0; iter < 6; ++iter) {
    const VectorObject& query =
        dataset.objects()[rng.NextBounded(dataset.size())];
    const double radius = rng.NextUniform(10.0, 60.0);
    const auto exact = metric::LinearRangeSearch(dataset, query, radius);
    auto answer = client.RangeSearch(query, radius);
    ASSERT_TRUE(answer.ok());
    ASSERT_EQ(answer->size(), exact.size());
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ((*answer)[i].id, exact[i].id);
    }
  }
}

TEST(PlainMIndexTest, AnswerCommunicationIsConstantInCandSize) {
  // The paper's key contrast (Tables 7/8): the plain server returns only k
  // objects, so communication does not grow with the candidate set.
  auto dataset = MakeSmallDataset(9);
  auto pivots = mindex::PivotSet::SelectRandom(dataset.objects(), 10, 1);
  ASSERT_TRUE(pivots.ok());
  mindex::MIndexOptions options;
  options.num_pivots = 10;
  options.max_level = 4;
  auto server = PlainMIndexServer::Create(options, std::move(pivots).value(),
                                          dataset.distance());
  ASSERT_TRUE(server.ok());
  net::LoopbackTransport transport(server->get());
  PlainClient client(&transport);
  ASSERT_TRUE(client.InsertBulk(dataset.objects(), 200).ok());

  transport.ResetCosts();
  ASSERT_TRUE(client.ApproxKnn(dataset.objects()[0], 30, 50).ok());
  const uint64_t volume_small = transport.costs().bytes_received;
  transport.ResetCosts();
  ASSERT_TRUE(client.ApproxKnn(dataset.objects()[0], 30, 500).ok());
  const uint64_t volume_large = transport.costs().bytes_received;
  EXPECT_NEAR(static_cast<double>(volume_large),
              static_cast<double>(volume_small), volume_small * 0.1);
}

// --------------------------------------------------------------- Trivial

TEST(TrivialTest, ExactResultsAndFullDownload) {
  auto dataset = MakeSmallDataset(10);
  BlobStoreServer server;
  net::LoopbackTransport transport(&server);
  auto client = TrivialClient::Create(Bytes(16, 3), dataset.distance(),
                                      &transport);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->InsertBulk(dataset.objects(), 200).ok());
  EXPECT_EQ(server.size(), dataset.size());

  const VectorObject& query = dataset.objects()[17];
  const auto exact = metric::LinearKnnSearch(dataset, query, 7);
  transport.ResetCosts();
  auto answer = client->Knn(query, 7);
  ASSERT_TRUE(answer.ok());
  ASSERT_EQ(answer->size(), exact.size());
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ((*answer)[i].id, exact[i].id);
  }
  // The whole encrypted collection crossed the wire: >= n * (IV + 1 block).
  EXPECT_GE(transport.costs().bytes_received, dataset.size() * 32);
}

TEST(TrivialTest, RangeSearchIsExact) {
  auto dataset = MakeSmallDataset(11);
  BlobStoreServer server;
  net::LoopbackTransport transport(&server);
  auto client = TrivialClient::Create(Bytes(16, 3), dataset.distance(),
                                      &transport);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->InsertBulk(dataset.objects(), 200).ok());
  const VectorObject& query = dataset.objects()[3];
  const auto exact = metric::LinearRangeSearch(dataset, query, 30.0);
  auto answer = client->RangeSearch(query, 30.0);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->size(), exact.size());
}

// ------------------------------------------------------------------- EHI

class EhiTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EhiTest, KnnIsExact) {
  auto dataset = MakeSmallDataset(GetParam());
  EhiNodeStoreServer server;
  net::LoopbackTransport transport(&server);
  auto client =
      EhiClient::Create(Bytes(16, 4), dataset.distance(), &transport);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->BuildAndUpload(dataset.objects()).ok());
  EXPECT_GT(server.node_count(), 1u);

  Rng rng(GetParam() + 100);
  for (int iter = 0; iter < 5; ++iter) {
    const VectorObject& query =
        dataset.objects()[rng.NextBounded(dataset.size())];
    const auto exact = metric::LinearKnnSearch(dataset, query, 5);
    auto answer = client->Knn(query, 5);
    ASSERT_TRUE(answer.ok());
    ASSERT_EQ(answer->size(), exact.size());
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ((*answer)[i].id, exact[i].id) << "query iter " << iter;
    }
  }
  EXPECT_GT(client->costs().nodes_fetched, 0u);
  EXPECT_GT(client->costs().decryption_nanos, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EhiTest, ::testing::Values(20, 21, 22));

TEST(EhiTest, RangeSearchIsExact) {
  auto dataset = MakeSmallDataset(25);
  EhiNodeStoreServer server;
  net::LoopbackTransport transport(&server);
  auto client =
      EhiClient::Create(Bytes(16, 4), dataset.distance(), &transport);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->BuildAndUpload(dataset.objects()).ok());

  const VectorObject& query = dataset.objects()[40];
  for (double radius : {5.0, 25.0, 80.0}) {
    const auto exact = metric::LinearRangeSearch(dataset, query, radius);
    auto answer = client->RangeSearch(query, radius);
    ASSERT_TRUE(answer.ok());
    ASSERT_EQ(answer->size(), exact.size()) << "radius " << radius;
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ((*answer)[i].id, exact[i].id);
    }
  }
}

TEST(EhiTest, DegenerateIdenticalObjectsStillBuild) {
  std::vector<VectorObject> identical;
  for (int i = 0; i < 200; ++i) {
    identical.emplace_back(i, std::vector<float>{1.0f, 2.0f});
  }
  EhiNodeStoreServer server;
  net::LoopbackTransport transport(&server);
  auto client = EhiClient::Create(
      Bytes(16, 4), std::make_shared<metric::L2Distance>(), &transport);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->BuildAndUpload(identical).ok());
  auto answer = client->Knn(VectorObject(999, {1.0f, 2.0f}), 3);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->size(), 3u);
}

TEST(EhiTest, CommunicationGrowsWithNodesFetched) {
  auto dataset = MakeSmallDataset(26);
  EhiNodeStoreServer server;
  net::LoopbackTransport transport(&server);
  auto client =
      EhiClient::Create(Bytes(16, 4), dataset.distance(), &transport);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->BuildAndUpload(dataset.objects()).ok());
  transport.ResetCosts();
  client->ResetCosts();
  ASSERT_TRUE(client->Knn(dataset.objects()[0], 5).ok());
  EXPECT_EQ(transport.costs().calls, client->costs().nodes_fetched);
  EXPECT_GT(transport.costs().calls, 1u);
}

// ------------------------------------------------------------------- MPT

TEST(MptTest, RangeSearchIsExact) {
  auto dataset = MakeSmallDataset(30);
  MptServer server;
  net::LoopbackTransport transport(&server);
  auto client =
      MptClient::Create(Bytes(16, 5), dataset.distance(), &transport);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->BuildKey(dataset.SampleQueries(150, 31)).ok());
  ASSERT_TRUE(client->InsertBulk(dataset.objects(), 200).ok());
  EXPECT_EQ(server.size(), dataset.size());

  Rng rng(32);
  for (int iter = 0; iter < 5; ++iter) {
    const VectorObject& query =
        dataset.objects()[rng.NextBounded(dataset.size())];
    const double radius = rng.NextUniform(10.0, 50.0);
    const auto exact = metric::LinearRangeSearch(dataset, query, radius);
    auto answer = client->RangeSearch(query, radius);
    ASSERT_TRUE(answer.ok());
    ASSERT_EQ(answer->size(), exact.size());
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ((*answer)[i].id, exact[i].id);
    }
  }
}

TEST(MptTest, KnnIsExact) {
  auto dataset = MakeSmallDataset(33);
  MptServer server;
  net::LoopbackTransport transport(&server);
  auto client =
      MptClient::Create(Bytes(16, 5), dataset.distance(), &transport);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->BuildKey(dataset.SampleQueries(150, 34)).ok());
  ASSERT_TRUE(client->InsertBulk(dataset.objects(), 200).ok());

  Rng rng(35);
  for (int iter = 0; iter < 5; ++iter) {
    const VectorObject& query =
        dataset.objects()[rng.NextBounded(dataset.size())];
    const auto exact = metric::LinearKnnSearch(dataset, query, 8);
    auto answer = client->Knn(query, 8);
    ASSERT_TRUE(answer.ok());
    ASSERT_EQ(answer->size(), exact.size());
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ((*answer)[i].id, exact[i].id);
    }
  }
  EXPECT_GT(client->costs().probe_rounds, 0u);
}

TEST(MptTest, RequiresBuildKeyFirst) {
  auto dataset = MakeSmallDataset(36);
  MptServer server;
  net::LoopbackTransport transport(&server);
  auto client =
      MptClient::Create(Bytes(16, 5), dataset.distance(), &transport);
  ASSERT_TRUE(client.ok());
  EXPECT_FALSE(client->InsertBulk(dataset.objects()).ok());
  EXPECT_FALSE(client->RangeSearch(dataset.objects()[0], 1.0).ok());
  EXPECT_FALSE(client->Knn(dataset.objects()[0], 3).ok());
}

// ------------------------------------------------------------------- FDH

TEST(FdhTest, KnnReturnsKWithReasonableRecall) {
  auto dataset = MakeSmallDataset(40);
  FdhServer server;
  net::LoopbackTransport transport(&server);
  auto client =
      FdhClient::Create(Bytes(16, 6), dataset.distance(), &transport);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->BuildKey(dataset.SampleQueries(150, 41)).ok());
  ASSERT_TRUE(client->InsertBulk(dataset.objects(), 200).ok());
  EXPECT_GT(server.bucket_count(), 1u);

  Rng rng(42);
  double recall_total = 0;
  const int query_count = 10;
  for (int iter = 0; iter < query_count; ++iter) {
    const VectorObject& query =
        dataset.objects()[rng.NextBounded(dataset.size())];
    const auto exact = metric::LinearKnnSearch(dataset, query, 5);
    auto answer = client->Knn(query, 5, 200);
    ASSERT_TRUE(answer.ok());
    EXPECT_EQ(answer->size(), 5u);
    recall_total += metric::RecallPercent(*answer, exact);
  }
  // Approximate: not exact, but with a third of the collection as the
  // candidate budget recall must be substantial.
  EXPECT_GT(recall_total / query_count, 50.0);
}

TEST(FdhTest, ValidatesConfiguration) {
  auto metric = std::make_shared<metric::L2Distance>();
  net::LoopbackTransport transport(nullptr);
  FdhOptions bad;
  bad.num_bits = 0;
  EXPECT_FALSE(FdhClient::Create(Bytes(16), metric, &transport, bad).ok());
  bad.num_bits = 65;
  EXPECT_FALSE(FdhClient::Create(Bytes(16), metric, &transport, bad).ok());

  auto dataset = MakeSmallDataset(43);
  auto client = FdhClient::Create(Bytes(16, 1), dataset.distance(), &transport);
  ASSERT_TRUE(client.ok());
  EXPECT_FALSE(client->BuildKey(dataset.SampleQueries(5, 1)).ok())
      << "sample smaller than num_bits must be rejected";
}

}  // namespace
}  // namespace baselines
}  // namespace simcloud
