// Batched query engine tests: FetchMany ordering on both storage
// backends, byte-identity of the batch opcodes with the single-query
// protocol (loopback and sharded), and payload-cache correctness across
// evictions.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/rng.h"
#include "common/serialize.h"
#include "data/synthetic.h"
#include "mindex/mindex.h"
#include "mindex/payload_cache.h"
#include "mindex/pivot_set.h"
#include "mindex/storage.h"
#include "secure/client.h"
#include "secure/protocol.h"
#include "secure/secret_key.h"
#include "secure/server.h"
#include "secure/sharded_server.h"

namespace simcloud {
namespace mindex {
namespace {

Bytes RandomPayload(Rng* rng, size_t max_len) {
  Bytes payload(1 + rng->NextBounded(max_len));
  for (auto& b : payload) b = static_cast<uint8_t>(rng->NextBounded(256));
  return payload;
}

// ------------------------------------------------------------- FetchMany

class FetchManyTest : public ::testing::TestWithParam<StorageKind> {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/simcloud_fetch_many_test.bin";
    auto storage = MakeStorage(GetParam(), path_);
    ASSERT_TRUE(storage.ok());
    storage_ = std::move(storage).value();
  }
  void TearDown() override {
    storage_.reset();
    std::remove(path_.c_str());
  }

  std::string path_;
  std::unique_ptr<BucketStorage> storage_;
};

TEST_P(FetchManyTest, ReturnsPayloadsInHandleOrderForShuffledHandles) {
  Rng rng(11);
  std::vector<PayloadHandle> handles;
  std::vector<Bytes> expected;
  for (int i = 0; i < 200; ++i) {
    Bytes payload = RandomPayload(&rng, 300);
    auto handle = storage_->Store(payload);
    ASSERT_TRUE(handle.ok());
    handles.push_back(*handle);
    expected.push_back(std::move(payload));
  }

  // Shuffle the handle order; out[i] must still match handles[i].
  std::vector<size_t> positions(handles.size());
  for (size_t i = 0; i < positions.size(); ++i) positions[i] = i;
  rng.Shuffle(positions);
  std::vector<PayloadHandle> shuffled;
  for (size_t pos : positions) shuffled.push_back(handles[pos]);

  std::vector<Bytes> fetched;
  ASSERT_TRUE(storage_->FetchMany(shuffled, &fetched).ok());
  ASSERT_EQ(fetched.size(), shuffled.size());
  for (size_t i = 0; i < shuffled.size(); ++i) {
    EXPECT_EQ(fetched[i], expected[positions[i]]) << "position " << i;
  }
}

TEST_P(FetchManyTest, HandlesDuplicatesEmptyBatchAndEmptyPayloads) {
  auto a = storage_->Store(Bytes{1, 2, 3});
  auto b = storage_->Store(Bytes{});
  auto c = storage_->Store(Bytes{9});
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());

  std::vector<Bytes> fetched;
  ASSERT_TRUE(storage_->FetchMany({}, &fetched).ok());
  EXPECT_TRUE(fetched.empty());

  const std::vector<PayloadHandle> handles = {*c, *a, *b, *a};
  ASSERT_TRUE(storage_->FetchMany(handles, &fetched).ok());
  ASSERT_EQ(fetched.size(), 4u);
  EXPECT_EQ(fetched[0], Bytes{9});
  EXPECT_EQ(fetched[1], (Bytes{1, 2, 3}));
  EXPECT_TRUE(fetched[2].empty());
  EXPECT_EQ(fetched[3], (Bytes{1, 2, 3}));
}

TEST_P(FetchManyTest, RejectsOutOfRangeHandle) {
  ASSERT_TRUE(storage_->Store(Bytes{1}).ok());
  std::vector<Bytes> fetched;
  const std::vector<PayloadHandle> handles = {0, 17};
  EXPECT_EQ(storage_->FetchMany(handles, &fetched).code(),
            StatusCode::kNotFound);
}

INSTANTIATE_TEST_SUITE_P(Backends, FetchManyTest,
                         ::testing::Values(StorageKind::kMemory,
                                           StorageKind::kDisk));

TEST(DiskStorageTest, OperationsAfterCloseFailCleanly) {
  const std::string path =
      testing::TempDir() + "/simcloud_disk_close_test.bin";
  auto storage = DiskStorage::Create(path);
  ASSERT_TRUE(storage.ok());
  ASSERT_TRUE((*storage)->Store(Bytes{1, 2}).ok());
  ASSERT_TRUE((*storage)->Close().ok());

  EXPECT_EQ((*storage)->Store(Bytes{3}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*storage)->Fetch(0).status().code(),
            StatusCode::kFailedPrecondition);
  std::vector<Bytes> fetched;
  const std::vector<PayloadHandle> handles = {0};
  EXPECT_EQ((*storage)->FetchMany(handles, &fetched).code(),
            StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(DiskStorageTest, TruncatedBackingFileIsCorruptionNotSilence) {
  const std::string path =
      testing::TempDir() + "/simcloud_disk_truncate_test.bin";
  auto storage = DiskStorage::Create(path);
  ASSERT_TRUE(storage.ok());
  auto handle = (*storage)->Store(Bytes(64, 0xAB));
  ASSERT_TRUE(handle.ok());

  // Truncate the backing file behind the storage's back.
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputc(0xAB, f);
  std::fclose(f);

  EXPECT_EQ((*storage)->Fetch(*handle).status().code(),
            StatusCode::kCorruption);
  std::vector<Bytes> fetched;
  const std::vector<PayloadHandle> handles = {*handle};
  EXPECT_EQ((*storage)->FetchMany(handles, &fetched).code(),
            StatusCode::kCorruption);
  std::remove(path.c_str());
}

// ---------------------------------------------------------- PayloadCache

class PayloadCacheTest : public ::testing::TestWithParam<StorageKind> {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/simcloud_payload_cache_test.bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::unique_ptr<PayloadCache> MakeCache(uint64_t capacity_bytes,
                                          size_t num_shards) {
    auto storage = MakeStorage(GetParam(), path_);
    EXPECT_TRUE(storage.ok());
    return std::make_unique<PayloadCache>(std::move(storage).value(),
                                          capacity_bytes, num_shards);
  }

  std::string path_;
};

TEST_P(PayloadCacheTest, ReturnsCorrectBytesAfterEviction) {
  // Capacity fits only a few payloads, so a scan evicts continuously.
  auto cache = MakeCache(/*capacity_bytes=*/400, /*num_shards=*/2);
  Rng rng(23);
  std::vector<PayloadHandle> handles;
  std::vector<Bytes> expected;
  for (int i = 0; i < 50; ++i) {
    Bytes payload = RandomPayload(&rng, 100);
    auto handle = cache->Store(payload);
    ASSERT_TRUE(handle.ok());
    handles.push_back(*handle);
    expected.push_back(std::move(payload));
  }

  for (int round = 0; round < 3; ++round) {
    for (size_t i = 0; i < handles.size(); ++i) {
      auto got = cache->Fetch(handles[i]);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(*got, expected[i]) << "round " << round << " handle " << i;
    }
  }
  const PayloadCache::CacheStats stats = cache->stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_LE(stats.cached_bytes, cache->capacity_bytes());
}

TEST_P(PayloadCacheTest, FetchManyMixesHitsAndMissesCorrectly) {
  auto cache = MakeCache(/*capacity_bytes=*/100000, /*num_shards=*/4);
  Rng rng(29);
  std::vector<PayloadHandle> handles;
  std::vector<Bytes> expected;
  for (int i = 0; i < 60; ++i) {
    Bytes payload = RandomPayload(&rng, 200);
    auto handle = cache->Store(payload);
    ASSERT_TRUE(handle.ok());
    handles.push_back(*handle);
    expected.push_back(std::move(payload));
  }
  // Warm half of the cache, then fetch everything in one batch.
  for (size_t i = 0; i < handles.size(); i += 2) {
    ASSERT_TRUE(cache->Fetch(handles[i]).ok());
  }
  std::vector<Bytes> fetched;
  ASSERT_TRUE(cache->FetchMany(handles, &fetched).ok());
  ASSERT_EQ(fetched.size(), handles.size());
  for (size_t i = 0; i < handles.size(); ++i) {
    EXPECT_EQ(fetched[i], expected[i]);
  }
  const PayloadCache::CacheStats stats = cache->stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);

  // Everything now cached: a second batch is all hits.
  const uint64_t misses_before = stats.misses;
  ASSERT_TRUE(cache->FetchMany(handles, &fetched).ok());
  EXPECT_EQ(cache->stats().misses, misses_before);
}

INSTANTIATE_TEST_SUITE_P(Backends, PayloadCacheTest,
                         ::testing::Values(StorageKind::kMemory,
                                           StorageKind::kDisk));

// ------------------------------------------- parallel == serial (batch)

// The parallel batch paths are pure schedule changes: with
// query_threads > 1 the distinct-query evaluation fans across workers,
// but every byte of the result — payload dictionary, per-query refs,
// stats — must match the serial engine exactly.
class ParallelBatchTest : public ::testing::TestWithParam<StorageKind> {
 protected:
  void SetUp() override {
    // The env override would make both indexes use the same thread
    // count, turning the comparison into a tautology.
    ::unsetenv("SIMCLOUD_QUERY_THREADS");
    serial_path_ = testing::TempDir() + "/simcloud_parallel_serial.bin";
    parallel_path_ = testing::TempDir() + "/simcloud_parallel_parallel.bin";
  }
  void TearDown() override {
    std::remove(serial_path_.c_str());
    std::remove(parallel_path_.c_str());
  }

  std::unique_ptr<MIndex> BuildIndex(
      const std::vector<metric::VectorObject>& objects,
      const PivotSet& pivots, const metric::DistanceFunction& metric,
      int query_threads, const std::string& path) {
    MIndexOptions options;
    options.num_pivots = pivots.size();
    options.bucket_capacity = 24;
    options.max_level = 4;
    options.storage_kind = GetParam();
    options.disk_path = path;
    options.query_threads = query_threads;
    auto index = MIndex::Create(options);
    EXPECT_TRUE(index.ok()) << index.status().ToString();
    for (const auto& object : objects) {
      std::vector<float> distances = pivots.ComputeDistances(object, metric);
      BinaryWriter payload;
      object.Serialize(&payload);
      Status st = (*index)->Insert(object.id(), std::move(distances), {},
                                   payload.buffer());
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
    return std::move(index).value();
  }

  static void ExpectIdentical(const BatchCandidates& serial,
                              const BatchCandidates& parallel,
                              const std::vector<SearchStats>& serial_stats,
                              const std::vector<SearchStats>& parallel_stats) {
    EXPECT_EQ(serial.payloads, parallel.payloads);
    ASSERT_EQ(serial.per_query.size(), parallel.per_query.size());
    for (size_t q = 0; q < serial.per_query.size(); ++q) {
      ASSERT_EQ(serial.per_query[q].size(), parallel.per_query[q].size())
          << "query " << q;
      for (size_t i = 0; i < serial.per_query[q].size(); ++i) {
        EXPECT_EQ(serial.per_query[q][i].id, parallel.per_query[q][i].id);
        EXPECT_EQ(serial.per_query[q][i].score,
                  parallel.per_query[q][i].score);
        EXPECT_EQ(serial.per_query[q][i].payload_index,
                  parallel.per_query[q][i].payload_index);
      }
    }
    ASSERT_EQ(serial_stats.size(), parallel_stats.size());
    for (size_t q = 0; q < serial_stats.size(); ++q) {
      EXPECT_EQ(serial_stats[q].cells_visited,
                parallel_stats[q].cells_visited) << "query " << q;
      EXPECT_EQ(serial_stats[q].cells_pruned, parallel_stats[q].cells_pruned);
      EXPECT_EQ(serial_stats[q].entries_scanned,
                parallel_stats[q].entries_scanned);
      EXPECT_EQ(serial_stats[q].entries_filtered,
                parallel_stats[q].entries_filtered);
      EXPECT_EQ(serial_stats[q].candidates, parallel_stats[q].candidates);
    }
  }

  std::string serial_path_;
  std::string parallel_path_;
};

TEST_P(ParallelBatchTest, BatchResultsAreByteIdenticalToSerial) {
  data::MixtureOptions mixture;
  mixture.num_objects = 300;
  mixture.dimension = 8;
  mixture.num_clusters = 8;
  mixture.seed = 77;
  const auto objects = data::MakeGaussianMixture(mixture);
  metric::L2Distance metric;
  auto pivots = PivotSet::SelectRandom(objects, 12, 78);
  ASSERT_TRUE(pivots.ok());

  auto serial = BuildIndex(objects, *pivots, metric, 0, serial_path_);
  auto parallel = BuildIndex(objects, *pivots, metric, 3, parallel_path_);
  ASSERT_NE(serial, nullptr);
  ASSERT_NE(parallel, nullptr);
  EXPECT_EQ(serial->options().query_threads, 0);
  EXPECT_EQ(parallel->options().query_threads, 3);

  // Range batch: varied radii, duplicated hot queries, one empty-result
  // radius. 17 queries over 9 distinct signatures.
  std::vector<RangeQuery> range_batch;
  for (size_t q = 0; q < 8; ++q) {
    RangeQuery query;
    query.pivot_distances =
        pivots->ComputeDistances(objects[q * 31], metric);
    query.radius = 0.4 + 0.25 * static_cast<double>(q % 4);
    range_batch.push_back(std::move(query));
  }
  range_batch.push_back(range_batch[2]);  // duplicates, interleaved
  range_batch.push_back(range_batch[5]);
  range_batch.push_back(range_batch[2]);
  RangeQuery empty_query;
  empty_query.pivot_distances =
      pivots->ComputeDistances(objects[111], metric);
  empty_query.radius = 1e-9;
  range_batch.push_back(empty_query);
  for (size_t q = 0; q < 5; ++q) range_batch.push_back(range_batch[q]);

  std::vector<SearchStats> serial_stats, parallel_stats;
  auto serial_range = serial->RangeSearchBatchCandidates(range_batch,
                                                         &serial_stats);
  auto parallel_range = parallel->RangeSearchBatchCandidates(
      range_batch, &parallel_stats);
  ASSERT_TRUE(serial_range.ok()) << serial_range.status().ToString();
  ASSERT_TRUE(parallel_range.ok()) << parallel_range.status().ToString();
  ExpectIdentical(*serial_range, *parallel_range, serial_stats,
                  parallel_stats);

  // k-NN batch: mixed candidate sizes, whole-cells variant, duplicates.
  std::vector<KnnQuery> knn_batch;
  for (size_t q = 0; q < 8; ++q) {
    QuerySignature signature;
    signature.pivot_distances =
        pivots->ComputeDistances(objects[q * 17 + 3], metric);
    signature.permutation =
        DistancesToPermutation(signature.pivot_distances);
    signature.whole_cells = (q % 3 == 0);
    knn_batch.push_back(
        KnnQuery{std::move(signature), 10 + 15 * (q % 4)});
  }
  knn_batch.push_back(knn_batch[1]);
  knn_batch.push_back(knn_batch[6]);
  knn_batch.push_back(knn_batch[1]);

  auto serial_knn = serial->ApproxKnnBatchCandidates(knn_batch,
                                                     &serial_stats);
  auto parallel_knn = parallel->ApproxKnnBatchCandidates(knn_batch,
                                                         &parallel_stats);
  ASSERT_TRUE(serial_knn.ok()) << serial_knn.status().ToString();
  ASSERT_TRUE(parallel_knn.ok()) << parallel_knn.status().ToString();
  ExpectIdentical(*serial_knn, *parallel_knn, serial_stats, parallel_stats);

  // Error behaviour is thread-count independent: a zero cand_size fails
  // identically on both engines.
  knn_batch[5].cand_size = 0;
  EXPECT_EQ(serial->ApproxKnnBatchCandidates(knn_batch, nullptr)
                .status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(parallel->ApproxKnnBatchCandidates(knn_batch, nullptr)
                .status().code(),
            StatusCode::kInvalidArgument);
}

TEST_P(ParallelBatchTest, MoreThreadsThanQueriesStillIdentical) {
  data::MixtureOptions mixture;
  mixture.num_objects = 120;
  mixture.dimension = 6;
  mixture.num_clusters = 4;
  mixture.seed = 91;
  const auto objects = data::MakeGaussianMixture(mixture);
  metric::L2Distance metric;
  auto pivots = PivotSet::SelectRandom(objects, 8, 92);
  ASSERT_TRUE(pivots.ok());

  auto serial = BuildIndex(objects, *pivots, metric, 1, serial_path_);
  auto parallel = BuildIndex(objects, *pivots, metric, 16, parallel_path_);
  ASSERT_NE(serial, nullptr);
  ASSERT_NE(parallel, nullptr);

  // Two distinct queries, 16 workers configured: the fan-out must clamp
  // to the distinct count and still match the serial result.
  std::vector<RangeQuery> batch;
  for (size_t q = 0; q < 2; ++q) {
    RangeQuery query;
    query.pivot_distances = pivots->ComputeDistances(objects[q], metric);
    query.radius = 0.9;
    batch.push_back(std::move(query));
  }
  std::vector<SearchStats> serial_stats, parallel_stats;
  auto serial_range = serial->RangeSearchBatchCandidates(batch,
                                                         &serial_stats);
  auto parallel_range = parallel->RangeSearchBatchCandidates(
      batch, &parallel_stats);
  ASSERT_TRUE(serial_range.ok());
  ASSERT_TRUE(parallel_range.ok());
  ExpectIdentical(*serial_range, *parallel_range, serial_stats,
                  parallel_stats);
}

INSTANTIATE_TEST_SUITE_P(Backends, ParallelBatchTest,
                         ::testing::Values(StorageKind::kMemory,
                                           StorageKind::kDisk));

TEST(QueryThreadsEnvTest, EnvOverridesOptionAtCreate) {
  ::setenv("SIMCLOUD_QUERY_THREADS", "5", 1);
  MIndexOptions options;
  options.num_pivots = 4;
  auto index = MIndex::Create(options);
  ::unsetenv("SIMCLOUD_QUERY_THREADS");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->options().query_threads, 5);

  ::setenv("SIMCLOUD_QUERY_THREADS", "not-a-number", 1);
  auto fallback = MIndex::Create(options);
  ::unsetenv("SIMCLOUD_QUERY_THREADS");
  ASSERT_TRUE(fallback.ok());
  EXPECT_EQ((*fallback)->options().query_threads, 0);

  options.query_threads = -1;
  EXPECT_EQ(MIndex::Create(options).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace mindex

// ------------------------------------------------- batch == single-query

namespace secure {
namespace {

using metric::VectorObject;

struct BatchWorld {
  metric::Dataset dataset{};
  SecretKey key;
  std::unique_ptr<net::RequestHandler> server;
  std::unique_ptr<net::LoopbackTransport> transport;
  std::unique_ptr<EncryptionClient> client;
};

BatchWorld MakeBatchWorld(size_t num_shards, InsertStrategy strategy,
                          uint64_t cache_bytes = 0) {
  BatchWorld world{
      .key =
          []() {
            auto pivots = mindex::PivotSet({VectorObject(0, {0.0f})});
            return SecretKey::Create(std::move(pivots), Bytes(16, 1)).value();
          }(),
      .server = nullptr,
      .transport = nullptr,
      .client = nullptr};

  data::MixtureOptions options;
  options.num_objects = 600;
  options.dimension = 8;
  options.num_clusters = 5;
  options.seed = 101;
  world.dataset = metric::Dataset("batch", data::MakeGaussianMixture(options),
                                  std::make_shared<metric::L2Distance>());

  const size_t num_pivots = 10;
  auto pivots =
      mindex::PivotSet::SelectRandom(world.dataset.objects(), num_pivots, 5);
  EXPECT_TRUE(pivots.ok());
  auto key = SecretKey::Create(std::move(pivots).value(), Bytes(16, 0x42));
  EXPECT_TRUE(key.ok());
  world.key = std::move(key).value();

  mindex::MIndexOptions index_options;
  index_options.num_pivots = num_pivots;
  index_options.bucket_capacity = 40;
  index_options.max_level = 4;
  index_options.cache_bytes = cache_bytes;
  if (num_shards <= 1) {
    auto server = EncryptedMIndexServer::Create(index_options);
    EXPECT_TRUE(server.ok());
    world.server = std::move(server).value();
  } else {
    auto server = ShardedServer::Create(index_options, num_shards);
    EXPECT_TRUE(server.ok());
    world.server = std::move(server).value();
  }
  world.transport =
      std::make_unique<net::LoopbackTransport>(world.server.get());
  world.client = std::make_unique<EncryptionClient>(
      world.key, world.dataset.distance(), world.transport.get());
  EXPECT_TRUE(world.client->InsertBulk(world.dataset.objects(), strategy).ok());
  return world;
}

std::vector<VectorObject> TestQueries(const BatchWorld& world, size_t count) {
  std::vector<VectorObject> queries;
  for (size_t i = 0; i < count; ++i) {
    queries.push_back(world.dataset.objects()[i * 37 % 600]);
  }
  return queries;
}

void ExpectSameCandidates(const CandidateResponse& batch,
                          const CandidateResponse& single, size_t q) {
  ASSERT_EQ(batch.candidates.size(), single.candidates.size()) << "query " << q;
  for (size_t c = 0; c < batch.candidates.size(); ++c) {
    EXPECT_EQ(batch.candidates[c].id, single.candidates[c].id)
        << "query " << q << " candidate " << c;
    EXPECT_EQ(batch.candidates[c].score, single.candidates[c].score)
        << "query " << q << " candidate " << c;
    EXPECT_EQ(batch.candidates[c].payload, single.candidates[c].payload)
        << "query " << q << " candidate " << c;
  }
  EXPECT_EQ(batch.stats.cells_visited, single.stats.cells_visited);
  EXPECT_EQ(batch.stats.entries_scanned, single.stats.entries_scanned);
  EXPECT_EQ(batch.stats.candidates, single.stats.candidates);
}

class BatchProtocolTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BatchProtocolTest, RangeBatchMatchesSingleQueryOpcodes) {
  BatchWorld world = MakeBatchWorld(GetParam(), InsertStrategy::kPrecise);
  const std::vector<VectorObject> queries = TestQueries(world, 16);
  const double radius = 1.5;

  std::vector<mindex::RangeQuery> batch;
  std::vector<Bytes> single_responses;
  for (const VectorObject& query : queries) {
    std::vector<float> distances =
        world.key.pivots().ComputeDistances(query, *world.dataset.distance());
    auto response =
        world.server->Handle(EncodeRangeSearchRequest(distances, radius));
    ASSERT_TRUE(response.ok());
    single_responses.push_back(std::move(response).value());
    batch.push_back(mindex::RangeQuery{std::move(distances), radius});
  }

  auto batch_response_bytes =
      world.server->Handle(EncodeRangeSearchBatchRequest(batch));
  ASSERT_TRUE(batch_response_bytes.ok());
  auto batch_responses = DecodeBatchCandidateResponse(*batch_response_bytes);
  ASSERT_TRUE(batch_responses.ok());
  ASSERT_EQ(batch_responses->query_count(), queries.size());

  for (size_t q = 0; q < queries.size(); ++q) {
    auto single = DecodeCandidateResponse(single_responses[q]);
    ASSERT_TRUE(single.ok());
    ExpectSameCandidates(batch_responses->Materialize(q), *single, q);
  }
}

TEST_P(BatchProtocolTest, ApproxKnnBatchMatchesSingleQueryOpcodes) {
  BatchWorld world = MakeBatchWorld(GetParam(), InsertStrategy::kPrecise);
  const std::vector<VectorObject> queries = TestQueries(world, 16);
  const uint64_t cand_size = 60;

  std::vector<mindex::KnnQuery> batch;
  std::vector<Bytes> single_responses;
  for (const VectorObject& query : queries) {
    std::vector<float> distances =
        world.key.pivots().ComputeDistances(query, *world.dataset.distance());
    mindex::QuerySignature signature;
    signature.pivot_distances = distances;
    signature.permutation = mindex::DistancesToPermutation(distances);
    auto response =
        world.server->Handle(EncodeApproxKnnRequest(signature, cand_size));
    ASSERT_TRUE(response.ok());
    single_responses.push_back(std::move(response).value());
    batch.push_back(mindex::KnnQuery{std::move(signature), cand_size});
  }

  auto batch_response_bytes =
      world.server->Handle(EncodeApproxKnnBatchRequest(batch));
  ASSERT_TRUE(batch_response_bytes.ok());
  auto batch_responses = DecodeBatchCandidateResponse(*batch_response_bytes);
  ASSERT_TRUE(batch_responses.ok());
  ASSERT_EQ(batch_responses->query_count(), queries.size());

  for (size_t q = 0; q < queries.size(); ++q) {
    auto single = DecodeCandidateResponse(single_responses[q]);
    ASSERT_TRUE(single.ok());
    ExpectSameCandidates(batch_responses->Materialize(q), *single, q);
  }
}

TEST(BatchProtocolTest, RepeatedQueriesInBatchMatchSinglesAndShareBytes) {
  // Memoized duplicates and the payload dictionary must not change
  // per-query answers — and the response must not grow linearly with the
  // number of repetitions of one hot query.
  BatchWorld world = MakeBatchWorld(1, InsertStrategy::kPrecise);
  const VectorObject& hot = world.dataset.objects()[7];
  std::vector<float> distances =
      world.key.pivots().ComputeDistances(hot, *world.dataset.distance());
  mindex::QuerySignature signature;
  signature.pivot_distances = distances;
  signature.permutation = mindex::DistancesToPermutation(distances);

  auto single_bytes =
      world.server->Handle(EncodeApproxKnnRequest(signature, 50));
  ASSERT_TRUE(single_bytes.ok());
  auto single = DecodeCandidateResponse(*single_bytes);
  ASSERT_TRUE(single.ok());

  const std::vector<mindex::KnnQuery> batch(
      32, mindex::KnnQuery{signature, 50});
  auto batch_bytes = world.server->Handle(EncodeApproxKnnBatchRequest(batch));
  ASSERT_TRUE(batch_bytes.ok());
  auto decoded = DecodeBatchCandidateResponse(*batch_bytes);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->query_count(), batch.size());
  for (size_t q = 0; q < batch.size(); ++q) {
    ExpectSameCandidates(decoded->Materialize(q), *single, q);
  }
  // Dictionary: 32 identical queries share one payload set.
  EXPECT_EQ(decoded->batch.payloads.size(), single->candidates.size());
  EXPECT_LT(batch_bytes->size(), 2 * single_bytes->size() + 32 * 1024);
}

INSTANTIATE_TEST_SUITE_P(SingleAndSharded, BatchProtocolTest,
                         ::testing::Values(1u, 3u));

TEST(BatchClientTest, RangeSearchBatchMatchesSingleSearches) {
  BatchWorld world =
      MakeBatchWorld(1, InsertStrategy::kPrecise, /*cache_bytes=*/1 << 20);
  const std::vector<VectorObject> queries = TestQueries(world, 8);
  const double radius = 1.2;

  auto batched = world.client->RangeSearchBatch(queries, radius);
  ASSERT_TRUE(batched.ok());
  ASSERT_EQ(batched->size(), queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    auto single = world.client->RangeSearch(queries[q], radius);
    ASSERT_TRUE(single.ok());
    ASSERT_EQ((*batched)[q].size(), single->size()) << "query " << q;
    for (size_t i = 0; i < single->size(); ++i) {
      EXPECT_EQ((*batched)[q][i].id, (*single)[i].id);
      EXPECT_DOUBLE_EQ((*batched)[q][i].distance, (*single)[i].distance);
    }
  }
}

TEST(BatchClientTest, ApproxKnnBatchMatchesSingleSearches) {
  BatchWorld world = MakeBatchWorld(1, InsertStrategy::kPermutationOnly);
  const std::vector<VectorObject> queries = TestQueries(world, 8);
  const size_t k = 10, cand_size = 80;

  auto batched = world.client->ApproxKnnBatch(queries, k, cand_size);
  ASSERT_TRUE(batched.ok());
  ASSERT_EQ(batched->size(), queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    auto single = world.client->ApproxKnn(queries[q], k, cand_size);
    ASSERT_TRUE(single.ok());
    ASSERT_EQ((*batched)[q].size(), single->size()) << "query " << q;
    for (size_t i = 0; i < single->size(); ++i) {
      EXPECT_EQ((*batched)[q][i].id, (*single)[i].id);
      EXPECT_DOUBLE_EQ((*batched)[q][i].distance, (*single)[i].distance);
    }
  }
}

TEST(BatchClientTest, BatchUsesOneRoundTrip) {
  BatchWorld world = MakeBatchWorld(1, InsertStrategy::kPrecise);
  const std::vector<VectorObject> queries = TestQueries(world, 12);

  world.transport->ResetCosts();
  ASSERT_TRUE(world.client->ApproxKnnBatch(queries, 5, 50).ok());
  EXPECT_EQ(world.transport->costs().calls, 1u);

  world.transport->ResetCosts();
  ASSERT_TRUE(world.client->RangeSearchBatch(queries, 1.0).ok());
  EXPECT_EQ(world.transport->costs().calls, 1u);
}

}  // namespace
}  // namespace secure
}  // namespace simcloud
