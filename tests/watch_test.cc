// End-to-end tests for live change streams (kWatch): ordered delivery
// against an in-memory oracle, resume tokens across reconnects, replay
// ring overflow, cancellation, legacy-framing rejection, slow-watcher
// backpressure isolation, range-filtered watches, and composite tokens
// over a sharded facade.
//
// CI runs this in both channel policies (SIMCLOUD_CHANNEL_POLICY=secure
// seals every frame — pushes included — in AEAD records).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "data/synthetic.h"
#include "net/tcp.h"
#include "secure/client.h"
#include "secure/server.h"
#include "secure/sharded_server.h"
#include "secure/watch.h"

namespace simcloud {
namespace secure {
namespace {

using metric::VectorObject;

net::ChannelPolicy PolicyFromEnv() {
  const char* env = std::getenv("SIMCLOUD_CHANNEL_POLICY");
  return env != nullptr && std::string(env) == "secure"
             ? net::ChannelPolicy::kSecure
             : net::ChannelPolicy::kPlaintext;
}

net::SecureChannelOptions WatchChannelOptions() {
  net::SecureChannelOptions options;
  options.psk = Bytes(32, 0x5A);
  options.rekey_after_records = 128;  // cross epoch boundaries mid-stream
  return options;
}

constexpr size_t kDim = 6;
constexpr int kEventTimeoutMs = 5000;

std::vector<VectorObject> MakeObjects(size_t count, uint64_t seed,
                                      float offset = 0.0f,
                                      uint64_t id_base = 0) {
  data::MixtureOptions options;
  options.num_objects = count;
  options.dimension = kDim;
  options.num_clusters = 3;
  options.seed = seed;
  std::vector<VectorObject> objects = data::MakeGaussianMixture(options);
  if (offset == 0.0f && id_base == 0) return objects;
  std::vector<VectorObject> shifted;
  shifted.reserve(objects.size());
  for (const VectorObject& object : objects) {
    std::vector<float> values = object.values();
    for (float& v : values) v += offset;
    shifted.emplace_back(object.id() + id_base, std::move(values));
  }
  return shifted;
}

/// The oracle's view of one applied mutation.
struct Mutation {
  bool insert = false;
  metric::ObjectId id = 0;
  std::vector<float> values;  // inserts only
};

/// Shared fixture state: a server handler behind a TCP listener plus the
/// secret key both clients share.
struct Cluster {
  std::shared_ptr<metric::L2Distance> metric;
  std::unique_ptr<SecretKey> key;
  std::unique_ptr<net::RequestHandler> handler;
  EncryptedMIndexServer* single = nullptr;  // white-box (single-node only)
  ShardedServer* sharded = nullptr;         // white-box (sharded only)
  std::unique_ptr<net::TcpServer> server;
  net::ChannelPolicy policy = net::ChannelPolicy::kPlaintext;

  Result<std::unique_ptr<net::TcpTransport>> Connect() const {
    return net::TcpTransport::Connect("127.0.0.1", server->port(), policy,
                                      WatchChannelOptions());
  }
};

Cluster StartCluster(const std::vector<VectorObject>& pivot_pool,
                     size_t num_shards, size_t watch_ring_capacity = 4096,
                     size_t max_output_queue_bytes = 8u << 20) {
  Cluster cluster;
  cluster.metric = std::make_shared<metric::L2Distance>();
  auto pivots = mindex::PivotSet::SelectRandom(pivot_pool, 8, 1301);
  EXPECT_TRUE(pivots.ok());
  auto key = SecretKey::Create(std::move(pivots).value(), Bytes(16, 0x42));
  EXPECT_TRUE(key.ok());
  cluster.key = std::make_unique<SecretKey>(std::move(*key));

  mindex::MIndexOptions options;
  options.num_pivots = 8;
  options.bucket_capacity = 25;
  options.max_level = 4;
  options.watch_ring_capacity = watch_ring_capacity;
  if (num_shards <= 1) {
    auto server = EncryptedMIndexServer::Create(options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    cluster.single = server->get();
    cluster.handler = std::move(*server);
  } else {
    auto server = ShardedServer::Create(options, num_shards);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    cluster.sharded = server->get();
    cluster.handler = std::move(*server);
  }

  cluster.policy = PolicyFromEnv();
  net::TcpServerOptions server_options;
  server_options.channel_policy = cluster.policy;
  server_options.max_output_queue_bytes = max_output_queue_bytes;
  if (cluster.policy == net::ChannelPolicy::kSecure) {
    server_options.secure_channel = WatchChannelOptions();
  }
  cluster.server =
      std::make_unique<net::TcpServer>(cluster.handler.get(), server_options);
  EXPECT_TRUE(cluster.server->Start(0).ok());
  return cluster;
}

/// Applies `objects` as inserts then deletes `deletions` of them through
/// `writer`, appending each applied mutation to `oracle` in order.
void ApplyChurn(EncryptionClient* writer,
                const std::vector<VectorObject>& objects,
                const std::vector<VectorObject>& deletions,
                std::vector<Mutation>* oracle) {
  ASSERT_TRUE(
      writer->InsertBulk(objects, InsertStrategy::kPrecise, 64).ok());
  for (const VectorObject& object : objects) {
    oracle->push_back(Mutation{true, object.id(), object.values()});
  }
  for (const VectorObject& object : deletions) {
    ASSERT_TRUE(writer->Delete(object).ok());
    oracle->push_back(Mutation{false, object.id(), {}});
  }
}

/// One expected-vs-received check, byte-level for inserts.
void ExpectEventMatches(const WatchEvent& event, const Mutation& expected) {
  if (expected.insert) {
    ASSERT_EQ(event.kind, WatchEvent::Kind::kInsert);
    EXPECT_EQ(event.id, expected.id);
    ASSERT_EQ(event.object.id(), expected.id);
    ASSERT_EQ(event.object.values().size(), expected.values.size());
    for (size_t d = 0; d < expected.values.size(); ++d) {
      EXPECT_EQ(event.object.values()[d], expected.values[d])
          << "decrypted insert payload diverges at dim " << d;
    }
  } else {
    ASSERT_EQ(event.kind, WatchEvent::Kind::kDelete);
    EXPECT_EQ(event.id, expected.id);
  }
}

TEST(WatchTest, DeliversMutationsInOrderByteVerified) {
  const std::vector<VectorObject> objects = MakeObjects(120, 1401);
  Cluster cluster = StartCluster(objects, /*num_shards=*/1);

  auto writer_transport = cluster.Connect();
  ASSERT_TRUE(writer_transport.ok());
  EncryptionClient writer(*cluster.key, cluster.metric,
                          writer_transport->get());
  auto watcher_transport = cluster.Connect();
  ASSERT_TRUE(watcher_transport.ok());
  EncryptionClient watcher(*cluster.key, cluster.metric,
                           watcher_transport->get());

  auto stream = watcher.WatchAll();
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  ASSERT_EQ((*stream)->resume_token().size(), 1u);

  std::vector<Mutation> oracle;
  ApplyChurn(&writer, objects,
             {objects.begin(), objects.begin() + 30}, &oracle);

  std::vector<uint64_t> last_token;
  for (size_t i = 0; i < oracle.size(); ++i) {
    auto event = (*stream)->Next(kEventTimeoutMs);
    ASSERT_TRUE(event.ok())
        << "event " << i << ": " << event.status().ToString();
    ExpectEventMatches(*event, oracle[i]);
    ASSERT_EQ(event->resume_token.size(), 1u);
    if (!last_token.empty()) {
      EXPECT_GT(event->resume_token[0], last_token[0])
          << "resume tokens must advance strictly";
    }
    last_token = event->resume_token;
  }
  // Nothing extra arrives: the stream delivered exactly the oracle.
  auto extra = (*stream)->Next(100);
  EXPECT_FALSE(extra.ok());
  EXPECT_EQ(extra.status().code(), StatusCode::kDeadlineExceeded);

  EXPECT_TRUE((*stream)->Cancel().ok());
  stream->reset();
  cluster.server->Stop();
}

TEST(WatchTest, ResumeTokenReplaysExactlyTheMissedEvents) {
  const std::vector<VectorObject> objects = MakeObjects(100, 1402);
  Cluster cluster = StartCluster(objects, /*num_shards=*/1);

  auto writer_transport = cluster.Connect();
  ASSERT_TRUE(writer_transport.ok());
  EncryptionClient writer(*cluster.key, cluster.metric,
                          writer_transport->get());

  std::vector<Mutation> oracle;
  std::vector<uint64_t> token;
  constexpr size_t kConsumed = 25;
  {
    auto watcher_transport = cluster.Connect();
    ASSERT_TRUE(watcher_transport.ok());
    EncryptionClient watcher(*cluster.key, cluster.metric,
                             watcher_transport->get());
    auto stream = watcher.WatchAll();
    ASSERT_TRUE(stream.ok());

    ApplyChurn(&writer, {objects.begin(), objects.begin() + 50},
               {objects.begin(), objects.begin() + 10}, &oracle);
    for (size_t i = 0; i < kConsumed; ++i) {
      auto event = (*stream)->Next(kEventTimeoutMs);
      ASSERT_TRUE(event.ok());
      ExpectEventMatches(*event, oracle[i]);
    }
    token = (*stream)->resume_token();
    // The watcher drops off the face of the earth: no cancel, the
    // stream and its whole connection just go away.
  }

  // More churn while nobody is watching.
  ApplyChurn(&writer, {objects.begin() + 50, objects.end()},
             {objects.begin() + 10, objects.begin() + 20}, &oracle);

  // Reconnect and resume: exactly the missed suffix, nothing twice.
  auto watcher_transport = cluster.Connect();
  ASSERT_TRUE(watcher_transport.ok());
  EncryptionClient watcher(*cluster.key, cluster.metric,
                           watcher_transport->get());
  auto resumed = watcher.WatchAll(token);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  for (size_t i = kConsumed; i < oracle.size(); ++i) {
    auto event = (*resumed)->Next(kEventTimeoutMs);
    ASSERT_TRUE(event.ok())
        << "event " << i << ": " << event.status().ToString();
    ExpectEventMatches(*event, oracle[i]);
  }
  auto extra = (*resumed)->Next(100);
  EXPECT_FALSE(extra.ok());
  EXPECT_EQ(extra.status().code(), StatusCode::kDeadlineExceeded);

  EXPECT_TRUE((*resumed)->Cancel().ok());
  resumed->reset();
  cluster.server->Stop();
}

TEST(WatchTest, OverflowedResumeTokenReportsWatchLost) {
  const std::vector<VectorObject> objects = MakeObjects(80, 1403);
  // Tiny replay ring: 4 events, then history is gone.
  Cluster cluster = StartCluster(objects, /*num_shards=*/1,
                                 /*watch_ring_capacity=*/4);

  auto transport = cluster.Connect();
  ASSERT_TRUE(transport.ok());
  EncryptionClient client(*cluster.key, cluster.metric, transport->get());

  // Baseline token from a fresh (immediately cancelled) watch.
  std::vector<uint64_t> stale_token;
  {
    auto stream = client.WatchAll();
    ASSERT_TRUE(stream.ok());
    stale_token = (*stream)->resume_token();
    EXPECT_TRUE((*stream)->Cancel().ok());
  }

  // 80 inserts blow far past the 4-slot ring.
  ASSERT_TRUE(
      client.InsertBulk(objects, InsertStrategy::kPrecise, 40).ok());

  auto resumed = client.WatchAll(stale_token);
  ASSERT_FALSE(resumed.ok());
  EXPECT_TRUE(EncryptionClient::IsWatchLost(resumed.status()))
      << resumed.status().ToString();

  // The connection survives the rejected registration, and a FRESH
  // watch works: the client re-runs its query and starts over.
  ASSERT_TRUE(client.Ping().ok());
  auto fresh = client.WatchAll();
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE((*fresh)->Cancel().ok());
  fresh->reset();
  cluster.server->Stop();
}

TEST(WatchTest, CancelStopsDeliveryAndLeavesConnectionUsable) {
  const std::vector<VectorObject> objects = MakeObjects(60, 1404);
  Cluster cluster = StartCluster(objects, /*num_shards=*/1);

  auto transport = cluster.Connect();
  ASSERT_TRUE(transport.ok());
  EncryptionClient client(*cluster.key, cluster.metric, transport->get());

  auto stream = client.WatchAll();
  ASSERT_TRUE(stream.ok());
  ASSERT_EQ(cluster.single->watch_hub()->active(), 1u);

  ASSERT_TRUE(client
                  .InsertBulk({objects.begin(), objects.begin() + 10},
                              InsertStrategy::kPrecise, 10)
                  .ok());
  auto first = (*stream)->Next(kEventTimeoutMs);
  ASSERT_TRUE(first.ok());

  ASSERT_TRUE((*stream)->Cancel().ok());
  EXPECT_TRUE((*stream)->finished());
  EXPECT_EQ(cluster.single->watch_hub()->active(), 0u);
  auto after = (*stream)->Next(100);
  EXPECT_EQ(after.status().code(), StatusCode::kFailedPrecondition);

  // Same connection keeps serving ordinary traffic.
  ASSERT_TRUE(client.Ping().ok());
  auto found = client.RangeSearch(objects[0], 1.0);
  ASSERT_TRUE(found.ok());
  auto stats = client.GetServerStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->object_count, 10u);

  stream->reset();
  cluster.server->Stop();
}

TEST(WatchTest, LegacyFramingGetsCleanErrorAndStaysUsable) {
  const std::vector<VectorObject> objects = MakeObjects(40, 1405);
  Cluster cluster = StartCluster(objects, /*num_shards=*/1);

  auto transport = cluster.Connect();
  ASSERT_TRUE(transport.ok());

  // Call() speaks the legacy (bit-31-clear, id 0) framing: the server
  // cannot push on it, so kWatch must answer a clean error frame.
  auto answered = (*transport)->Call(EncodeWatchRequest(WatchFilter{}, {}));
  ASSERT_FALSE(answered.ok());
  EXPECT_NE(answered.status().message().find("kWatch needs"),
            std::string::npos)
      << answered.status().ToString();

  // ...and the connection is not poisoned: legacy and pipelined traffic
  // both keep working on it.
  EncryptionClient client(*cluster.key, cluster.metric, transport->get());
  ASSERT_TRUE(client.Ping().ok());
  ASSERT_TRUE(client.InsertBulk(objects, InsertStrategy::kPrecise, 40).ok());
  auto stream = client.WatchAll();
  ASSERT_TRUE(stream.ok());
  EXPECT_TRUE((*stream)->Cancel().ok());
  stream->reset();
  cluster.server->Stop();
}

TEST(WatchTest, SlowWatcherParksWithoutStallingOtherConnections) {
  const std::vector<VectorObject> objects = MakeObjects(300, 1406);
  // Small output queue: a never-reading watcher hits it fast.
  Cluster cluster = StartCluster(objects, /*num_shards=*/1,
                                 /*watch_ring_capacity=*/4096,
                                 /*max_output_queue_bytes=*/16 * 1024);

  auto watcher_transport = cluster.Connect();
  ASSERT_TRUE(watcher_transport.ok());
  EncryptionClient watcher(*cluster.key, cluster.metric,
                           watcher_transport->get());
  auto stream = watcher.WatchAll();
  ASSERT_TRUE(stream.ok());

  auto writer_transport = cluster.Connect();
  ASSERT_TRUE(writer_transport.ok());
  EncryptionClient writer(*cluster.key, cluster.metric,
                          writer_transport->get());
  // The watcher never reads while these land: its connection parks at
  // the bounded output queue; the hub holds its cursor.
  ASSERT_TRUE(writer.InsertBulk(objects, InsertStrategy::kPrecise, 50).ok());

  // Other connections stay fully served while the watcher is parked.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(writer.Ping().ok());
    auto stats = writer.GetServerStats();
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->object_count, objects.size());
    auto answers = writer.RangeSearch(objects[i], 1.0);
    ASSERT_TRUE(answers.ok());
  }

  // When the watcher finally reads, the stream is the oracle prefix —
  // parked, not corrupted: no gap, no reorder, byte-identical inserts.
  for (size_t i = 0; i < objects.size(); ++i) {
    auto event = (*stream)->Next(kEventTimeoutMs);
    ASSERT_TRUE(event.ok())
        << "event " << i << ": " << event.status().ToString();
    ExpectEventMatches(*event,
                       Mutation{true, objects[i].id(), objects[i].values()});
  }

  EXPECT_TRUE((*stream)->Cancel().ok());
  stream->reset();
  cluster.server->Stop();
}

TEST(WatchTest, RangeWatchDeliversAllTrueMatchesAndAllDeletes) {
  const std::vector<VectorObject> near = MakeObjects(60, 1407);
  const std::vector<VectorObject> far =
      MakeObjects(60, 1408, /*offset=*/500.0f, /*id_base=*/1000000);
  std::vector<VectorObject> all = near;
  all.insert(all.end(), far.begin(), far.end());
  Cluster cluster = StartCluster(all, /*num_shards=*/1);

  auto writer_transport = cluster.Connect();
  ASSERT_TRUE(writer_transport.ok());
  EncryptionClient writer(*cluster.key, cluster.metric,
                          writer_transport->get());
  auto watcher_transport = cluster.Connect();
  ASSERT_TRUE(watcher_transport.ok());
  EncryptionClient watcher(*cluster.key, cluster.metric,
                           watcher_transport->get());

  const VectorObject& query = near[0];
  constexpr double kRadius = 25.0;
  auto stream = watcher.Watch(query, kRadius);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();

  ASSERT_TRUE(writer.InsertBulk(all, InsertStrategy::kPrecise, 40).ok());
  // Deletes always flow, matching or not; the far delete doubles as the
  // stream's end-of-churn sentinel (per-stream order == bus order).
  ASSERT_TRUE(writer.Delete(near[1]).ok());
  ASSERT_TRUE(writer.Delete(far[0]).ok());

  std::map<metric::ObjectId, bool> inserts_seen;  // id -> byte-verified
  std::vector<metric::ObjectId> deletes_seen;
  for (;;) {
    auto event = (*stream)->Next(kEventTimeoutMs);
    ASSERT_TRUE(event.ok()) << event.status().ToString();
    if (event->kind == WatchEvent::Kind::kDelete) {
      deletes_seen.push_back(event->id);
      if (event->id == far[0].id()) break;  // sentinel
      continue;
    }
    ASSERT_EQ(event->kind, WatchEvent::Kind::kInsert);
    inserts_seen[event->id] = true;
  }

  // Every insert whose TRUE distance admits it into the radius must
  // have been delivered (the pivot bound is a lower bound, so the
  // filter may deliver extra candidates but can never drop a match).
  for (const VectorObject& object : all) {
    if (cluster.metric->Distance(query, object) <= kRadius) {
      EXPECT_TRUE(inserts_seen.count(object.id()))
          << "true range match " << object.id() << " was filtered out";
    }
  }
  ASSERT_EQ(deletes_seen.size(), 2u);
  EXPECT_EQ(deletes_seen[0], near[1].id());
  EXPECT_EQ(deletes_seen[1], far[0].id());

  EXPECT_TRUE((*stream)->Cancel().ok());
  stream->reset();
  cluster.server->Stop();
}

TEST(WatchTest, MatchesInsertUsesTheRangeLowerBound) {
  WatchFilter all;
  EXPECT_TRUE(WatchHub::MatchesInsert(all, {1, 2, 3}));

  WatchFilter range;
  range.kind = WatchFilter::Kind::kRange;
  range.query_distances = {10.0f, 20.0f};
  range.radius = 5.0;
  EXPECT_TRUE(WatchHub::MatchesInsert(range, {12.0f, 18.0f}));   // bound 2
  EXPECT_TRUE(WatchHub::MatchesInsert(range, {15.0f, 20.0f}));   // bound 5
  EXPECT_FALSE(WatchHub::MatchesInsert(range, {16.0f, 20.0f}));  // bound 6
  EXPECT_FALSE(WatchHub::MatchesInsert(range, {10.0f, 40.0f}));  // bound 20
  // No usable distances: deliver conservatively.
  EXPECT_TRUE(WatchHub::MatchesInsert(range, {}));
  EXPECT_TRUE(WatchHub::MatchesInsert(range, {1.0f, 2.0f, 3.0f}));
}

TEST(WatchTest, ShardedFacadeMergesStreamsWithCompositeTokens) {
  const std::vector<VectorObject> objects = MakeObjects(150, 1409);
  Cluster cluster = StartCluster(objects, /*num_shards=*/3);

  auto writer_transport = cluster.Connect();
  ASSERT_TRUE(writer_transport.ok());
  EncryptionClient writer(*cluster.key, cluster.metric,
                          writer_transport->get());

  // Phase 1: consume half the churn, keep the composite token.
  std::vector<Mutation> oracle;
  std::map<metric::ObjectId, size_t> insert_seen, delete_seen;
  std::vector<uint64_t> token;
  size_t consumed = 0;
  {
    auto watcher_transport = cluster.Connect();
    ASSERT_TRUE(watcher_transport.ok());
    EncryptionClient watcher(*cluster.key, cluster.metric,
                             watcher_transport->get());
    auto stream = watcher.WatchAll();
    ASSERT_TRUE(stream.ok()) << stream.status().ToString();
    ASSERT_EQ((*stream)->resume_token().size(), 3u)
        << "composite token must carry one cursor per shard";

    ApplyChurn(&writer, objects, {objects.begin(), objects.begin() + 40},
               &oracle);
    std::vector<uint64_t> previous = (*stream)->resume_token();
    for (consumed = 0; consumed < oracle.size() / 2; ++consumed) {
      auto event = (*stream)->Next(kEventTimeoutMs);
      ASSERT_TRUE(event.ok()) << event.status().ToString();
      ASSERT_EQ(event->resume_token.size(), 3u);
      for (size_t s = 0; s < 3; ++s) {
        EXPECT_GE(event->resume_token[s], previous[s])
            << "per-shard cursors never move backwards";
      }
      previous = event->resume_token;
      if (event->kind == WatchEvent::Kind::kInsert) {
        ++insert_seen[event->id];
      } else {
        ++delete_seen[event->id];
      }
    }
    token = (*stream)->resume_token();
    // Drop the watcher without cancelling (connection loss).
  }

  // Phase 2: resume with the composite token; the union of both phases
  // must equal the oracle exactly — every event once, none twice.
  auto watcher_transport = cluster.Connect();
  ASSERT_TRUE(watcher_transport.ok());
  EncryptionClient watcher(*cluster.key, cluster.metric,
                           watcher_transport->get());
  auto resumed = watcher.WatchAll(token);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  for (size_t i = consumed; i < oracle.size(); ++i) {
    auto event = (*resumed)->Next(kEventTimeoutMs);
    ASSERT_TRUE(event.ok())
        << "event " << i << ": " << event.status().ToString();
    if (event->kind == WatchEvent::Kind::kInsert) {
      // Byte-verify against the oracle's record of this id.
      bool found = false;
      for (const Mutation& mutation : oracle) {
        if (mutation.insert && mutation.id == event->id) {
          ASSERT_EQ(event->object.values(), mutation.values);
          found = true;
          break;
        }
      }
      ASSERT_TRUE(found) << "insert event for unknown id " << event->id;
      ++insert_seen[event->id];
    } else {
      ASSERT_EQ(event->kind, WatchEvent::Kind::kDelete);
      ++delete_seen[event->id];
    }
  }
  auto extra = (*resumed)->Next(100);
  EXPECT_FALSE(extra.ok());

  size_t oracle_inserts = 0, oracle_deletes = 0;
  for (const Mutation& mutation : oracle) {
    if (mutation.insert) {
      ++oracle_inserts;
      EXPECT_EQ(insert_seen[mutation.id], 1u)
          << "insert " << mutation.id << " delivered "
          << insert_seen[mutation.id] << " times";
    } else {
      ++oracle_deletes;
      EXPECT_EQ(delete_seen[mutation.id], 1u)
          << "delete " << mutation.id << " delivered "
          << delete_seen[mutation.id] << " times";
    }
  }
  EXPECT_EQ(insert_seen.size(), oracle_inserts);
  EXPECT_EQ(delete_seen.size(), oracle_deletes);

  EXPECT_TRUE((*resumed)->Cancel().ok());
  resumed->reset();
  cluster.server->Stop();
}

// Regression: a composite watch whose client vanished used to linger on
// the facade until the NEXT delivery tried to push into the dead
// connection. The disconnect hook must reap it eagerly — with zero
// intervening mutations.
TEST(WatchTest, OrphanedShardedWatchIsReapedOnDisconnectNotNextDelivery) {
  const std::vector<VectorObject> objects = MakeObjects(60, 1410);
  Cluster cluster = StartCluster(objects, /*num_shards=*/3);
  ASSERT_NE(cluster.sharded, nullptr);

  auto watcher_transport = cluster.Connect();
  ASSERT_TRUE(watcher_transport.ok());
  {
    EncryptionClient watcher(*cluster.key, cluster.metric,
                             watcher_transport->get());
    auto stream = watcher.WatchAll();
    ASSERT_TRUE(stream.ok()) << stream.status().ToString();
    ASSERT_EQ(cluster.sharded->open_watches(), 1u);

    // The client evaporates: no Cancel, no clean shutdown — the socket
    // just dies. Abort before the stream destructor so its best-effort
    // cancel cannot mask the server-side reap.
    (*watcher_transport)->Abort(Status::NetworkError("client vanished"));
  }

  // NO churn here. The old code would only notice the orphan when a
  // delivery sweep hit the dead connection; the fanout must disappear
  // on the disconnect alone.
  for (int i = 0; i < 500 && cluster.sharded->open_watches() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(cluster.sharded->open_watches(), 0u)
      << "orphaned watch fanout lingered past the disconnect";

  // The reaped fanout must not wound delivery: churn afterwards reaches
  // a fresh watcher intact.
  auto writer_transport = cluster.Connect();
  ASSERT_TRUE(writer_transport.ok());
  EncryptionClient writer(*cluster.key, cluster.metric,
                          writer_transport->get());
  auto fresh_transport = cluster.Connect();
  ASSERT_TRUE(fresh_transport.ok());
  EncryptionClient fresh(*cluster.key, cluster.metric,
                         fresh_transport->get());
  auto fresh_stream = fresh.WatchAll();
  ASSERT_TRUE(fresh_stream.ok()) << fresh_stream.status().ToString();
  std::vector<Mutation> oracle;
  ApplyChurn(&writer, {objects.begin(), objects.begin() + 10}, {}, &oracle);
  // Shards interleave freely in the merged stream: assert exactly-once
  // delivery of every mutation, not a global order.
  std::map<metric::ObjectId, size_t> seen;
  for (size_t i = 0; i < oracle.size(); ++i) {
    auto event = (*fresh_stream)->Next(kEventTimeoutMs);
    ASSERT_TRUE(event.ok())
        << "event " << i << ": " << event.status().ToString();
    ASSERT_EQ(event->kind, WatchEvent::Kind::kInsert);
    ++seen[event->id];
  }
  for (const Mutation& mutation : oracle) {
    EXPECT_EQ(seen[mutation.id], 1u)
        << "insert " << mutation.id << " delivered " << seen[mutation.id]
        << " times";
  }
  EXPECT_TRUE((*fresh_stream)->Cancel().ok());
  fresh_stream->reset();
  cluster.server->Stop();
}

}  // namespace
}  // namespace secure
}  // namespace simcloud
