// Failover soak: a 3-shard x 2-replica cluster must keep answering
// queries byte-identically to the brute-force oracle while one replica
// is killed mid-churn, and the topology monitor must bring the replica
// back to `up` — with its missed writes replayed — once its server
// restarts.
//
// The dataset layout follows pipeline_test.cc: a STABLE region queries
// verify against and a far-away CHURN region the delete traffic eats.
// Churn is delete-only on purpose — write replay is at-least-once, and
// kDeleteBatch skips already-deleted items per id, so a replayed delete
// is idempotent where a replayed insert of fresh data would not be.
//
// CI runs this in both channel policies (SIMCLOUD_CHANNEL_POLICY=secure
// reconnects through the full PSK handshake) and under TSan.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "metric/ground_truth.h"
#include "net/tcp.h"
#include "secure/client.h"
#include "secure/server.h"
#include "secure/sharded_server.h"

namespace simcloud {
namespace secure {
namespace {

using metric::VectorObject;

net::ChannelPolicy PolicyFromEnv() {
  const char* env = std::getenv("SIMCLOUD_CHANNEL_POLICY");
  return env != nullptr && std::string(env) == "secure"
             ? net::ChannelPolicy::kSecure
             : net::ChannelPolicy::kPlaintext;
}

net::SecureChannelOptions SoakChannelOptions() {
  net::SecureChannelOptions options;
  options.psk = Bytes(32, 0x77);
  options.rekey_after_records = 64;
  return options;
}

/// Fast cadences so the whole down -> reconnect -> replay -> up cycle
/// fits in a test-sized soak.
TopologyOptions SoakTopologyOptions() {
  TopologyOptions options;
  options.probe_interval_ms = 25;
  options.probe_timeout_ms = 500;
  options.failures_to_down = 2;
  options.backoff_initial_ms = 25;
  options.backoff_max_ms = 200;
  return options;
}

constexpr size_t kStableObjects = 300;
constexpr size_t kChurnObjects = 200;
constexpr size_t kDim = 8;
constexpr float kChurnOffset = 500.0f;
constexpr double kQueryRadius = 2.5;  // << the ~1400 region separation

std::vector<VectorObject> MakeStable(uint64_t seed) {
  data::MixtureOptions options;
  options.num_objects = kStableObjects;
  options.dimension = kDim;
  options.num_clusters = 5;
  options.seed = seed;
  return data::MakeGaussianMixture(options);
}

std::vector<VectorObject> MakeChurn(uint64_t seed) {
  data::MixtureOptions options;
  options.num_objects = kChurnObjects;
  options.dimension = kDim;
  options.num_clusters = 3;
  options.seed = seed;
  std::vector<VectorObject> objects = data::MakeGaussianMixture(options);
  std::vector<VectorObject> shifted;
  shifted.reserve(objects.size());
  for (const VectorObject& object : objects) {
    std::vector<float> values = object.values();
    for (float& v : values) v += kChurnOffset;
    shifted.emplace_back(object.id() + 1000000, std::move(values));
  }
  return shifted;
}

class FailoverSoakTest
    : public ::testing::TestWithParam<mindex::StorageKind> {};

TEST_P(FailoverSoakTest, ReplicaKillMidChurnLosesNoQueryAndRecovers) {
  const mindex::StorageKind storage_kind = GetParam();
  const std::string tag =
      storage_kind == mindex::StorageKind::kMemory ? "memory" : "disk";
  constexpr size_t kShards = 3;
  constexpr size_t kReplicas = 2;

  const std::vector<VectorObject> stable = MakeStable(921);
  const std::vector<VectorObject> churn = MakeChurn(922);
  std::vector<VectorObject> all = stable;
  all.insert(all.end(), churn.begin(), churn.end());
  auto metric = std::make_shared<metric::L2Distance>();
  metric::Dataset stable_set("stable", stable, metric);

  auto pivots = mindex::PivotSet::SelectRandom(all, 8, 923);
  ASSERT_TRUE(pivots.ok());
  auto key = SecretKey::Create(std::move(pivots).value(), Bytes(16, 0x72));
  ASSERT_TRUE(key.ok());

  mindex::MIndexOptions index_options;
  index_options.num_pivots = 8;
  index_options.bucket_capacity = 25;
  index_options.max_level = 4;
  index_options.cache_bytes = 256 * 1024;

  const net::ChannelPolicy policy = PolicyFromEnv();
  net::TcpServerOptions server_options;
  server_options.worker_threads = 2;
  server_options.channel_policy = policy;
  if (policy == net::ChannelPolicy::kSecure) {
    server_options.secure_channel = SoakChannelOptions();
  }

  // kShards x kReplicas shard servers; each replica holds its own full
  // copy of its shard (the facade's write fan-out keeps them identical).
  std::vector<std::unique_ptr<EncryptedMIndexServer>> handlers;
  std::vector<std::unique_ptr<net::TcpServer>> servers;
  std::vector<std::string> disk_paths;
  std::vector<std::vector<ShardEndpoint>> replica_sets(kShards);
  for (size_t s = 0; s < kShards; ++s) {
    for (size_t r = 0; r < kReplicas; ++r) {
      mindex::MIndexOptions replica_options = index_options;
      if (storage_kind == mindex::StorageKind::kDisk) {
        replica_options.storage_kind = mindex::StorageKind::kDisk;
        replica_options.disk_path = testing::TempDir() + "/simcloud_failover_" +
                                    tag + "_s" + std::to_string(s) + "r" +
                                    std::to_string(r) + ".bucket";
        disk_paths.push_back(replica_options.disk_path);
      }
      auto handler = EncryptedMIndexServer::Create(replica_options);
      ASSERT_TRUE(handler.ok()) << handler.status().ToString();
      handlers.push_back(std::move(*handler));
      servers.push_back(std::make_unique<net::TcpServer>(
          handlers.back().get(), server_options));
      ASSERT_TRUE(servers.back()->Start(0).ok());
      replica_sets[s].push_back(
          ShardEndpoint{"127.0.0.1", servers.back()->port()});
    }
  }

  auto facade =
      ShardedServer::Connect(replica_sets, index_options.num_pivots, policy,
                             SoakChannelOptions(), SoakTopologyOptions());
  ASSERT_TRUE(facade.ok()) << facade.status().ToString();

  // The facade handler is thread-safe; LoopbackTransport is not, so each
  // thread below wraps the facade in its own transport.
  net::LoopbackTransport transport(facade->get());
  EncryptionClient owner(*key, metric, &transport);
  ASSERT_TRUE(owner.InsertBulk(all, InsertStrategy::kPrecise, 100).ok());

  // Fixed query pool + brute-force oracle over the stable region.
  constexpr size_t kQueryPool = 24;
  Rng query_rng(924);
  std::vector<VectorObject> queries;
  std::vector<metric::NeighborList> oracle;
  for (size_t i = 0; i < kQueryPool; ++i) {
    queries.push_back(stable[query_rng.NextBounded(stable.size())]);
    oracle.push_back(
        metric::LinearRangeSearch(stable_set, queries.back(), kQueryRadius));
  }

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<uint64_t> query_rounds{0};
  auto fail = [&](const std::string& why) {
    failures.fetch_add(1);
    ADD_FAILURE() << why;
  };

  // Queriers: every answer must match the oracle id-for-id, before,
  // during, and after the replica kill. Zero failed queries allowed.
  constexpr int kQueriers = 2;
  std::vector<std::thread> queriers;
  queriers.reserve(kQueriers);
  for (int c = 0; c < kQueriers; ++c) {
    queriers.emplace_back([&, c] {
      net::LoopbackTransport own_transport(facade->get());
      EncryptionClient client(*key, metric, &own_transport);
      Rng rng(930 + c);
      while (!stop.load()) {
        std::vector<size_t> picks;
        std::vector<VectorObject> batch;
        for (int q = 0; q < 4; ++q) {
          picks.push_back(rng.NextBounded(kQueryPool));
          batch.push_back(queries[picks.back()]);
        }
        auto answers = client.RangeSearchBatch(batch, kQueryRadius);
        if (!answers.ok()) {
          return fail("query failed during soak: " +
                      answers.status().ToString());
        }
        for (size_t q = 0; q < batch.size(); ++q) {
          const metric::NeighborList& expected = oracle[picks[q]];
          const metric::NeighborList& got = (*answers)[q];
          if (got.size() != expected.size()) {
            return fail("answer size diverged from oracle");
          }
          for (size_t n = 0; n < expected.size(); ++n) {
            if (got[n].id != expected[n].id) {
              return fail("answer ids diverged from oracle");
            }
          }
        }
        query_rounds.fetch_add(1);
      }
    });
  }

  // Churner: delete-only traffic through the facade. A slice landing
  // while the victim is down is buffered and replayed on reconnect.
  std::thread churner([&] {
    net::LoopbackTransport own_transport(facade->get());
    EncryptionClient client(*key, metric, &own_transport);
    constexpr size_t kSlice = 20;
    size_t next = 0;
    while (!stop.load() && next + kSlice <= churn.size()) {
      std::vector<VectorObject> slice(churn.begin() + next,
                                      churn.begin() + next + kSlice);
      next += kSlice;
      auto pending = client.SubmitDeleteBatch(slice);
      if (!pending.ok()) return fail("delete submit failed");
      Status deleted = client.CollectDeleteBatch(&*pending);
      if (!deleted.ok()) {
        return fail("delete failed during soak: " + deleted.ToString());
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  // Let traffic flow, then kill shard 1's first replica mid-churn.
  const size_t victim_shard = 1;
  const size_t victim_index = victim_shard * kReplicas;  // shard 1, replica 0
  const uint16_t victim_port = servers[victim_index]->port();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const uint64_t rounds_at_kill = query_rounds.load();
  servers[victim_index]->Stop();

  // Traffic must keep flowing while the replica is dead.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const uint64_t rounds_during_outage = query_rounds.load() - rounds_at_kill;

  // Restart: a fresh TcpServer on the SAME port over the SAME handler —
  // the replica still has the data it had when it died; replay brings
  // the writes it missed.
  servers[victim_index] = std::make_unique<net::TcpServer>(
      handlers[victim_index].get(), server_options);
  ASSERT_TRUE(servers[victim_index]->Start(victim_port).ok());

  // The monitor must redial it (full handshake under kSecure), drain the
  // replay queue, and flip the replica back to up.
  bool recovered = false;
  Stopwatch recovery;
  while (recovery.ElapsedSeconds() < 30) {
    auto topology = (*facade)->TopologySnapshot();
    if (topology[victim_shard].replicas[0].health == ShardHealth::kUp) {
      recovered = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(recovered) << "victim replica never returned to up";

  // A little more traffic against the recovered cluster, then stop.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  stop.store(true);
  for (std::thread& thread : queriers) thread.join();
  churner.join();

  ASSERT_EQ(failures.load(), 0) << "queries failed during the replica loss";
  EXPECT_GT(rounds_during_outage, 0u)
      << "soak too short: no query completed while the replica was down";

  // The victim rejoined: reconnect counted, replay drained.
  {
    auto topology = (*facade)->TopologySnapshot();
    const ReplicaStatus& victim = topology[victim_shard].replicas[0];
    EXPECT_GE(victim.reconnects, 1u);
    EXPECT_EQ(victim.replay_queued, 0u);
    for (size_t s = 0; s < kShards; ++s) {
      EXPECT_EQ(topology[s].health(), ShardHealth::kUp);
    }
  }

  // Replay converged: each shard's replicas hold identical object
  // counts, including the shard whose replica missed writes while dead.
  for (size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(handlers[s * kReplicas]->index().size(),
              handlers[s * kReplicas + 1]->index().size())
        << "replicas of shard " << s << " diverged after replay";
  }

  // Byte-identical final answers vs the oracle, and consistent counts.
  {
    EncryptionClient client(*key, metric, &transport);
    auto final_answers = client.RangeSearchBatch(
        std::vector<VectorObject>(queries.begin(), queries.begin() + 8),
        kQueryRadius);
    ASSERT_TRUE(final_answers.ok());
    for (size_t q = 0; q < 8; ++q) {
      ASSERT_EQ((*final_answers)[q].size(), oracle[q].size());
      for (size_t n = 0; n < oracle[q].size(); ++n) {
        EXPECT_EQ((*final_answers)[q][n].id, oracle[q][n].id);
      }
    }
    auto stats = client.GetServerStats();
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->shards_total, kShards);
    EXPECT_EQ(stats->shards_up, kShards);
    uint64_t survivors = 0;
    for (size_t s = 0; s < kShards; ++s) {
      survivors += handlers[s * kReplicas]->index().size();
    }
    EXPECT_EQ(stats->object_count, survivors);
  }

  facade->reset();  // stops the monitor before the servers go away
  for (auto& server : servers) server->Stop();
  for (const std::string& path : disk_paths) {
    std::remove(path.c_str());
    std::remove((path + ".compact").c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, FailoverSoakTest,
                         ::testing::Values(mindex::StorageKind::kMemory,
                                           mindex::StorageKind::kDisk),
                         [](const ::testing::TestParamInfo<
                             mindex::StorageKind>& info) {
                           return info.param == mindex::StorageKind::kMemory
                                      ? "memory"
                                      : "disk";
                         });

}  // namespace
}  // namespace secure
}  // namespace simcloud
