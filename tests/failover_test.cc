// Failover soak: a 3-shard x 2-replica cluster must keep answering
// queries byte-identically to the brute-force oracle while one replica
// is killed mid-churn, and the topology monitor must bring the replica
// back to `up` — with its missed writes replayed — once its server
// restarts.
//
// The dataset layout follows pipeline_test.cc: a STABLE region queries
// verify against and a far-away CHURN region the delete traffic eats.
// Churn is delete-only on purpose — write replay is at-least-once, and
// kDeleteBatch skips already-deleted items per id, so a replayed delete
// is idempotent where a replayed insert of fresh data would not be.
//
// CI runs this in both channel policies (SIMCLOUD_CHANNEL_POLICY=secure
// reconnects through the full PSK handshake) and under TSan.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "metric/ground_truth.h"
#include "net/tcp.h"
#include "secure/client.h"
#include "secure/server.h"
#include "secure/sharded_server.h"

namespace simcloud {
namespace secure {
namespace {

using metric::VectorObject;

net::ChannelPolicy PolicyFromEnv() {
  const char* env = std::getenv("SIMCLOUD_CHANNEL_POLICY");
  return env != nullptr && std::string(env) == "secure"
             ? net::ChannelPolicy::kSecure
             : net::ChannelPolicy::kPlaintext;
}

net::SecureChannelOptions SoakChannelOptions() {
  net::SecureChannelOptions options;
  options.psk = Bytes(32, 0x77);
  options.rekey_after_records = 64;
  return options;
}

/// Fast cadences so the whole down -> reconnect -> replay -> up cycle
/// fits in a test-sized soak.
TopologyOptions SoakTopologyOptions() {
  TopologyOptions options;
  options.probe_interval_ms = 25;
  options.probe_timeout_ms = 500;
  options.failures_to_down = 2;
  options.backoff_initial_ms = 25;
  options.backoff_max_ms = 200;
  return options;
}

constexpr size_t kStableObjects = 300;
constexpr size_t kChurnObjects = 200;
constexpr size_t kDim = 8;
constexpr float kChurnOffset = 500.0f;
constexpr double kQueryRadius = 2.5;  // << the ~1400 region separation

std::vector<VectorObject> MakeStable(uint64_t seed) {
  data::MixtureOptions options;
  options.num_objects = kStableObjects;
  options.dimension = kDim;
  options.num_clusters = 5;
  options.seed = seed;
  return data::MakeGaussianMixture(options);
}

std::vector<VectorObject> MakeChurn(uint64_t seed) {
  data::MixtureOptions options;
  options.num_objects = kChurnObjects;
  options.dimension = kDim;
  options.num_clusters = 3;
  options.seed = seed;
  std::vector<VectorObject> objects = data::MakeGaussianMixture(options);
  std::vector<VectorObject> shifted;
  shifted.reserve(objects.size());
  for (const VectorObject& object : objects) {
    std::vector<float> values = object.values();
    for (float& v : values) v += kChurnOffset;
    shifted.emplace_back(object.id() + 1000000, std::move(values));
  }
  return shifted;
}

class FailoverSoakTest
    : public ::testing::TestWithParam<mindex::StorageKind> {};

TEST_P(FailoverSoakTest, ReplicaKillMidChurnLosesNoQueryAndRecovers) {
  const mindex::StorageKind storage_kind = GetParam();
  const std::string tag =
      storage_kind == mindex::StorageKind::kMemory ? "memory" : "disk";
  constexpr size_t kShards = 3;
  constexpr size_t kReplicas = 2;

  const std::vector<VectorObject> stable = MakeStable(921);
  const std::vector<VectorObject> churn = MakeChurn(922);
  std::vector<VectorObject> all = stable;
  all.insert(all.end(), churn.begin(), churn.end());
  auto metric = std::make_shared<metric::L2Distance>();
  metric::Dataset stable_set("stable", stable, metric);

  auto pivots = mindex::PivotSet::SelectRandom(all, 8, 923);
  ASSERT_TRUE(pivots.ok());
  auto key = SecretKey::Create(std::move(pivots).value(), Bytes(16, 0x72));
  ASSERT_TRUE(key.ok());

  mindex::MIndexOptions index_options;
  index_options.num_pivots = 8;
  index_options.bucket_capacity = 25;
  index_options.max_level = 4;
  index_options.cache_bytes = 256 * 1024;

  const net::ChannelPolicy policy = PolicyFromEnv();
  net::TcpServerOptions server_options;
  server_options.worker_threads = 2;
  server_options.channel_policy = policy;
  if (policy == net::ChannelPolicy::kSecure) {
    server_options.secure_channel = SoakChannelOptions();
  }

  // kShards x kReplicas shard servers; each replica holds its own full
  // copy of its shard (the facade's write fan-out keeps them identical).
  std::vector<std::unique_ptr<EncryptedMIndexServer>> handlers;
  std::vector<std::unique_ptr<net::TcpServer>> servers;
  std::vector<std::string> disk_paths;
  std::vector<std::vector<ShardEndpoint>> replica_sets(kShards);
  for (size_t s = 0; s < kShards; ++s) {
    for (size_t r = 0; r < kReplicas; ++r) {
      mindex::MIndexOptions replica_options = index_options;
      if (storage_kind == mindex::StorageKind::kDisk) {
        replica_options.storage_kind = mindex::StorageKind::kDisk;
        replica_options.disk_path = testing::TempDir() + "/simcloud_failover_" +
                                    tag + "_s" + std::to_string(s) + "r" +
                                    std::to_string(r) + ".bucket";
        disk_paths.push_back(replica_options.disk_path);
      }
      auto handler = EncryptedMIndexServer::Create(replica_options);
      ASSERT_TRUE(handler.ok()) << handler.status().ToString();
      handlers.push_back(std::move(*handler));
      servers.push_back(std::make_unique<net::TcpServer>(
          handlers.back().get(), server_options));
      ASSERT_TRUE(servers.back()->Start(0).ok());
      replica_sets[s].push_back(
          ShardEndpoint{"127.0.0.1", servers.back()->port()});
    }
  }

  auto facade =
      ShardedServer::Connect(replica_sets, index_options.num_pivots, policy,
                             SoakChannelOptions(), SoakTopologyOptions());
  ASSERT_TRUE(facade.ok()) << facade.status().ToString();

  // The facade handler is thread-safe; LoopbackTransport is not, so each
  // thread below wraps the facade in its own transport.
  net::LoopbackTransport transport(facade->get());
  EncryptionClient owner(*key, metric, &transport);
  ASSERT_TRUE(owner.InsertBulk(all, InsertStrategy::kPrecise, 100).ok());

  // Fixed query pool + brute-force oracle over the stable region.
  constexpr size_t kQueryPool = 24;
  Rng query_rng(924);
  std::vector<VectorObject> queries;
  std::vector<metric::NeighborList> oracle;
  for (size_t i = 0; i < kQueryPool; ++i) {
    queries.push_back(stable[query_rng.NextBounded(stable.size())]);
    oracle.push_back(
        metric::LinearRangeSearch(stable_set, queries.back(), kQueryRadius));
  }

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<uint64_t> query_rounds{0};
  auto fail = [&](const std::string& why) {
    failures.fetch_add(1);
    ADD_FAILURE() << why;
  };

  // Queriers: every answer must match the oracle id-for-id, before,
  // during, and after the replica kill. Zero failed queries allowed.
  constexpr int kQueriers = 2;
  std::vector<std::thread> queriers;
  queriers.reserve(kQueriers);
  for (int c = 0; c < kQueriers; ++c) {
    queriers.emplace_back([&, c] {
      net::LoopbackTransport own_transport(facade->get());
      EncryptionClient client(*key, metric, &own_transport);
      Rng rng(930 + c);
      while (!stop.load()) {
        std::vector<size_t> picks;
        std::vector<VectorObject> batch;
        for (int q = 0; q < 4; ++q) {
          picks.push_back(rng.NextBounded(kQueryPool));
          batch.push_back(queries[picks.back()]);
        }
        auto answers = client.RangeSearchBatch(batch, kQueryRadius);
        if (!answers.ok()) {
          return fail("query failed during soak: " +
                      answers.status().ToString());
        }
        for (size_t q = 0; q < batch.size(); ++q) {
          const metric::NeighborList& expected = oracle[picks[q]];
          const metric::NeighborList& got = (*answers)[q];
          if (got.size() != expected.size()) {
            return fail("answer size diverged from oracle");
          }
          for (size_t n = 0; n < expected.size(); ++n) {
            if (got[n].id != expected[n].id) {
              return fail("answer ids diverged from oracle");
            }
          }
        }
        query_rounds.fetch_add(1);
      }
    });
  }

  // Churner: delete-only traffic through the facade. A slice landing
  // while the victim is down is buffered and replayed on reconnect.
  std::thread churner([&] {
    net::LoopbackTransport own_transport(facade->get());
    EncryptionClient client(*key, metric, &own_transport);
    constexpr size_t kSlice = 20;
    size_t next = 0;
    while (!stop.load() && next + kSlice <= churn.size()) {
      std::vector<VectorObject> slice(churn.begin() + next,
                                      churn.begin() + next + kSlice);
      next += kSlice;
      auto pending = client.SubmitDeleteBatch(slice);
      if (!pending.ok()) return fail("delete submit failed");
      Status deleted = client.CollectDeleteBatch(&*pending);
      if (!deleted.ok()) {
        return fail("delete failed during soak: " + deleted.ToString());
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  // Let traffic flow, then kill shard 1's first replica mid-churn.
  const size_t victim_shard = 1;
  const size_t victim_index = victim_shard * kReplicas;  // shard 1, replica 0
  const uint16_t victim_port = servers[victim_index]->port();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const uint64_t rounds_at_kill = query_rounds.load();
  servers[victim_index]->Stop();

  // Traffic must keep flowing while the replica is dead.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const uint64_t rounds_during_outage = query_rounds.load() - rounds_at_kill;

  // Restart: a fresh TcpServer on the SAME port over the SAME handler —
  // the replica still has the data it had when it died; replay brings
  // the writes it missed.
  servers[victim_index] = std::make_unique<net::TcpServer>(
      handlers[victim_index].get(), server_options);
  ASSERT_TRUE(servers[victim_index]->Start(victim_port).ok());

  // The monitor must redial it (full handshake under kSecure), drain the
  // replay queue, and flip the replica back to up.
  bool recovered = false;
  Stopwatch recovery;
  while (recovery.ElapsedSeconds() < 30) {
    auto topology = (*facade)->TopologySnapshot();
    if (topology[victim_shard].replicas[0].health == ShardHealth::kUp) {
      recovered = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(recovered) << "victim replica never returned to up";

  // A little more traffic against the recovered cluster, then stop.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  stop.store(true);
  for (std::thread& thread : queriers) thread.join();
  churner.join();

  ASSERT_EQ(failures.load(), 0) << "queries failed during the replica loss";
  EXPECT_GT(rounds_during_outage, 0u)
      << "soak too short: no query completed while the replica was down";

  // The victim rejoined: reconnect counted, replay drained.
  {
    auto topology = (*facade)->TopologySnapshot();
    const ReplicaStatus& victim = topology[victim_shard].replicas[0];
    EXPECT_GE(victim.reconnects, 1u);
    EXPECT_EQ(victim.replay_queued, 0u);
    for (size_t s = 0; s < kShards; ++s) {
      EXPECT_EQ(topology[s].health(), ShardHealth::kUp);
    }
  }

  // Replay converged: each shard's replicas hold identical object
  // counts, including the shard whose replica missed writes while dead.
  for (size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(handlers[s * kReplicas]->index().size(),
              handlers[s * kReplicas + 1]->index().size())
        << "replicas of shard " << s << " diverged after replay";
  }

  // Byte-identical final answers vs the oracle, and consistent counts.
  {
    EncryptionClient client(*key, metric, &transport);
    auto final_answers = client.RangeSearchBatch(
        std::vector<VectorObject>(queries.begin(), queries.begin() + 8),
        kQueryRadius);
    ASSERT_TRUE(final_answers.ok());
    for (size_t q = 0; q < 8; ++q) {
      ASSERT_EQ((*final_answers)[q].size(), oracle[q].size());
      for (size_t n = 0; n < oracle[q].size(); ++n) {
        EXPECT_EQ((*final_answers)[q][n].id, oracle[q][n].id);
      }
    }
    auto stats = client.GetServerStats();
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->shards_total, kShards);
    EXPECT_EQ(stats->shards_up, kShards);
    uint64_t survivors = 0;
    for (size_t s = 0; s < kShards; ++s) {
      survivors += handlers[s * kReplicas]->index().size();
    }
    EXPECT_EQ(stats->object_count, survivors);
  }

  facade->reset();  // stops the monitor before the servers go away
  for (auto& server : servers) server->Stop();
  for (const std::string& path : disk_paths) {
    std::remove(path.c_str());
    std::remove((path + ".compact").c_str());
  }
}

// Watch soak: a client watching through the facade must see every
// delete exactly once — across a mid-stream client reconnect (resume
// token) AND a replica kill (the facade's pump re-registers the shard's
// watch leg on a surviving replica with that shard's resume cursor).
//
// Churn is delete-only for the same reason as above, with one more
// twist: replica event sequence numbers stay aligned only while both
// replicas publish identical mutation streams, which idempotent deletes
// guarantee and at-least-once insert replay would not.
TEST(WatchFailoverSoakTest, ReplicaKillMidStreamLosesNoEvent) {
  constexpr size_t kShards = 3;
  constexpr size_t kReplicas = 2;

  const std::vector<VectorObject> stable = MakeStable(941);
  const std::vector<VectorObject> churn = MakeChurn(942);
  std::vector<VectorObject> all = stable;
  all.insert(all.end(), churn.begin(), churn.end());
  auto metric = std::make_shared<metric::L2Distance>();

  auto pivots = mindex::PivotSet::SelectRandom(all, 8, 943);
  ASSERT_TRUE(pivots.ok());
  auto key = SecretKey::Create(std::move(pivots).value(), Bytes(16, 0x73));
  ASSERT_TRUE(key.ok());

  mindex::MIndexOptions index_options;
  index_options.num_pivots = 8;
  index_options.bucket_capacity = 25;
  index_options.max_level = 4;

  const net::ChannelPolicy policy = PolicyFromEnv();
  net::TcpServerOptions server_options;
  server_options.worker_threads = 2;
  server_options.channel_policy = policy;
  if (policy == net::ChannelPolicy::kSecure) {
    server_options.secure_channel = SoakChannelOptions();
  }

  std::vector<std::unique_ptr<EncryptedMIndexServer>> handlers;
  std::vector<std::unique_ptr<net::TcpServer>> servers;
  std::vector<std::vector<ShardEndpoint>> replica_sets(kShards);
  for (size_t s = 0; s < kShards; ++s) {
    for (size_t r = 0; r < kReplicas; ++r) {
      auto handler = EncryptedMIndexServer::Create(index_options);
      ASSERT_TRUE(handler.ok()) << handler.status().ToString();
      handlers.push_back(std::move(*handler));
      servers.push_back(std::make_unique<net::TcpServer>(
          handlers.back().get(), server_options));
      ASSERT_TRUE(servers.back()->Start(0).ok());
      replica_sets[s].push_back(
          ShardEndpoint{"127.0.0.1", servers.back()->port()});
    }
  }

  auto facade =
      ShardedServer::Connect(replica_sets, index_options.num_pivots, policy,
                             SoakChannelOptions(), SoakTopologyOptions());
  ASSERT_TRUE(facade.ok()) << facade.status().ToString();

  // Watch streams need server push, so the facade itself goes behind a
  // TCP listener; writers keep using the in-process loopback.
  net::TcpServer facade_server(facade->get(), server_options);
  ASSERT_TRUE(facade_server.Start(0).ok());
  auto connect_facade = [&]() {
    return net::TcpTransport::Connect("127.0.0.1", facade_server.port(),
                                      policy, SoakChannelOptions());
  };

  net::LoopbackTransport transport(facade->get());
  EncryptionClient owner(*key, metric, &transport);
  ASSERT_TRUE(owner.InsertBulk(all, InsertStrategy::kPrecise, 100).ok());

  // Churner: deletes the whole churn region in slices, slowly enough
  // that the replica kill lands mid-stream. Started only once the watch
  // below is REGISTERED — a watch delivers mutations from registration
  // (or its resume token) onward, not retroactively.
  std::atomic<bool> start_churn{false};
  std::atomic<int> churn_failures{0};
  std::thread churner([&] {
    while (!start_churn.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    net::LoopbackTransport own_transport(facade->get());
    EncryptionClient client(*key, metric, &own_transport);
    constexpr size_t kSlice = 20;
    for (size_t next = 0; next + kSlice <= churn.size(); next += kSlice) {
      std::vector<VectorObject> slice(churn.begin() + next,
                                      churn.begin() + next + kSlice);
      auto pending = client.SubmitDeleteBatch(slice);
      if (!pending.ok() || !client.CollectDeleteBatch(&*pending).ok()) {
        churn_failures.fetch_add(1);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  });
  // ASSERT returns from the test body; never leave the churner unjoined.
  struct Joiner {
    std::thread* thread;
    std::atomic<bool>* start;
    ~Joiner() {
      start->store(true);
      if (thread->joinable()) thread->join();
    }
  } joiner{&churner, &start_churn};

  std::map<metric::ObjectId, size_t> deletes_seen;
  std::vector<uint64_t> token;

  // Phase 1: watch from a TCP client, consume the first chunk, then
  // vanish without cancelling (connection loss, resume token kept).
  constexpr size_t kPhaseOne = 60;
  {
    auto watcher_transport = connect_facade();
    ASSERT_TRUE(watcher_transport.ok()) << watcher_transport.status().ToString();
    EncryptionClient watcher(*key, metric, watcher_transport->get());
    auto stream = watcher.WatchAll();
    ASSERT_TRUE(stream.ok()) << stream.status().ToString();
    ASSERT_EQ((*stream)->resume_token().size(), kShards);
    start_churn.store(true);
    for (size_t i = 0; i < kPhaseOne; ++i) {
      auto event = (*stream)->Next(10000);
      ASSERT_TRUE(event.ok())
          << "event " << i << ": " << event.status().ToString();
      ASSERT_EQ(event->kind, WatchEvent::Kind::kDelete);
      ++deletes_seen[event->id];
    }
    token = (*stream)->resume_token();
  }

  // Kill shard 1's first replica — the replica every shard-1 watch leg
  // registered on — while the churner is still deleting.
  const size_t victim_index = 1 * kReplicas;
  servers[victim_index]->Stop();

  // Phase 2: reconnect with the composite token. The facade re-opens
  // shard 1's leg on the surviving replica at that shard's cursor; the
  // merged stream must deliver exactly the missed deletes.
  {
    auto watcher_transport = connect_facade();
    ASSERT_TRUE(watcher_transport.ok());
    EncryptionClient watcher(*key, metric, watcher_transport->get());
    auto stream = watcher.WatchAll(token);
    ASSERT_TRUE(stream.ok()) << stream.status().ToString();
    while (deletes_seen.size() < churn.size()) {
      auto event = (*stream)->Next(10000);
      ASSERT_TRUE(event.ok())
          << "after " << deletes_seen.size()
          << " distinct deletes: " << event.status().ToString();
      ASSERT_EQ(event->kind, WatchEvent::Kind::kDelete);
      ++deletes_seen[event->id];
    }
    // Nothing beyond the oracle: the stream runs dry.
    auto extra = (*stream)->Next(500);
    EXPECT_FALSE(extra.ok());
    EXPECT_EQ(extra.status().code(), StatusCode::kDeadlineExceeded);
    EXPECT_TRUE((*stream)->Cancel().ok());
  }
  churner.join();
  ASSERT_EQ(churn_failures.load(), 0);

  // Every churn delete observed exactly once — no gap, no duplicate,
  // across both the client reconnect and the replica failover.
  for (const VectorObject& object : churn) {
    EXPECT_EQ(deletes_seen[object.id()], 1u)
        << "delete " << object.id() << " delivered "
        << deletes_seen[object.id()] << " times";
  }
  EXPECT_EQ(deletes_seen.size(), churn.size());

  // The kill degraded shard 1 but nothing went stale (replay buffers
  // the victim's missed deletes; the ring never overflowed).
  {
    auto stats = owner.GetServerStats();
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->shards_total, kShards);
    EXPECT_EQ(stats->shards_stale, 0u);
    EXPECT_EQ(stats->object_count, stable.size());
  }

  facade_server.Stop();
  facade->reset();  // stops pumps and monitor before the servers go away
  for (auto& server : servers) server->Stop();
}

INSTANTIATE_TEST_SUITE_P(Backends, FailoverSoakTest,
                         ::testing::Values(mindex::StorageKind::kMemory,
                                           mindex::StorageKind::kDisk),
                         [](const ::testing::TestParamInfo<
                             mindex::StorageKind>& info) {
                           return info.param == mindex::StorageKind::kMemory
                                      ? "memory"
                                      : "disk";
                         });

}  // namespace
}  // namespace secure
}  // namespace simcloud
