// Concurrency tests: one Encrypted M-Index server driven by many client
// threads over real TCP and over loopback — concurrent searches must
// return exactly what a single-threaded client gets, and interleaved
// writers/readers must never corrupt the index.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "data/synthetic.h"
#include "metric/ground_truth.h"
#include "net/tcp.h"
#include "secure/client.h"
#include "secure/server.h"

namespace simcloud {
namespace secure {
namespace {

using metric::VectorObject;

metric::Dataset MakeDataset(uint64_t seed, size_t n = 600) {
  data::MixtureOptions options;
  options.num_objects = n;
  options.dimension = 8;
  options.num_clusters = 5;
  options.seed = seed;
  return metric::Dataset("ctest", data::MakeGaussianMixture(options),
                         std::make_shared<metric::L2Distance>());
}

TEST(ConcurrencyTest, ParallelTcpClientsGetExactAnswers) {
  auto dataset = MakeDataset(201);
  auto pivots = mindex::PivotSet::SelectRandom(dataset.objects(), 8, 202);
  ASSERT_TRUE(pivots.ok());
  auto key = SecretKey::Create(std::move(pivots).value(), Bytes(16, 0x61));
  ASSERT_TRUE(key.ok());

  mindex::MIndexOptions options;
  options.num_pivots = 8;
  options.bucket_capacity = 40;
  options.max_level = 4;
  auto handler = EncryptedMIndexServer::Create(options);
  ASSERT_TRUE(handler.ok());
  net::TcpServer server(handler->get());
  ASSERT_TRUE(server.Start(0).ok());

  {
    // The data owner loads the index once.
    auto owner_transport = net::TcpTransport::Connect("127.0.0.1",
                                                      server.port());
    ASSERT_TRUE(owner_transport.ok());
    EncryptionClient owner(*key, dataset.distance(), owner_transport->get());
    ASSERT_TRUE(owner
                    .InsertBulk(dataset.objects(), InsertStrategy::kPrecise,
                                200)
                    .ok());
  }

  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 10;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto transport = net::TcpTransport::Connect("127.0.0.1", server.port());
      if (!transport.ok()) {
        failures.fetch_add(1);
        return;
      }
      EncryptionClient client(*key, dataset.distance(), transport->get());
      Rng rng(300 + c);
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const VectorObject& query =
            dataset.objects()[rng.NextBounded(dataset.size())];
        const double radius = rng.NextUniform(1.0, 3.0);
        const auto exact = metric::LinearRangeSearch(dataset, query, radius);
        auto answer = client.RangeSearch(query, radius);
        if (!answer.ok() || answer->size() != exact.size()) {
          failures.fetch_add(1);
          return;
        }
        for (size_t i = 0; i < exact.size(); ++i) {
          if ((*answer)[i].id != exact[i].id) {
            failures.fetch_add(1);
            return;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server.connections_accepted(), static_cast<uint64_t>(kClients));
  server.Stop();
}

TEST(ConcurrencyTest, ConcurrentReadersAndWritersKeepIndexConsistent) {
  auto dataset = MakeDataset(211, 800);
  auto pivots = mindex::PivotSet::SelectRandom(dataset.objects(), 8, 212);
  ASSERT_TRUE(pivots.ok());
  auto key = SecretKey::Create(std::move(pivots).value(), Bytes(16, 0x62));
  ASSERT_TRUE(key.ok());

  mindex::MIndexOptions options;
  options.num_pivots = 8;
  options.bucket_capacity = 30;
  options.max_level = 4;
  auto handler = EncryptedMIndexServer::Create(options);
  ASSERT_TRUE(handler.ok());
  net::TcpServer server(handler->get());
  ASSERT_TRUE(server.Start(0).ok());

  // Preload the first half; writers insert the second half while readers
  // query continuously.
  const size_t half = dataset.size() / 2;
  {
    auto transport = net::TcpTransport::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(transport.ok());
    EncryptionClient owner(*key, dataset.distance(), transport->get());
    std::vector<VectorObject> first_half(dataset.objects().begin(),
                                         dataset.objects().begin() + half);
    ASSERT_TRUE(
        owner.InsertBulk(first_half, InsertStrategy::kPrecise, 200).ok());
  }

  std::atomic<int> failures{0};
  std::atomic<bool> writers_done{false};

  std::thread writer([&] {
    auto transport = net::TcpTransport::Connect("127.0.0.1", server.port());
    if (!transport.ok()) {
      failures.fetch_add(1);
      return;
    }
    EncryptionClient client(*key, dataset.distance(), transport->get());
    for (size_t i = half; i < dataset.size(); ++i) {
      if (!client.Insert(dataset.objects()[i], InsertStrategy::kPrecise)
               .ok()) {
        failures.fetch_add(1);
        return;
      }
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      auto transport = net::TcpTransport::Connect("127.0.0.1", server.port());
      if (!transport.ok()) {
        failures.fetch_add(1);
        return;
      }
      EncryptionClient client(*key, dataset.distance(), transport->get());
      Rng rng(400 + r);
      while (!writers_done.load()) {
        // Query within the preloaded half: those objects are always
        // present, so the answer must always contain the query itself.
        const VectorObject& query =
            dataset.objects()[rng.NextBounded(half)];
        auto answer = client.ApproxKnn(query, 1, 50);
        if (!answer.ok() || answer->empty()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }

  writer.join();
  writers_done.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // After the dust settles the index holds everything and is consistent.
  auto transport = net::TcpTransport::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(transport.ok());
  EncryptionClient client(*key, dataset.distance(), transport->get());
  auto stats = client.GetServerStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->object_count, dataset.size());
  EXPECT_TRUE(handler->get()->index().CheckInvariants().ok());
  server.Stop();
}

TEST(ConcurrencyTest, ServerStopWhileClientsConnectedIsClean) {
  auto dataset = MakeDataset(221, 100);
  auto pivots = mindex::PivotSet::SelectRandom(dataset.objects(), 6, 222);
  ASSERT_TRUE(pivots.ok());
  auto key = SecretKey::Create(std::move(pivots).value(), Bytes(16, 0x63));
  ASSERT_TRUE(key.ok());

  mindex::MIndexOptions options;
  options.num_pivots = 6;
  options.max_level = 3;
  auto handler = EncryptedMIndexServer::Create(options);
  ASSERT_TRUE(handler.ok());
  auto server = std::make_unique<net::TcpServer>(handler->get());
  ASSERT_TRUE(server->Start(0).ok());

  auto transport = net::TcpTransport::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(transport.ok());
  EncryptionClient client(*key, dataset.distance(), transport->get());
  ASSERT_TRUE(
      client.InsertBulk(dataset.objects(), InsertStrategy::kPrecise, 50)
          .ok());

  // Stop with the connection still open: must join cleanly, and the
  // client must observe an error rather than hanging.
  server->Stop();
  auto after = client.RangeSearch(dataset.objects()[0], 1.0);
  EXPECT_FALSE(after.ok());
}

}  // namespace
}  // namespace secure
}  // namespace simcloud
