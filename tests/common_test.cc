// Unit and property tests for the common substrate: Status/Result, hex and
// byte helpers, binary serialization, the deterministic RNG, and timing.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/status.h"

namespace simcloud {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int code = 0; code <= 11; ++code) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(code)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

Status FailingOperation() { return Status::IoError("disk gone"); }

Status UsesReturnNotOk() {
  SIMCLOUD_RETURN_NOT_OK(FailingOperation());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkPropagates) {
  EXPECT_EQ(UsesReturnNotOk().code(), StatusCode::kIoError);
}

Result<int> ProducesValue() { return 5; }

Result<int> UsesAssignOrReturn() {
  SIMCLOUD_ASSIGN_OR_RETURN(int v, ProducesValue());
  return v * 2;
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto r = UsesAssignOrReturn();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 10);
}

// ----------------------------------------------------------------- Bytes

TEST(BytesTest, HexRoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(ToHex(data), "0001abff");
  auto back = FromHex("0001abff");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST(BytesTest, HexIsCaseInsensitive) {
  auto r = FromHex("DeadBEEF");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ToHex(*r), "deadbeef");
}

TEST(BytesTest, HexRejectsOddLength) {
  EXPECT_FALSE(FromHex("abc").ok());
}

TEST(BytesTest, HexRejectsBadDigit) {
  EXPECT_FALSE(FromHex("zz").ok());
}

TEST(BytesTest, ConstantTimeEquals) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  Bytes d = {1, 2};
  EXPECT_TRUE(ConstantTimeEquals(a, b));
  EXPECT_FALSE(ConstantTimeEquals(a, c));
  EXPECT_FALSE(ConstantTimeEquals(a, d));
  EXPECT_TRUE(ConstantTimeEquals({}, {}));
}

TEST(BytesTest, WipeBytesZeroesTheBufferBeforeFreeing) {
  // clear() keeps the allocation, so the retained data() pointer still
  // addresses the wiped storage: every byte must read back zero — a
  // plain clear() would leave 0xDE.. in memory for the allocator to
  // hand out later.
  Bytes secret = {0xDE, 0xAD, 0xBE, 0xEF, 0x42};
  const uint8_t* storage = secret.data();
  const size_t len = secret.size();
  WipeBytes(&secret);
  EXPECT_TRUE(secret.empty());
  ASSERT_EQ(secret.data(), storage);  // clear() retains the buffer
  for (size_t i = 0; i < len; ++i) {
    EXPECT_EQ(storage[i], 0) << "byte " << i << " survived the wipe";
  }

  WipeBytes(nullptr);  // must be a safe no-op
  Bytes empty;
  WipeBytes(&empty);
  EXPECT_TRUE(empty.empty());
}

// ------------------------------------------------------------- Serialize

TEST(SerializeTest, FixedWidthRoundTrip) {
  BinaryWriter w;
  w.WriteU8(0xAB);
  w.WriteU16(0xBEEF);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(0x0123456789ABCDEFULL);
  w.WriteI32(-12345);
  w.WriteI64(-9876543210LL);
  w.WriteBool(true);

  BinaryReader r(w.buffer());
  EXPECT_EQ(r.ReadU8().value(), 0xAB);
  EXPECT_EQ(r.ReadU16().value(), 0xBEEF);
  EXPECT_EQ(r.ReadU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadU64().value(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.ReadI32().value(), -12345);
  EXPECT_EQ(r.ReadI64().value(), -9876543210LL);
  EXPECT_TRUE(r.ReadBool().value());
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, VarintBoundaries) {
  const uint64_t values[] = {0,       1,        127,        128,
                             16383,   16384,    UINT32_MAX, (1ULL << 56) - 1,
                             UINT64_MAX};
  BinaryWriter w;
  for (uint64_t v : values) w.WriteVarint(v);
  BinaryReader r(w.buffer());
  for (uint64_t v : values) {
    auto got = r.ReadVarint();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, FloatAndDoubleBitExact) {
  const float floats[] = {0.0f, -0.0f, 1.5f, 3.14159f,
                          std::numeric_limits<float>::max(),
                          std::numeric_limits<float>::denorm_min()};
  BinaryWriter w;
  for (float f : floats) w.WriteFloat(f);
  w.WriteDouble(2.718281828459045);
  BinaryReader r(w.buffer());
  for (float f : floats) {
    EXPECT_EQ(r.ReadFloat().value(), f);
  }
  EXPECT_EQ(r.ReadDouble().value(), 2.718281828459045);
}

TEST(SerializeTest, StringsBytesVectors) {
  BinaryWriter w;
  w.WriteString("hello");
  w.WriteString("");
  w.WriteBytes({9, 8, 7});
  w.WriteFloatVector({1.0f, 2.0f});
  w.WriteU32Vector({3, 1, 4, 1, 5});

  BinaryReader r(w.buffer());
  EXPECT_EQ(r.ReadString().value(), "hello");
  EXPECT_EQ(r.ReadString().value(), "");
  EXPECT_EQ(r.ReadBytes().value(), Bytes({9, 8, 7}));
  EXPECT_EQ(r.ReadFloatVector().value(), std::vector<float>({1.0f, 2.0f}));
  EXPECT_EQ(r.ReadU32Vector().value(), std::vector<uint32_t>({3, 1, 4, 1, 5}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, TruncatedInputIsCorruption) {
  BinaryWriter w;
  w.WriteU64(42);
  for (size_t cut = 0; cut < 8; ++cut) {
    BinaryReader r(w.buffer().data(), cut);
    auto got = r.ReadU64();
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::kCorruption);
  }
}

TEST(SerializeTest, TruncatedStringIsCorruption) {
  BinaryWriter w;
  w.WriteString("hello world");
  Bytes buf = w.buffer();
  buf.resize(buf.size() - 3);
  BinaryReader r(buf);
  EXPECT_FALSE(r.ReadString().ok());
}

TEST(SerializeTest, OverlongVarintIsCorruption) {
  Bytes bad(11, 0xFF);  // 11 continuation bytes: > 64 bits
  BinaryReader r(bad);
  EXPECT_FALSE(r.ReadVarint().ok());
}

TEST(SerializeTest, LyingVectorLengthIsCorruption) {
  // A float vector claiming 2^40 elements must fail without allocating.
  BinaryWriter w;
  w.WriteVarint(1ULL << 40);
  BinaryReader r(w.buffer());
  EXPECT_FALSE(r.ReadFloatVector().ok());
}

// Property: random write/read sequences round-trip.
class SerializeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializeFuzzTest, RandomRoundTrip) {
  Rng rng(GetParam());
  BinaryWriter w;
  std::vector<uint64_t> varints;
  std::vector<std::string> strings;
  for (int i = 0; i < 100; ++i) {
    varints.push_back(rng.NextU64() >> (rng.NextBounded(64)));
    w.WriteVarint(varints.back());
    std::string s(rng.NextBounded(50), 'x');
    for (auto& c : s) c = static_cast<char>(rng.NextBounded(256));
    strings.push_back(s);
    w.WriteString(s);
  }
  BinaryReader r(w.buffer());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(r.ReadVarint().value(), varints[i]);
    EXPECT_EQ(r.ReadString().value(), strings[i]);
  }
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMomentsReasonable) {
  Rng rng(11);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(13);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(std::unique(sample.begin(), sample.end()), sample.end());
  EXPECT_LT(sample.back(), 100u);
}

TEST(RngTest, SampleAllIsPermutation) {
  Rng rng(14);
  auto sample = rng.SampleWithoutReplacement(50, 50);
  std::sort(sample.begin(), sample.end());
  for (size_t i = 0; i < 50; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(15);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// ----------------------------------------------------------------- Clock

TEST(ClockTest, StopwatchAdvances) {
  Stopwatch watch;
  volatile double x = 0;
  for (int i = 0; i < 10000; ++i) x = x + std::sqrt(static_cast<double>(i));
  EXPECT_GT(watch.ElapsedNanos(), 0);
  EXPECT_GE(watch.ElapsedSeconds(), 0.0);
}

TEST(ClockTest, CostAccumulatorSumsAndMerges) {
  CostAccumulator a;
  a.AddNanos("enc", 1000);
  a.AddNanos("enc", 500);
  a.AddCount("bytes", 10);
  EXPECT_DOUBLE_EQ(a.Seconds("enc"), 1.5e-6);
  EXPECT_EQ(a.Count("bytes"), 10);
  EXPECT_DOUBLE_EQ(a.Seconds("missing"), 0.0);

  CostAccumulator b;
  b.AddNanos("enc", 500);
  b.AddCount("bytes", 5);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Seconds("enc"), 2e-6);
  EXPECT_EQ(a.Count("bytes"), 15);

  a.Clear();
  EXPECT_DOUBLE_EQ(a.Seconds("enc"), 0.0);
}

TEST(ClockTest, ScopedTimerAccumulates) {
  CostAccumulator acc;
  {
    ScopedTimer timer(&acc, "work");
    volatile int x = 0;
    for (int i = 0; i < 1000; ++i) x += i;
  }
  EXPECT_GT(acc.durations_nanos().at("work"), 0);
}

}  // namespace
}  // namespace simcloud
