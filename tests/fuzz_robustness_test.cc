// Robustness sweeps: deterministic fuzzing of every untrusted input
// surface. A malicious client can send arbitrary bytes to the server,
// and a malicious server can return arbitrary bytes to the client —
// decoders must fail with a Status, never crash, hang, or over-allocate.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/serialize.h"
#include "mindex/persistence.h"
#include "secure/protocol.h"
#include "secure/secret_key.h"

namespace simcloud {
namespace {

Bytes RandomBytes(Rng* rng, size_t max_len) {
  Bytes data(rng->NextBounded(max_len + 1));
  for (auto& b : data) b = static_cast<uint8_t>(rng->NextBounded(256));
  return data;
}

/// Flips `flips` random bits in a copy of `data`.
Bytes Corrupt(const Bytes& data, Rng* rng, int flips) {
  Bytes corrupted = data;
  for (int i = 0; i < flips && !corrupted.empty(); ++i) {
    corrupted[rng->NextBounded(corrupted.size())] ^=
        static_cast<uint8_t>(1u << rng->NextBounded(8));
  }
  return corrupted;
}

class FuzzSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSeedTest, RequestDecoderNeverCrashesOnRandomBytes) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 500; ++iter) {
    const Bytes garbage = RandomBytes(&rng, 300);
    // Must return (ok or error), not crash. Decoded results of random
    // bytes are fine as long as they were produced safely.
    (void)secure::DecodeRequest(garbage);
  }
}

TEST_P(FuzzSeedTest, ResponseDecodersNeverCrashOnRandomBytes) {
  Rng rng(GetParam() + 100);
  for (int iter = 0; iter < 500; ++iter) {
    const Bytes garbage = RandomBytes(&rng, 300);
    (void)secure::DecodeCandidateResponse(garbage);
    (void)secure::DecodeInsertResponse(garbage);
    (void)secure::DecodeStatsResponse(garbage);
  }
}

TEST_P(FuzzSeedTest, BitFlippedValidRequestsFailCleanly) {
  Rng rng(GetParam() + 200);
  std::vector<secure::InsertItem> items(2);
  items[0] = {1, {1.0f, 2.0f}, {}, Bytes{9, 9, 9}};
  items[1] = {2, {}, {1, 0}, Bytes{8, 8}};
  const Bytes valid = secure::EncodeInsertBatchRequest(items);
  for (int iter = 0; iter < 500; ++iter) {
    const Bytes corrupted = Corrupt(valid, &rng, 1 + iter % 4);
    (void)secure::DecodeRequest(corrupted);  // no crash, no hang
  }
}

TEST_P(FuzzSeedTest, SecretKeyDeserializeNeverCrashes) {
  Rng rng(GetParam() + 300);
  for (int iter = 0; iter < 300; ++iter) {
    (void)secure::SecretKey::Deserialize(RandomBytes(&rng, 200));
  }
  // Bit flips in a valid key blob must either fail or produce a key —
  // never crash.
  mindex::PivotSet pivots({metric::VectorObject(0, {1.0f, 2.0f})});
  auto key = secure::SecretKey::Create(pivots, Bytes(16, 5));
  ASSERT_TRUE(key.ok());
  auto blob = key->Serialize();
  ASSERT_TRUE(blob.ok());
  for (int iter = 0; iter < 300; ++iter) {
    (void)secure::SecretKey::Deserialize(Corrupt(*blob, &rng, 2));
  }
}

TEST_P(FuzzSeedTest, IndexSnapshotDeserializeNeverCrashes) {
  Rng rng(GetParam() + 400);
  for (int iter = 0; iter < 200; ++iter) {
    (void)mindex::DeserializeIndex(RandomBytes(&rng, 400));
  }
}

TEST_P(FuzzSeedTest, BinaryReaderBoundsAreRespected) {
  Rng rng(GetParam() + 500);
  for (int iter = 0; iter < 500; ++iter) {
    const Bytes garbage = RandomBytes(&rng, 64);
    BinaryReader reader(garbage);
    // Interleave reads of every primitive; all must stay in bounds.
    (void)reader.ReadVarint();
    (void)reader.ReadU32();
    (void)reader.ReadBytes();
    (void)reader.ReadFloatVector();
    (void)reader.ReadString();
    (void)reader.ReadDouble();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeedTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace simcloud
