// Robustness sweeps: deterministic fuzzing of every untrusted input
// surface. A malicious client can send arbitrary bytes to the server,
// and a malicious server can return arbitrary bytes to the client —
// decoders must fail with a Status, never crash, hang, or over-allocate.
// The TcpFrameFuzz battery drives the same hostility through a LIVE
// epoll server over raw sockets: torn frames, oversized declared
// lengths, garbage request ids, and mid-pipeline disconnects must at
// worst cost the offending connection — never the server, another
// connection, or the event loop.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <thread>

#include "common/clock.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "mindex/persistence.h"
#include "net/secure_channel.h"
#include "net/tcp.h"
#include "secure/client.h"
#include "secure/protocol.h"
#include "secure/secret_key.h"
#include "secure/server.h"
#include "tests/net_test_util.h"

namespace simcloud {
namespace {

Bytes RandomBytes(Rng* rng, size_t max_len) {
  Bytes data(rng->NextBounded(max_len + 1));
  for (auto& b : data) b = static_cast<uint8_t>(rng->NextBounded(256));
  return data;
}

/// Flips `flips` random bits in a copy of `data`.
Bytes Corrupt(const Bytes& data, Rng* rng, int flips) {
  Bytes corrupted = data;
  for (int i = 0; i < flips && !corrupted.empty(); ++i) {
    corrupted[rng->NextBounded(corrupted.size())] ^=
        static_cast<uint8_t>(1u << rng->NextBounded(8));
  }
  return corrupted;
}

class FuzzSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSeedTest, RequestDecoderNeverCrashesOnRandomBytes) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 500; ++iter) {
    const Bytes garbage = RandomBytes(&rng, 300);
    // Must return (ok or error), not crash. Decoded results of random
    // bytes are fine as long as they were produced safely.
    (void)secure::DecodeRequest(garbage);
  }
}

TEST_P(FuzzSeedTest, ResponseDecodersNeverCrashOnRandomBytes) {
  Rng rng(GetParam() + 100);
  for (int iter = 0; iter < 500; ++iter) {
    const Bytes garbage = RandomBytes(&rng, 300);
    (void)secure::DecodeCandidateResponse(garbage);
    (void)secure::DecodeInsertResponse(garbage);
    (void)secure::DecodeStatsResponse(garbage);
    // A malicious server can also push arbitrary watch frames.
    (void)secure::DecodeWatchFrame(garbage);
  }
}

TEST_P(FuzzSeedTest, BitFlippedWatchRequestsFailCleanly) {
  Rng rng(GetParam() + 600);
  secure::WatchFilter filter;
  filter.kind = secure::WatchFilter::Kind::kRange;
  filter.query_distances = {1.5f, 2.5f, 3.5f};
  filter.radius = 4.25;
  const Bytes watch =
      secure::EncodeWatchRequest(filter, {7, 123456789, 42});
  const Bytes cancel = secure::EncodeWatchCancelRequest(991);
  for (int iter = 0; iter < 500; ++iter) {
    (void)secure::DecodeRequest(Corrupt(watch, &rng, 1 + iter % 4));
    (void)secure::DecodeRequest(Corrupt(cancel, &rng, 1 + iter % 4));
  }
}

TEST_P(FuzzSeedTest, BitFlippedValidRequestsFailCleanly) {
  Rng rng(GetParam() + 200);
  std::vector<secure::InsertItem> items(2);
  items[0] = {1, {1.0f, 2.0f}, {}, Bytes{9, 9, 9}};
  items[1] = {2, {}, {1, 0}, Bytes{8, 8}};
  const Bytes valid = secure::EncodeInsertBatchRequest(items);
  for (int iter = 0; iter < 500; ++iter) {
    const Bytes corrupted = Corrupt(valid, &rng, 1 + iter % 4);
    (void)secure::DecodeRequest(corrupted);  // no crash, no hang
  }
}

TEST_P(FuzzSeedTest, SecretKeyDeserializeNeverCrashes) {
  Rng rng(GetParam() + 300);
  for (int iter = 0; iter < 300; ++iter) {
    (void)secure::SecretKey::Deserialize(RandomBytes(&rng, 200));
  }
  // Bit flips in a valid key blob must either fail or produce a key —
  // never crash.
  mindex::PivotSet pivots({metric::VectorObject(0, {1.0f, 2.0f})});
  auto key = secure::SecretKey::Create(pivots, Bytes(16, 5));
  ASSERT_TRUE(key.ok());
  auto blob = key->Serialize();
  ASSERT_TRUE(blob.ok());
  for (int iter = 0; iter < 300; ++iter) {
    (void)secure::SecretKey::Deserialize(Corrupt(*blob, &rng, 2));
  }
}

TEST_P(FuzzSeedTest, IndexSnapshotDeserializeNeverCrashes) {
  Rng rng(GetParam() + 400);
  for (int iter = 0; iter < 200; ++iter) {
    (void)mindex::DeserializeIndex(RandomBytes(&rng, 400));
  }
}

TEST_P(FuzzSeedTest, BinaryReaderBoundsAreRespected) {
  Rng rng(GetParam() + 500);
  for (int iter = 0; iter < 500; ++iter) {
    const Bytes garbage = RandomBytes(&rng, 64);
    BinaryReader reader(garbage);
    // Interleave reads of every primitive; all must stay in bounds.
    (void)reader.ReadVarint();
    (void)reader.ReadU32();
    (void)reader.ReadBytes();
    (void)reader.ReadFloatVector();
    (void)reader.ReadString();
    (void)reader.ReadDouble();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeedTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Live-server frame fuzzing.
// ---------------------------------------------------------------------------

/// True when the server closed its side of `fd` within ~5 seconds.
bool WaitForSocketClose(int fd) {
  Stopwatch watch;
  uint8_t sink[256];
  while (watch.ElapsedSeconds() < 5.0) {
    const ssize_t n = ::recv(fd, sink, sizeof(sink), MSG_DONTWAIT);
    if (n == 0) return true;                       // clean close
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) return true;
    if (n < 0) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

/// A real encrypted M-Index server behind a real TcpServer, plus one
/// well-behaved probe that must keep getting correct answers no matter
/// what the hostile connections do.
class TcpFrameFuzz : public ::testing::Test {
 protected:
  void SetUp() override {
    mindex::MIndexOptions options;
    options.num_pivots = 4;
    options.max_level = 3;
    auto handler = secure::EncryptedMIndexServer::Create(options);
    ASSERT_TRUE(handler.ok());
    handler_ = std::move(*handler);
    net::TcpServerOptions server_options;
    server_options.max_frame_bytes = 1u << 20;
    server_ = std::make_unique<net::TcpServer>(handler_.get(),
                                               server_options);
    ASSERT_TRUE(server_->Start(0).ok());
  }

  void TearDown() override { server_->Stop(); }

  int RawConnect() { return net::RawConnect(server_->port()); }

  /// The server is still fully alive: a fresh well-behaved connection
  /// round-trips a real request.
  void ExpectServerAlive() {
    auto transport =
        net::TcpTransport::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(transport.ok());
    auto response = (*transport)->Call(secure::EncodeGetStatsRequest());
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    auto stats = secure::DecodeStatsResponse(*response);
    ASSERT_TRUE(stats.ok());
  }

  static bool WaitForClose(int fd) { return WaitForSocketClose(fd); }

  std::unique_ptr<secure::EncryptedMIndexServer> handler_;
  std::unique_ptr<net::TcpServer> server_;
};

TEST_F(TcpFrameFuzz, TornFramesAndAbruptDisconnects) {
  Rng rng(11);
  const Bytes request = secure::EncodeGetStatsRequest();
  for (int iter = 0; iter < 40; ++iter) {
    const int fd = RawConnect();
    // A valid pipelined frame, truncated at a random byte boundary.
    BinaryWriter frame;
    frame.WriteU32(static_cast<uint32_t>(request.size()) |
                   net::kFrameIdFlag);
    frame.WriteU32(7);
    frame.WriteRaw(request.data(), request.size());
    const Bytes& bytes = frame.buffer();
    const size_t cut = rng.NextBounded(bytes.size());
    if (cut > 0) {
      ASSERT_EQ(::send(fd, bytes.data(), cut, MSG_NOSIGNAL),
                static_cast<ssize_t>(cut));
    }
    ::close(fd);  // torn mid-frame
  }
  ExpectServerAlive();
}

TEST_F(TcpFrameFuzz, OversizedDeclaredLengthClosesOnlyThatConnection) {
  for (const uint32_t declared :
       {uint32_t{1u << 20} + 1, uint32_t{64u << 20}, net::kMaxFrameLength}) {
    const int hostile = RawConnect();
    // Another connection opened BEFORE the attack must sail through it.
    auto good = net::TcpTransport::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(good.ok());

    BinaryWriter header;
    header.WriteU32(declared | net::kFrameIdFlag);
    header.WriteU32(9);
    ASSERT_EQ(::send(hostile, header.buffer().data(), 8, MSG_NOSIGNAL), 8);
    EXPECT_TRUE(WaitForClose(hostile))
        << "server kept a connection that declared a " << declared
        << "-byte frame";
    ::close(hostile);

    auto response = (*good)->Call(secure::EncodeGetStatsRequest());
    EXPECT_TRUE(response.ok());
  }
  ExpectServerAlive();
}

TEST_F(TcpFrameFuzz, GarbageRequestIdsAndBodies) {
  // Id 0 with the pipelined flag is a protocol violation: close.
  {
    const int fd = RawConnect();
    BinaryWriter frame;
    frame.WriteU32(4u | net::kFrameIdFlag);
    frame.WriteU32(0);
    frame.WriteU32(0xDEADBEEF);
    ASSERT_EQ(::send(fd, frame.buffer().data(), frame.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(frame.size()));
    EXPECT_TRUE(WaitForClose(fd));
    ::close(fd);
  }
  // Arbitrary ids with garbage bodies are APPLICATION-level traffic:
  // every frame gets a well-formed response echoing ITS id (usually a
  // decode error; a lucky byte pattern may parse as a real no-arg
  // request), and the connection survives all of them.
  Rng rng(12);
  const int fd = RawConnect();
  int decode_errors = 0;
  for (int iter = 0; iter < 50; ++iter) {
    Bytes garbage(1 + rng.NextBounded(64));
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.NextBounded(256));
    const uint32_t id = 1 + static_cast<uint32_t>(rng.NextBounded(1u << 30));
    ASSERT_TRUE(net::WritePipelinedFrame(fd, id, garbage).ok());
    auto frame = net::ReadAnyFrame(fd);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->request_id, id);
    BinaryReader reader(frame->payload);
    ASSERT_TRUE(reader.ReadU64().ok());  // server nanos
    auto ok = reader.ReadBool();
    ASSERT_TRUE(ok.ok());
    if (!*ok) ++decode_errors;
  }
  EXPECT_GT(decode_errors, 25) << "random bodies should mostly fail decode";
  ::close(fd);
  ExpectServerAlive();
}

TEST_F(TcpFrameFuzz, MidPipelineDisconnectsDoNotWedgeTheLoop) {
  const Bytes request = secure::EncodeGetStatsRequest();
  for (int iter = 0; iter < 30; ++iter) {
    const int fd = RawConnect();
    for (uint32_t id = 1; id <= 8; ++id) {
      ASSERT_TRUE(net::WritePipelinedFrame(fd, id, request).ok());
    }
    ::close(fd);  // responses in flight hit a dead connection
  }
  ExpectServerAlive();
  // Every handled request was either answered or dropped with its
  // connection; the engine's accounting must not leak "stuck" work.
  Stopwatch watch;
  while (server_->frames_completed() < server_->frames_dispatched() &&
         watch.ElapsedSeconds() < 10) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server_->frames_completed(), server_->frames_dispatched());
}

TEST_F(TcpFrameFuzz, RandomByteStreams) {
  Rng rng(13);
  for (int iter = 0; iter < 25; ++iter) {
    const int fd = RawConnect();
    Bytes noise(1 + rng.NextBounded(300));
    for (auto& b : noise) b = static_cast<uint8_t>(rng.NextBounded(256));
    // Random first bytes often declare absurd lengths — either the
    // server closes the connection or answers with decode errors; it
    // must never crash or stall.
    (void)::send(fd, noise.data(), noise.size(), MSG_NOSIGNAL);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ::close(fd);
  }
  ExpectServerAlive();
}

TEST_F(TcpFrameFuzz, WatchRegistrationsWithGarbageTokens) {
  Rng rng(14);
  for (int iter = 0; iter < 30; ++iter) {
    const int fd = RawConnect();
    Bytes request;
    if (iter % 2 == 0) {
      // Random resume tokens: future seqs, absurd values, wrong widths.
      std::vector<uint64_t> token(1 + rng.NextBounded(4));
      for (auto& t : token) t = rng.NextU64();
      request = secure::EncodeWatchRequest(secure::WatchFilter{}, token);
    } else {
      // Opcode 11 followed by noise: must die in the decoder.
      request.resize(1 + rng.NextBounded(64));
      request[0] = static_cast<uint8_t>(secure::Op::kWatch);
      for (size_t i = 1; i < request.size(); ++i) {
        request[i] = static_cast<uint8_t>(rng.NextBounded(256));
      }
    }
    ASSERT_TRUE(net::WritePipelinedFrame(fd, 3, request).ok());
    // Whatever happened — rejected token, decode error, or even an
    // accidental registration — the answer is a well-formed frame
    // echoing our id, and the abrupt close below must cost nothing.
    auto frame = net::ReadAnyFrame(fd);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->request_id, 3u);
    ::close(fd);
  }
  ExpectServerAlive();
}

TEST_F(TcpFrameFuzz, WatchCancelsForUnknownIdsAnswerCleanly) {
  Rng rng(15);
  const int fd = RawConnect();
  for (int iter = 0; iter < 40; ++iter) {
    const uint32_t id = 1 + static_cast<uint32_t>(iter);
    const Bytes request = secure::EncodeWatchCancelRequest(rng.NextU64());
    ASSERT_TRUE(net::WritePipelinedFrame(fd, id, request).ok());
    auto frame = net::ReadAnyFrame(fd);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->request_id, id);
  }
  ::close(fd);
  ExpectServerAlive();
}

TEST_F(TcpFrameFuzz, WatchersVanishingMidPushDoNotWedgeTheHub) {
  // Real registrations whose connections die with pushes in flight:
  // the delivery thread must drop each dead subscription and the server
  // must keep serving.
  const Bytes watch_request =
      secure::EncodeWatchRequest(secure::WatchFilter{}, {});
  auto writer = net::TcpTransport::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(writer.ok());
  for (int iter = 0; iter < 10; ++iter) {
    const int fd = RawConnect();
    ASSERT_TRUE(net::WritePipelinedFrame(fd, 1, watch_request).ok());
    auto ack = net::ReadAnyFrame(fd);
    ASSERT_TRUE(ack.ok()) << ack.status().ToString();

    // Mutations on another connection start push traffic at the watcher.
    std::vector<secure::InsertItem> items(4);
    for (size_t i = 0; i < items.size(); ++i) {
      items[i].id = static_cast<metric::ObjectId>(iter * 100 + i);
      items[i].pivot_distances = {1.0f, 2.0f, 3.0f, 4.0f};
      items[i].payload = Bytes{0xAB, 0xCD};
    }
    auto inserted =
        (*writer)->Call(secure::EncodeInsertBatchRequest(items));
    ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
    ::close(fd);  // pushes in flight hit a dead connection
  }
  ExpectServerAlive();
  // Reaping is lazy — a dead subscription is dropped at the next
  // delivery sweep, so publish one more mutation to trigger it, then
  // every orphan must drain out of the hub.
  std::vector<secure::InsertItem> nudge(1);
  nudge[0].id = 99999;
  nudge[0].pivot_distances = {1.0f, 2.0f, 3.0f, 4.0f};
  nudge[0].payload = Bytes{0xEE};
  ASSERT_TRUE((*writer)->Call(secure::EncodeInsertBatchRequest(nudge)).ok());
  Stopwatch watch;
  while (handler_->watch_hub()->active() > 0 &&
         watch.ElapsedSeconds() < 10) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(handler_->watch_hub()->active(), 0u);
}

// --------------------------------------------------------------------------
// Cursor opcodes under hostility: garbage / stale / replayed cursor ids,
// torn cursor frames, and cursor requests over legacy framing.
// --------------------------------------------------------------------------

namespace {

/// Seeds the fuzz server with `count` synthetic objects so range cursors
/// actually page (the fixture's index starts empty).
void SeedCursorObjects(secure::EncryptedMIndexServer* handler, int count) {
  std::vector<secure::InsertItem> items(count);
  for (int i = 0; i < count; ++i) {
    items[i].id = static_cast<metric::ObjectId>(10000 + i);
    items[i].pivot_distances = {1.0f + i, 2.0f + i, 3.0f + i, 4.0f + i};
    items[i].payload = Bytes{0x10, static_cast<uint8_t>(i)};
  }
  auto inserted = handler->Handle(secure::EncodeInsertBatchRequest(items));
  ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
}

/// A response body split into its parts: `ok` + payload, or the error.
struct ParsedBody {
  bool ok = false;
  Bytes payload;
  std::string error;
};

ParsedBody ParseResponseBody(const Bytes& body) {
  BinaryReader reader(body);
  auto nanos = reader.ReadU64();
  EXPECT_TRUE(nanos.ok());
  auto ok = reader.ReadBool();
  EXPECT_TRUE(ok.ok());
  ParsedBody parsed;
  parsed.ok = ok.ok() && *ok;
  if (parsed.ok) {
    parsed.payload = Bytes(body.begin() + reader.position(), body.end());
  } else {
    auto message = reader.ReadString();
    EXPECT_TRUE(message.ok());
    if (message.ok()) parsed.error = *message;
  }
  return parsed;
}

/// The fixture's 4-pivot query covering every seeded object.
Bytes CursorOpenRequest(uint64_t page_size) {
  return secure::EncodeRangeSearchCursorRequest({1.0f, 2.0f, 3.0f, 4.0f},
                                                1e9, page_size, 0);
}

}  // namespace

TEST_F(TcpFrameFuzz, CursorGarbageStaleAndReplayedIdsFailCleanly) {
  SeedCursorObjects(handler_.get(), 12);
  const int fd = RawConnect();
  uint32_t frame = 1;
  auto round_trip = [&](const Bytes& request) {
    const uint32_t id = frame++;
    EXPECT_TRUE(net::WritePipelinedFrame(fd, id, request).ok());
    auto response = net::ReadAnyFrame(fd);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->request_id, id);
    return ParseResponseBody(response->payload);
  };

  // Garbage ids: every kCursorNext answers a clean error naming the
  // unknown cursor; the connection survives all of them.
  Rng rng(41);
  for (int i = 0; i < 20; ++i) {
    const uint64_t bogus = 1000000 + rng.NextBounded(1u << 30);
    ParsedBody next = round_trip(secure::EncodeCursorNextRequest(bogus));
    EXPECT_FALSE(next.ok);
    EXPECT_NE(next.error.find("unknown cursor"), std::string::npos)
        << next.error;
  }

  // A REPLAYED id: drain a real cursor to exhaustion, then next it
  // again — the id is dead, the answer is the same clean error.
  ParsedBody open = round_trip(CursorOpenRequest(/*page_size=*/3));
  ASSERT_TRUE(open.ok) << open.error;
  auto page = secure::DecodeCursorPage(open.payload);
  ASSERT_TRUE(page.ok());
  const uint64_t drained_id = page->cursor_id;
  ASSERT_NE(drained_id, 0u);
  uint64_t cursor_id = drained_id;
  while (cursor_id != 0) {
    ParsedBody next =
        round_trip(secure::EncodeCursorNextRequest(cursor_id));
    ASSERT_TRUE(next.ok) << next.error;
    auto next_page = secure::DecodeCursorPage(next.payload);
    ASSERT_TRUE(next_page.ok());
    cursor_id = next_page->cursor_id;
  }
  ParsedBody replayed =
      round_trip(secure::EncodeCursorNextRequest(drained_id));
  EXPECT_FALSE(replayed.ok);
  EXPECT_NE(replayed.error.find("unknown cursor"), std::string::npos);

  // A STALE id: close a live cursor, then keep using it. Next fails
  // cleanly; a second close stays an idempotent 0-ack.
  ParsedBody reopened = round_trip(CursorOpenRequest(/*page_size=*/3));
  ASSERT_TRUE(reopened.ok) << reopened.error;
  auto live = secure::DecodeCursorPage(reopened.payload);
  ASSERT_TRUE(live.ok());
  ASSERT_NE(live->cursor_id, 0u);
  ParsedBody closed =
      round_trip(secure::EncodeCursorCloseRequest(live->cursor_id));
  ASSERT_TRUE(closed.ok) << closed.error;
  ParsedBody stale = round_trip(secure::EncodeCursorNextRequest(live->cursor_id));
  EXPECT_FALSE(stale.ok);
  EXPECT_NE(stale.error.find("unknown cursor"), std::string::npos);
  ParsedBody again =
      round_trip(secure::EncodeCursorCloseRequest(live->cursor_id));
  EXPECT_TRUE(again.ok) << "double close must be an ack, not an error";

  ::close(fd);
  ExpectServerAlive();
}

TEST_F(TcpFrameFuzz, TornCursorFramesDoNotWedgeOrLeakCursors) {
  SeedCursorObjects(handler_.get(), 8);
  const Bytes open_request = CursorOpenRequest(/*page_size=*/2);

  // Cursor frames truncated at every interesting boundary, connection
  // dropped mid-header or mid-body: each costs only its connection.
  BinaryWriter framed;
  framed.WriteU32(static_cast<uint32_t>(open_request.size()) |
                  net::kFrameIdFlag);
  framed.WriteU32(7);
  framed.WriteRaw(open_request.data(), open_request.size());
  const Bytes full(framed.buffer().begin(), framed.buffer().end());
  for (size_t cut : {size_t{1}, size_t{4}, size_t{5}, size_t{8},
                     full.size() - 1}) {
    const int fd = RawConnect();
    ASSERT_EQ(::send(fd, full.data(), cut, MSG_NOSIGNAL),
              static_cast<ssize_t>(cut));
    ::close(fd);
  }

  // A real open followed by a torn kCursorNext and an abrupt
  // disconnect: the server drops the connection AND reaps its cursor.
  const int fd = RawConnect();
  ASSERT_TRUE(net::WritePipelinedFrame(fd, 1, open_request).ok());
  auto response = net::ReadAnyFrame(fd);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ParsedBody open = ParseResponseBody(response->payload);
  ASSERT_TRUE(open.ok) << open.error;
  auto page = secure::DecodeCursorPage(open.payload);
  ASSERT_TRUE(page.ok());
  ASSERT_NE(page->cursor_id, 0u);
  EXPECT_EQ(handler_->cursors().counters().open, 1u);
  BinaryWriter torn;
  torn.WriteU32(64u | net::kFrameIdFlag);  // declares 64 bytes, sends 4
  torn.WriteU32(2);
  ASSERT_EQ(::send(fd, torn.buffer().data(), torn.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(torn.size()));
  ::close(fd);
  Stopwatch watch;
  while (handler_->cursors().counters().open > 0 &&
         watch.ElapsedSeconds() < 10) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(handler_->cursors().counters().open, 0u)
      << "torn connection leaked its cursor";
  ExpectServerAlive();
}

TEST_F(TcpFrameFuzz, CursorOpcodesOverLegacyFramingFailCleanly) {
  SeedCursorObjects(handler_.get(), 8);
  const int fd = RawConnect();
  auto legacy_round_trip = [&](const Bytes& request) {
    EXPECT_TRUE(net::WriteFrame(fd, request).ok());
    auto body = net::ReadFrame(fd);
    EXPECT_TRUE(body.ok()) << body.status().ToString();
    return ParseResponseBody(*body);
  };

  // Stateful cursor opcodes over legacy (bit-31-clear) framing: a clean
  // refusal naming the requirement — the connection is NOT closed.
  ParsedBody open = legacy_round_trip(CursorOpenRequest(/*page_size=*/2));
  EXPECT_FALSE(open.ok);
  EXPECT_NE(open.error.find("pipelined"), std::string::npos) << open.error;
  ParsedBody next = legacy_round_trip(secure::EncodeCursorNextRequest(1));
  EXPECT_FALSE(next.ok);
  EXPECT_NE(next.error.find("pipelined"), std::string::npos) << next.error;
  // kCursorClose is stateless and idempotent: it answers a 0-ack even
  // here (there is nothing to leak by answering).
  ParsedBody close_ack =
      legacy_round_trip(secure::EncodeCursorCloseRequest(12345));
  EXPECT_TRUE(close_ack.ok) << close_ack.error;

  // The SAME connection still serves ordinary legacy traffic.
  ParsedBody stats = legacy_round_trip(secure::EncodeGetStatsRequest());
  EXPECT_TRUE(stats.ok) << stats.error;
  EXPECT_TRUE(secure::DecodeStatsResponse(stats.payload).ok());
  EXPECT_EQ(handler_->cursors().counters().open, 0u);
  ::close(fd);
  ExpectServerAlive();
}

TEST_F(TcpFrameFuzz, GetMetricsOverLegacyFramingFailsCleanly) {
  const int fd = RawConnect();
  auto legacy_round_trip = [&](const Bytes& request) {
    EXPECT_TRUE(net::WriteFrame(fd, request).ok());
    auto body = net::ReadFrame(fd);
    EXPECT_TRUE(body.ok()) << body.status().ToString();
    return ParseResponseBody(*body);
  };

  // kGetMetrics over legacy (bit-31-clear) framing: a clean refusal
  // naming the requirement, no registry snapshot in the response, and
  // the connection is NOT closed.
  ParsedBody refused = legacy_round_trip(secure::EncodeGetMetricsRequest());
  EXPECT_FALSE(refused.ok);
  EXPECT_NE(refused.error.find("pipelined"), std::string::npos)
      << refused.error;
  EXPECT_TRUE(refused.payload.empty());

  // The SAME connection still serves ordinary legacy traffic.
  ParsedBody stats = legacy_round_trip(secure::EncodeGetStatsRequest());
  EXPECT_TRUE(stats.ok) << stats.error;
  EXPECT_TRUE(secure::DecodeStatsResponse(stats.payload).ok());
  ::close(fd);

  // Over pipelined framing the same request answers a decodable
  // snapshot on a raw socket.
  const int piped = net::RawConnect(server_->port());
  ASSERT_TRUE(
      net::WritePipelinedFrame(piped, 3, secure::EncodeGetMetricsRequest())
          .ok());
  auto response = net::ReadAnyFrame(piped);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->request_id, 3u);
  ParsedBody scraped = ParseResponseBody(response->payload);
  ASSERT_TRUE(scraped.ok) << scraped.error;
  EXPECT_TRUE(secure::DecodeMetricsResponse(scraped.payload).ok());
  ::close(piped);
  ExpectServerAlive();
}

TEST_F(TcpFrameFuzz, GetMetricsWithTrailingJunkOrTornFramesLeaksNothing) {
  // Opcode 16 with trailing bytes: the decoder rejects the request (the
  // strictly-empty body is the anti-confusion guard), so no registry
  // snapshot leaves the process, and the connection keeps serving.
  Rng rng(23);
  const int fd = RawConnect();
  for (int iter = 0; iter < 20; ++iter) {
    Bytes junk = secure::EncodeGetMetricsRequest();
    const size_t extra = 1 + rng.NextBounded(32);
    for (size_t i = 0; i < extra; ++i) {
      junk.push_back(static_cast<uint8_t>(rng.NextBounded(256)));
    }
    const uint32_t id = 1 + static_cast<uint32_t>(iter);
    ASSERT_TRUE(net::WritePipelinedFrame(fd, id, junk).ok());
    auto frame = net::ReadAnyFrame(fd);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->request_id, id);
    ParsedBody parsed = ParseResponseBody(frame->payload);
    EXPECT_FALSE(parsed.ok);
    EXPECT_TRUE(parsed.payload.empty()) << "error responses carry no payload";
  }
  // A clean kGetMetrics on the same connection still works.
  ASSERT_TRUE(
      net::WritePipelinedFrame(fd, 900, secure::EncodeGetMetricsRequest())
          .ok());
  auto good = net::ReadAnyFrame(fd);
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  ParsedBody scraped = ParseResponseBody(good->payload);
  ASSERT_TRUE(scraped.ok) << scraped.error;
  EXPECT_TRUE(secure::DecodeMetricsResponse(scraped.payload).ok());
  ::close(fd);

  // Torn kGetMetrics frames cut at every header/body boundary cost only
  // their connection.
  BinaryWriter framed;
  const Bytes request = secure::EncodeGetMetricsRequest();
  framed.WriteU32(static_cast<uint32_t>(request.size()) | net::kFrameIdFlag);
  framed.WriteU32(5);
  framed.WriteRaw(request.data(), request.size());
  const Bytes full(framed.buffer().begin(), framed.buffer().end());
  for (size_t cut = 1; cut < full.size(); ++cut) {
    const int torn = RawConnect();
    ASSERT_EQ(::send(torn, full.data(), cut, MSG_NOSIGNAL),
              static_cast<ssize_t>(cut));
    ::close(torn);
  }
  ExpectServerAlive();
}

// ---------------------------------------------------------------------------
// Live SECURE-server fuzzing: hostile handshakes and records.
// ---------------------------------------------------------------------------

/// The TcpFrameFuzz setup with ChannelPolicy::kSecure: every violation
/// of the handshake or record layer must cost exactly the offending
/// connection, and well-behaved secure clients must keep working.
class SecureTcpFrameFuzz : public ::testing::Test {
 protected:
  static constexpr uint8_t kPskFill = 0x5C;

  void SetUp() override {
    mindex::MIndexOptions options;
    options.num_pivots = 4;
    options.max_level = 3;
    auto handler = secure::EncryptedMIndexServer::Create(options);
    ASSERT_TRUE(handler.ok());
    handler_ = std::move(*handler);
    net::TcpServerOptions server_options;
    server_options.max_frame_bytes = 1u << 20;
    server_options.channel_policy = net::ChannelPolicy::kSecure;
    server_options.secure_channel.psk = Bytes(32, kPskFill);
    server_ = std::make_unique<net::TcpServer>(handler_.get(),
                                               server_options);
    ASSERT_TRUE(server_->Start(0).ok());
  }

  void TearDown() override { server_->Stop(); }

  int RawConnect() { return net::RawConnect(server_->port()); }

  net::SecureChannelOptions ClientOptions() {
    net::SecureChannelOptions options;
    options.psk = Bytes(32, kPskFill);
    return options;
  }

  /// Completes a real handshake over a raw socket; returns the open
  /// channel (blocking reads, 5 s timeout).
  std::unique_ptr<net::SecureChannel> HandshakeOn(int fd) {
    auto channel = net::RunClientHandshake(fd, ClientOptions());
    EXPECT_TRUE(channel.ok()) << channel.status().ToString();
    return channel.ok() ? std::move(*channel) : nullptr;
  }

  void ExpectServerAlive() {
    auto transport =
        net::TcpTransport::Connect("127.0.0.1", server_->port(),
                                   net::ChannelPolicy::kSecure,
                                   ClientOptions());
    ASSERT_TRUE(transport.ok()) << transport.status().ToString();
    auto response = (*transport)->Call(secure::EncodeGetStatsRequest());
    ASSERT_TRUE(response.ok()) << response.status().ToString();
  }

  static bool WaitForClose(int fd) { return WaitForSocketClose(fd); }

  std::unique_ptr<secure::EncryptedMIndexServer> handler_;
  std::unique_ptr<net::TcpServer> server_;
};

TEST_F(SecureTcpFrameFuzz, GarbageAndTornHandshakes) {
  Rng rng(21);
  for (int iter = 0; iter < 40; ++iter) {
    const int fd = RawConnect();
    if (iter % 3 == 0) {
      // Pure noise instead of a hello.
      Bytes noise(1 + rng.NextBounded(200));
      for (auto& b : noise) b = static_cast<uint8_t>(rng.NextBounded(256));
      (void)::send(fd, noise.data(), noise.size(), MSG_NOSIGNAL);
    } else {
      // A valid hello torn at a random byte, then an abrupt close.
      auto handshake = net::ClientHandshake::Start(ClientOptions());
      ASSERT_TRUE(handshake.ok());
      const Bytes& hello = handshake->hello();
      const size_t cut = rng.NextBounded(hello.size());
      if (cut > 0) {
        (void)::send(fd, hello.data(), cut, MSG_NOSIGNAL);
      }
    }
    ::close(fd);
  }
  ExpectServerAlive();
}

TEST_F(SecureTcpFrameFuzz, PlaintextProtocolFramesAreHardClosed) {
  // Well-formed PLAINTEXT frames of the real protocol: a downgrade
  // attempt. The server must close without answering.
  const Bytes request = secure::EncodeGetStatsRequest();
  {
    const int fd = RawConnect();
    ASSERT_TRUE(net::WriteFrame(fd, request).ok());
    EXPECT_TRUE(WaitForClose(fd)) << "secure server served a legacy frame";
    ::close(fd);
  }
  {
    const int fd = RawConnect();
    ASSERT_TRUE(net::WritePipelinedFrame(fd, 7, request).ok());
    EXPECT_TRUE(WaitForClose(fd));
    ::close(fd);
  }
  ExpectServerAlive();
}

TEST_F(SecureTcpFrameFuzz, GarbageAndOversizedRecordsAfterRealHandshake) {
  Rng rng(22);
  // Oversized declared record length.
  {
    const int fd = RawConnect();
    auto channel = HandshakeOn(fd);
    ASSERT_NE(channel, nullptr);
    const uint8_t huge[8] = {0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0};
    ASSERT_EQ(::send(fd, huge, sizeof(huge), MSG_NOSIGNAL), 8);
    EXPECT_TRUE(WaitForClose(fd))
        << "server kept a connection declaring a 2 GiB record";
    ::close(fd);
  }
  // Records full of noise: authentication must fail and close.
  for (int iter = 0; iter < 10; ++iter) {
    const int fd = RawConnect();
    auto channel = HandshakeOn(fd);
    ASSERT_NE(channel, nullptr);
    const uint32_t len = 48 + rng.NextBounded(128);
    Bytes bogus(4 + len);
    for (int i = 0; i < 4; ++i) {
      bogus[i] = static_cast<uint8_t>(len >> (8 * i));
    }
    for (size_t i = 4; i < bogus.size(); ++i) {
      bogus[i] = static_cast<uint8_t>(rng.NextBounded(256));
    }
    ASSERT_EQ(::send(fd, bogus.data(), bogus.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bogus.size()));
    EXPECT_TRUE(WaitForClose(fd));
    ::close(fd);
  }
  ExpectServerAlive();
}

TEST_F(SecureTcpFrameFuzz, TamperedAndReplayedRecordsCloseTheConnection) {
  const Bytes request = secure::EncodeGetStatsRequest();
  BinaryWriter frame;
  frame.WriteU32(static_cast<uint32_t>(request.size()) | net::kFrameIdFlag);
  frame.WriteU32(5);
  frame.WriteRaw(request.data(), request.size());

  // Tampered: flip one ciphertext bit of a genuine record.
  {
    const int fd = RawConnect();
    auto channel = HandshakeOn(fd);
    ASSERT_NE(channel, nullptr);
    auto record = channel->Seal(frame.buffer());
    ASSERT_TRUE(record.ok());
    Bytes tampered = *record;
    tampered[tampered.size() / 2] ^= 0x04;
    ASSERT_EQ(::send(fd, tampered.data(), tampered.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(tampered.size()));
    EXPECT_TRUE(WaitForClose(fd));
    ::close(fd);
  }
  // Replayed: the same genuine record twice. The first answers; the
  // second must kill the connection (sequence moved on).
  {
    const int fd = RawConnect();
    auto channel = HandshakeOn(fd);
    ASSERT_NE(channel, nullptr);
    auto record = channel->Seal(frame.buffer());
    ASSERT_TRUE(record.ok());
    ASSERT_EQ(::send(fd, record->data(), record->size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(record->size()));
    ASSERT_EQ(::send(fd, record->data(), record->size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(record->size()));
    EXPECT_TRUE(WaitForClose(fd));
    ::close(fd);
  }
  ExpectServerAlive();
}

TEST_F(SecureTcpFrameFuzz, MidPipelineDisconnectsDoNotWedgeTheLoop) {
  const Bytes request = secure::EncodeGetStatsRequest();
  for (int iter = 0; iter < 15; ++iter) {
    const int fd = RawConnect();
    auto channel = HandshakeOn(fd);
    ASSERT_NE(channel, nullptr);
    for (uint32_t id = 1; id <= 6; ++id) {
      BinaryWriter frame;
      frame.WriteU32(static_cast<uint32_t>(request.size()) |
                     net::kFrameIdFlag);
      frame.WriteU32(id);
      frame.WriteRaw(request.data(), request.size());
      auto record = channel->Seal(frame.buffer());
      ASSERT_TRUE(record.ok());
      ASSERT_EQ(::send(fd, record->data(), record->size(), MSG_NOSIGNAL),
                static_cast<ssize_t>(record->size()));
    }
    ::close(fd);  // responses in flight hit a dead connection
  }
  ExpectServerAlive();
  Stopwatch watch;
  while (server_->frames_completed() < server_->frames_dispatched() &&
         watch.ElapsedSeconds() < 10) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server_->frames_completed(), server_->frames_dispatched());
}

}  // namespace
}  // namespace simcloud
