// Sharded similarity-cloud tests: a ShardedServer must be a drop-in
// replacement for the single-node server — identical range results,
// equivalent approximate k-NN behaviour, shard-local deletes — while
// actually spreading the data across nodes.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/rng.h"
#include "data/synthetic.h"
#include "metric/ground_truth.h"
#include "net/tcp.h"
#include "secure/client.h"
#include "secure/server.h"
#include "secure/sharded_server.h"

namespace simcloud {
namespace secure {
namespace {

using metric::VectorObject;

struct ShardedWorld {
  metric::Dataset dataset{};
  SecretKey key;
  std::unique_ptr<ShardedServer> server;
  std::unique_ptr<net::LoopbackTransport> transport;
  std::unique_ptr<EncryptionClient> client;
};

ShardedWorld MakeShardedWorld(size_t num_shards,
                              InsertStrategy strategy =
                                  InsertStrategy::kPrecise,
                              uint64_t seed = 501) {
  ShardedWorld world{
      .dataset = {},
      .key =
          []() {
            auto pivots = mindex::PivotSet({VectorObject(0, {0.0f})});
            return SecretKey::Create(std::move(pivots), Bytes(16, 1)).value();
          }(),
      .server = nullptr,
      .transport = nullptr,
      .client = nullptr};

  data::MixtureOptions options;
  options.num_objects = 800;
  options.dimension = 8;
  options.num_clusters = 6;
  options.seed = seed;
  world.dataset = metric::Dataset("sharded", data::MakeGaussianMixture(options),
                                  std::make_shared<metric::L2Distance>());
  auto pivots =
      mindex::PivotSet::SelectRandom(world.dataset.objects(), 10, seed + 1);
  EXPECT_TRUE(pivots.ok());
  auto key = SecretKey::Create(std::move(pivots).value(), Bytes(16, 0x51));
  EXPECT_TRUE(key.ok());
  world.key = std::move(key).value();

  mindex::MIndexOptions index_options;
  index_options.num_pivots = 10;
  index_options.bucket_capacity = 40;
  index_options.max_level = 4;
  auto server = ShardedServer::Create(index_options, num_shards);
  EXPECT_TRUE(server.ok());
  world.server = std::move(server).value();
  world.transport =
      std::make_unique<net::LoopbackTransport>(world.server.get());
  world.client = std::make_unique<EncryptionClient>(
      world.key, world.dataset.distance(), world.transport.get());
  EXPECT_TRUE(
      world.client->InsertBulk(world.dataset.objects(), strategy, 200).ok());
  return world;
}

TEST(ShardedServerTest, CreateValidates) {
  mindex::MIndexOptions options;
  EXPECT_FALSE(ShardedServer::Create(options, 0).ok());
  auto server = ShardedServer::Create(options, 3);
  ASSERT_TRUE(server.ok());
  EXPECT_EQ((*server)->num_shards(), 3u);
}

TEST(ShardedServerTest, DataActuallySpreadsAcrossShards) {
  auto world = MakeShardedWorld(4);
  EXPECT_EQ(world.server->TotalObjects(), world.dataset.size());
  size_t populated = 0;
  for (size_t i = 0; i < world.server->num_shards(); ++i) {
    if (world.server->shard(i).index().size() > 0) ++populated;
  }
  EXPECT_GE(populated, 2u) << "with 10 pivots and 4 shards, several shards "
                              "must own top-level cells";
}

TEST(ShardedServerTest, RangeSearchEqualsGroundTruthAcrossShardCounts) {
  for (size_t shards : {1u, 2u, 5u}) {
    auto world = MakeShardedWorld(shards);
    Rng rng(600 + shards);
    for (int iter = 0; iter < 4; ++iter) {
      const VectorObject& query =
          world.dataset.objects()[rng.NextBounded(world.dataset.size())];
      const double radius = rng.NextUniform(1.0, 3.0);
      const auto exact =
          metric::LinearRangeSearch(world.dataset, query, radius);
      auto answer = world.client->RangeSearch(query, radius);
      ASSERT_TRUE(answer.ok());
      ASSERT_EQ(answer->size(), exact.size())
          << "shards=" << shards << " iter=" << iter;
      for (size_t i = 0; i < exact.size(); ++i) {
        EXPECT_EQ((*answer)[i].id, exact[i].id);
      }
    }
  }
}

TEST(ShardedServerTest, ShardedMatchesSingleNodeOnTheSameWorkload) {
  // The sharded facade and one big server over the same pivots and data
  // must return identical approximate answers: the merge keeps the
  // globally best-ranked candidates, which is exactly what the
  // single-node promise-ordered traversal yields for the same budget.
  auto sharded = MakeShardedWorld(3, InsertStrategy::kPermutationOnly);

  mindex::MIndexOptions index_options;
  index_options.num_pivots = 10;
  index_options.bucket_capacity = 40;
  index_options.max_level = 4;
  auto single = EncryptedMIndexServer::Create(index_options);
  ASSERT_TRUE(single.ok());
  net::LoopbackTransport single_transport(single->get());
  EncryptionClient single_client(sharded.key, sharded.dataset.distance(),
                                 &single_transport);
  ASSERT_TRUE(single_client
                  .InsertBulk(sharded.dataset.objects(),
                              InsertStrategy::kPermutationOnly, 200)
                  .ok());

  // The two deployments form their candidate sets differently (the
  // sharded merge keeps the globally best cand_size candidates by
  // pre-rank score out of up to cand_size per shard; the single node
  // trims its own promise-ordered collection), so individual tails can
  // differ in either direction. The invariants: the top result agrees
  // (the query itself), and aggregate recall is equivalent.
  Rng rng(77);
  const size_t k = 10;
  double sharded_recall = 0;
  double single_recall = 0;
  const int kIters = 10;
  for (int iter = 0; iter < kIters; ++iter) {
    const VectorObject& query =
        sharded.dataset.objects()[rng.NextBounded(sharded.dataset.size())];
    const auto exact = metric::LinearKnnSearch(sharded.dataset, query, k);
    auto a = sharded.client->ApproxKnn(query, k, 200);
    auto b = single_client.ApproxKnn(query, k, 200);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_FALSE(a->empty());
    ASSERT_FALSE(b->empty());
    EXPECT_EQ((*a)[0].id, (*b)[0].id) << "iter " << iter;
    sharded_recall += metric::RecallPercent(*a, exact);
    single_recall += metric::RecallPercent(*b, exact);
  }
  EXPECT_GE(sharded_recall / kIters, single_recall / kIters - 5.0)
      << "sharded recall must not collapse relative to single-node";
}

TEST(ShardedServerTest, DeleteRoutesToOwningShard) {
  auto world = MakeShardedWorld(4);
  const VectorObject& victim = world.dataset.objects()[33];
  ASSERT_TRUE(world.client->Delete(victim).ok());
  EXPECT_EQ(world.server->TotalObjects(), world.dataset.size() - 1);
  EXPECT_FALSE(world.client->Delete(victim).ok()) << "double delete";

  auto after = world.client->RangeSearch(victim, 0.5);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(std::none_of(
      after->begin(), after->end(),
      [&](const metric::Neighbor& n) { return n.id == victim.id(); }));
}

TEST(ShardedServerTest, StatsAggregateAcrossShards) {
  auto world = MakeShardedWorld(4);
  auto stats = world.client->GetServerStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->object_count, world.dataset.size());
  uint64_t leaf_sum = 0;
  for (size_t i = 0; i < world.server->num_shards(); ++i) {
    leaf_sum += world.server->shard(i).index().Stats().leaf_count;
  }
  EXPECT_EQ(stats->leaf_count, leaf_sum);
}

TEST(ShardedServerTest, PreciseKnnWorksThroughTheFacade) {
  auto world = MakeShardedWorld(3);
  const VectorObject& query = world.dataset.objects()[5];
  const auto exact = metric::LinearKnnSearch(world.dataset, query, 7);
  auto answer = world.client->PreciseKnn(query, 7);
  ASSERT_TRUE(answer.ok());
  ASSERT_EQ(answer->size(), exact.size());
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ((*answer)[i].id, exact[i].id);
  }
}

TEST(ShardedServerTest, RemoteShardsOverPersistentConnections) {
  // Three shard servers as separate TcpServer processes-in-miniature;
  // the facade connects to them over persistent pipelined connections
  // and must behave exactly like a local sharded deployment.
  const size_t kShards = 3;
  mindex::MIndexOptions index_options;
  index_options.num_pivots = 10;
  index_options.bucket_capacity = 40;
  index_options.max_level = 4;

  std::vector<std::unique_ptr<EncryptedMIndexServer>> shard_handlers;
  std::vector<std::unique_ptr<net::TcpServer>> shard_servers;
  std::vector<ShardEndpoint> endpoints;
  for (size_t i = 0; i < kShards; ++i) {
    auto handler = EncryptedMIndexServer::Create(index_options);
    ASSERT_TRUE(handler.ok());
    shard_handlers.push_back(std::move(*handler));
    shard_servers.push_back(
        std::make_unique<net::TcpServer>(shard_handlers.back().get()));
    ASSERT_TRUE(shard_servers.back()->Start(0).ok());
    endpoints.push_back(ShardEndpoint{"127.0.0.1",
                                      shard_servers.back()->port()});
  }

  auto facade = ShardedServer::Connect(endpoints, index_options.num_pivots);
  ASSERT_TRUE(facade.ok()) << facade.status().ToString();
  EXPECT_FALSE((*facade)->is_local());
  EXPECT_EQ((*facade)->num_shards(), kShards);

  data::MixtureOptions mixture;
  mixture.num_objects = 500;
  mixture.dimension = 8;
  mixture.num_clusters = 5;
  mixture.seed = 601;
  metric::Dataset dataset("remote", data::MakeGaussianMixture(mixture),
                          std::make_shared<metric::L2Distance>());
  auto pivots = mindex::PivotSet::SelectRandom(dataset.objects(), 10, 602);
  ASSERT_TRUE(pivots.ok());
  auto key = SecretKey::Create(std::move(pivots).value(), Bytes(16, 0x52));
  ASSERT_TRUE(key.ok());

  net::LoopbackTransport transport(facade->get());
  EncryptionClient client(*key, dataset.distance(), &transport);
  ASSERT_TRUE(
      client.InsertBulk(dataset.objects(), InsertStrategy::kPrecise, 100)
          .ok());

  // Data actually landed on the remote shards.
  EXPECT_EQ((*facade)->TotalObjects(), dataset.size());
  size_t populated = 0;
  for (const auto& handler : shard_handlers) {
    if (handler->index().size() > 0) ++populated;
  }
  EXPECT_GE(populated, 2u);

  // Exact range answers through the remote fan-out.
  Rng rng(603);
  for (int q = 0; q < 8; ++q) {
    const VectorObject& query =
        dataset.objects()[rng.NextBounded(dataset.size())];
    const double radius = rng.NextUniform(1.0, 3.0);
    const auto exact = metric::LinearRangeSearch(dataset, query, radius);
    auto answer = client.RangeSearch(query, radius);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    ASSERT_EQ(answer->size(), exact.size());
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ((*answer)[i].id, exact[i].id);
    }
  }

  // Batched queries, stats, batched deletes, and compaction all travel
  // through the same persistent connections.
  std::vector<VectorObject> batch(dataset.objects().begin(),
                                  dataset.objects().begin() + 6);
  auto batch_answers = client.RangeSearchBatch(batch, 2.0);
  ASSERT_TRUE(batch_answers.ok());
  ASSERT_EQ(batch_answers->size(), batch.size());

  auto stats = client.GetServerStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->object_count, dataset.size());

  std::vector<VectorObject> doomed(dataset.objects().begin(),
                                   dataset.objects().begin() + 50);
  ASSERT_TRUE(client.DeleteBatch(doomed, 50).ok());
  EXPECT_EQ((*facade)->TotalObjects(), dataset.size() - doomed.size());

  auto report = client.Compact(/*force=*/true);
  ASSERT_TRUE(report.ok());

  facade->reset();  // disconnects before the shard servers stop
  for (auto& server : shard_servers) server->Stop();
}

TEST(ShardedServerTest, RemoteShardsOverSecureChannels) {
  // The remote deployment with ChannelPolicy::kSecure end to end: every
  // facade->shard connection runs the PSK handshake and speaks AEAD
  // records, and the facade behaves exactly like the plaintext one.
  const size_t kShards = 2;
  mindex::MIndexOptions index_options;
  index_options.num_pivots = 8;
  index_options.bucket_capacity = 40;
  index_options.max_level = 4;

  net::SecureChannelOptions channel_options;
  channel_options.psk = Bytes(32, 0x21);
  channel_options.rekey_after_records = 16;  // cross epochs mid-test

  std::vector<std::unique_ptr<EncryptedMIndexServer>> shard_handlers;
  std::vector<std::unique_ptr<net::TcpServer>> shard_servers;
  std::vector<ShardEndpoint> endpoints;
  for (size_t i = 0; i < kShards; ++i) {
    auto handler = EncryptedMIndexServer::Create(index_options);
    ASSERT_TRUE(handler.ok());
    shard_handlers.push_back(std::move(*handler));
    net::TcpServerOptions server_options;
    server_options.channel_policy = net::ChannelPolicy::kSecure;
    server_options.secure_channel = channel_options;
    shard_servers.push_back(std::make_unique<net::TcpServer>(
        shard_handlers.back().get(), server_options));
    ASSERT_TRUE(shard_servers.back()->Start(0).ok());
    endpoints.push_back(ShardEndpoint{"127.0.0.1",
                                      shard_servers.back()->port()});
  }

  // A facade with the wrong PSK must fail to connect at all.
  net::SecureChannelOptions wrong = channel_options;
  wrong.psk = Bytes(32, 0x22);
  EXPECT_FALSE(ShardedServer::Connect(endpoints, index_options.num_pivots,
                                      net::ChannelPolicy::kSecure, wrong)
                   .ok());

  auto facade = ShardedServer::Connect(endpoints, index_options.num_pivots,
                                       net::ChannelPolicy::kSecure,
                                       channel_options);
  ASSERT_TRUE(facade.ok()) << facade.status().ToString();

  data::MixtureOptions mixture;
  mixture.num_objects = 220;
  mixture.dimension = 6;
  mixture.num_clusters = 4;
  mixture.seed = 611;
  metric::Dataset dataset("secure-remote", data::MakeGaussianMixture(mixture),
                          std::make_shared<metric::L2Distance>());
  auto pivots = mindex::PivotSet::SelectRandom(dataset.objects(), 8, 612);
  ASSERT_TRUE(pivots.ok());
  auto key = SecretKey::Create(std::move(pivots).value(), Bytes(16, 0x53));
  ASSERT_TRUE(key.ok());

  net::LoopbackTransport transport(facade->get());
  EncryptionClient client(*key, dataset.distance(), &transport);
  ASSERT_TRUE(
      client.InsertBulk(dataset.objects(), InsertStrategy::kPrecise, 60)
          .ok());
  EXPECT_EQ((*facade)->TotalObjects(), dataset.size());

  Rng rng(613);
  for (int q = 0; q < 5; ++q) {
    const VectorObject& query =
        dataset.objects()[rng.NextBounded(dataset.size())];
    const double radius = rng.NextUniform(1.0, 3.0);
    const auto exact = metric::LinearRangeSearch(dataset, query, radius);
    auto answer = client.RangeSearch(query, radius);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    ASSERT_EQ(answer->size(), exact.size());
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ((*answer)[i].id, exact[i].id);
    }
  }
  auto stats = client.GetServerStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->object_count, dataset.size());

  facade->reset();
  for (auto& server : shard_servers) server->Stop();
}

/// Echoes after a short sleep, so a Stop() can race in-flight and
/// queued tickets deterministically.
class SlowEchoHandler : public net::RequestHandler {
 public:
  Result<Bytes> Handle(const Bytes& request) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    return request;
  }
};

TEST(LocalShardChannelTest, RejectsSubmitAfterStop) {
  // Regression: a post-stop Submit used to enqueue a ticket no worker
  // would ever run, hanging the racing Collect forever.
  SlowEchoHandler handler;
  LocalShardChannel channel(&handler, /*num_workers=*/1);
  auto before = channel.Submit(Bytes{1, 2});
  ASSERT_TRUE(before.ok());
  channel.Stop();
  auto after = channel.Submit(Bytes{3, 4});
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kFailedPrecondition);
  // The pre-stop ticket resolves (handled or failed), never hangs.
  auto response = channel.Collect(*before);
  if (!response.ok()) {
    EXPECT_EQ(response.status().code(), StatusCode::kFailedPrecondition);
  }
}

TEST(LocalShardChannelTest, StopFailsQueuedTicketsInsteadOfStranding) {
  // One worker, many queued tickets: Stop() must resolve every ticket —
  // the in-flight one completes, queued ones fail — so every collector
  // returns.
  SlowEchoHandler handler;
  LocalShardChannel channel(&handler, /*num_workers=*/1);
  std::vector<uint64_t> tickets;
  for (int i = 0; i < 8; ++i) {
    auto ticket = channel.Submit(Bytes(16, static_cast<uint8_t>(i)));
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(*ticket);
  }
  channel.Stop();
  int completed = 0;
  int failed = 0;
  for (uint64_t ticket : tickets) {
    auto response = channel.Collect(ticket);
    if (response.ok()) {
      ++completed;
    } else {
      EXPECT_EQ(response.status().code(), StatusCode::kFailedPrecondition);
      ++failed;
    }
  }
  EXPECT_EQ(completed + failed, 8);
  EXPECT_GT(failed, 0) << "with a 10ms handler and one worker, most of the "
                          "queue must still have been pending at Stop()";
}

TEST(ShardedServerTest, ConnectPartialFailureNamesTheEndpoint) {
  // One real shard plus one dead endpoint: Connect must fail, name the
  // dead endpoint as host:port, and tear the established connection
  // down cleanly (the live server keeps serving afterwards).
  mindex::MIndexOptions index_options;
  index_options.num_pivots = 8;
  auto handler = EncryptedMIndexServer::Create(index_options);
  ASSERT_TRUE(handler.ok());
  net::TcpServer server(handler->get());
  ASSERT_TRUE(server.Start(0).ok());

  // Find a port with nothing listening: bind one, note it, close it.
  uint16_t dead_port;
  {
    net::TcpServer probe(handler->get());
    ASSERT_TRUE(probe.Start(0).ok());
    dead_port = probe.port();
    probe.Stop();
  }

  std::vector<ShardEndpoint> endpoints = {
      ShardEndpoint{"127.0.0.1", server.port()},
      ShardEndpoint{"127.0.0.1", dead_port}};
  auto facade = ShardedServer::Connect(endpoints, index_options.num_pivots);
  ASSERT_FALSE(facade.ok());
  const std::string expected =
      "127.0.0.1:" + std::to_string(dead_port);
  EXPECT_NE(facade.status().message().find(expected), std::string::npos)
      << "Status must name the failing endpoint, got: "
      << facade.status().ToString();

  // The surviving server was shut down orderly and still accepts work.
  auto transport = net::TcpTransport::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(transport.ok());
  EXPECT_TRUE((*transport)->Call(EncodePingRequest()).ok());
  server.Stop();
}

TEST(ShardedServerTest, ReplicaSetsStayIdenticalAndReportTopology) {
  // 2 shards x 2 replicas: writes fan out to both replicas of a shard,
  // so the replica handlers must hold byte-identical indexes, reads
  // keep matching the oracle, and the topology snapshot reports every
  // replica up.
  const size_t kShards = 2, kReplicas = 2;
  mindex::MIndexOptions index_options;
  index_options.num_pivots = 8;
  index_options.bucket_capacity = 40;
  index_options.max_level = 4;

  std::vector<std::unique_ptr<EncryptedMIndexServer>> handlers;
  std::vector<std::unique_ptr<net::TcpServer>> servers;
  std::vector<std::vector<ShardEndpoint>> replica_sets(kShards);
  for (size_t s = 0; s < kShards; ++s) {
    for (size_t r = 0; r < kReplicas; ++r) {
      auto handler = EncryptedMIndexServer::Create(index_options);
      ASSERT_TRUE(handler.ok());
      handlers.push_back(std::move(*handler));
      servers.push_back(
          std::make_unique<net::TcpServer>(handlers.back().get()));
      ASSERT_TRUE(servers.back()->Start(0).ok());
      replica_sets[s].push_back(
          ShardEndpoint{"127.0.0.1", servers.back()->port()});
    }
  }

  auto facade =
      ShardedServer::Connect(replica_sets, index_options.num_pivots);
  ASSERT_TRUE(facade.ok()) << facade.status().ToString();
  EXPECT_EQ((*facade)->num_shards(), kShards);

  data::MixtureOptions mixture;
  mixture.num_objects = 300;
  mixture.dimension = 6;
  mixture.num_clusters = 4;
  mixture.seed = 621;
  metric::Dataset dataset("replicas", data::MakeGaussianMixture(mixture),
                          std::make_shared<metric::L2Distance>());
  auto pivots = mindex::PivotSet::SelectRandom(dataset.objects(), 8, 622);
  ASSERT_TRUE(pivots.ok());
  auto key = SecretKey::Create(std::move(pivots).value(), Bytes(16, 0x54));
  ASSERT_TRUE(key.ok());

  net::LoopbackTransport transport(facade->get());
  EncryptionClient client(*key, dataset.distance(), &transport);
  ASSERT_TRUE(
      client.InsertBulk(dataset.objects(), InsertStrategy::kPrecise, 60)
          .ok());
  EXPECT_EQ((*facade)->TotalObjects(), dataset.size());

  // Delete a slice through the facade, then verify each shard's two
  // replica handlers hold identical object counts (every write reached
  // both).
  std::vector<VectorObject> doomed(dataset.objects().begin(),
                                   dataset.objects().begin() + 40);
  ASSERT_TRUE(client.DeleteBatch(doomed, 40).ok());
  for (size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(handlers[s * kReplicas]->index().size(),
              handlers[s * kReplicas + 1]->index().size())
        << "replicas of shard " << s << " diverged";
  }

  // Reads still match the oracle with replica routing in the path.
  Rng rng(623);
  metric::Dataset live("live",
                       std::vector<VectorObject>(
                           dataset.objects().begin() + 40,
                           dataset.objects().end()),
                       dataset.distance());
  for (int q = 0; q < 5; ++q) {
    const VectorObject& query =
        live.objects()[rng.NextBounded(live.size())];
    const double radius = rng.NextUniform(1.0, 3.0);
    const auto exact = metric::LinearRangeSearch(live, query, radius);
    auto answer = client.RangeSearch(query, radius);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    ASSERT_EQ(answer->size(), exact.size());
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ((*answer)[i].id, exact[i].id);
    }
  }

  // Topology introspection: every replica up, and the aggregated stats
  // carry the health fields over the wire.
  auto topology = (*facade)->TopologySnapshot();
  ASSERT_EQ(topology.size(), kShards);
  for (const auto& shard : topology) {
    ASSERT_EQ(shard.replicas.size(), kReplicas);
    EXPECT_EQ(shard.health(), ShardHealth::kUp);
  }
  auto stats = client.GetServerStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->shards_total, kShards);
  EXPECT_EQ(stats->shards_up, kShards);
  EXPECT_EQ(stats->shards_down, 0u);

  facade->reset();
  for (auto& server : servers) server->Stop();
}

}  // namespace
}  // namespace secure
}  // namespace simcloud
