// Sequence metric + generic-client tests: Levenshtein known answers and
// metric postulates (property-swept), the banded bounded variant against
// the full DP, and the end-to-end generalization claim — encrypted gene
// sequences under edit distance served by the SAME untrusted server
// binary that serves vectors.

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "metric/sequence.h"
#include "secure/generic_client.h"
#include "secure/server.h"

namespace simcloud {
namespace metric {
namespace {

// ----------------------------------------------------------- Levenshtein

TEST(LevenshteinTest, KnownAnswers) {
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(LevenshteinDistance("intention", "execution"), 5u);
  EXPECT_EQ(LevenshteinDistance("ACGT", "AGT"), 1u);
  EXPECT_EQ(LevenshteinDistance("ACGTACGT", "TGCATGCA"), 6u);
}

std::string RandomDna(Rng* rng, size_t min_len, size_t max_len) {
  static const char kBases[] = {'A', 'C', 'G', 'T'};
  const size_t len = min_len + rng->NextBounded(max_len - min_len + 1);
  std::string s(len, 'A');
  for (auto& c : s) c = kBases[rng->NextBounded(4)];
  return s;
}

class LevenshteinPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LevenshteinPropertyTest, MetricPostulatesHold) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    const std::string x = RandomDna(&rng, 0, 30);
    const std::string y = RandomDna(&rng, 0, 30);
    const std::string z = RandomDna(&rng, 0, 30);
    const size_t dxy = LevenshteinDistance(x, y);
    const size_t dyx = LevenshteinDistance(y, x);
    const size_t dxz = LevenshteinDistance(x, z);
    const size_t dzy = LevenshteinDistance(z, y);
    // Identity.
    EXPECT_EQ(LevenshteinDistance(x, x), 0u);
    EXPECT_EQ(dxy == 0, x == y);
    // Symmetry.
    EXPECT_EQ(dxy, dyx);
    // Triangle inequality.
    EXPECT_LE(dxy, dxz + dzy);
    // Length-difference lower bound, max-length upper bound.
    EXPECT_GE(dxy, x.size() > y.size() ? x.size() - y.size()
                                       : y.size() - x.size());
    EXPECT_LE(dxy, std::max(x.size(), y.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LevenshteinPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(LevenshteinTest, BoundedMatchesFullWithinBound) {
  Rng rng(17);
  for (int iter = 0; iter < 200; ++iter) {
    const std::string a = RandomDna(&rng, 0, 40);
    const std::string b = RandomDna(&rng, 0, 40);
    const size_t exact = LevenshteinDistance(a, b);
    for (size_t bound : {size_t{0}, size_t{1}, size_t{3}, size_t{10},
                         size_t{40}}) {
      const size_t bounded = BoundedLevenshteinDistance(a, b, bound);
      if (exact <= bound) {
        EXPECT_EQ(bounded, exact) << a << " / " << b << " bound " << bound;
      } else {
        EXPECT_GT(bounded, bound) << a << " / " << b << " bound " << bound;
      }
    }
  }
}

TEST(SequenceObjectTest, SerializeRoundTrip) {
  SequenceObject object(42, "ACGTACGTNNN");
  BinaryWriter writer;
  object.Serialize(&writer);
  BinaryReader reader(writer.buffer());
  auto back = SequenceObject::Deserialize(&reader);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, object);
}

// ----------------------------------- generic client over the same server

std::vector<SequenceObject> MakeGeneFamily(size_t count, uint64_t seed) {
  // A few ancestral sequences; descendants are small mutations — the
  // clustered structure a metric index exploits.
  Rng rng(seed);
  std::vector<std::string> ancestors;
  for (int a = 0; a < 5; ++a) ancestors.push_back(RandomDna(&rng, 60, 80));

  std::vector<SequenceObject> family;
  family.reserve(count);
  static const char kBases[] = {'A', 'C', 'G', 'T'};
  for (size_t i = 0; i < count; ++i) {
    std::string s = ancestors[rng.NextBounded(ancestors.size())];
    const size_t mutations = rng.NextBounded(6);
    for (size_t m = 0; m < mutations && !s.empty(); ++m) {
      const size_t pos = rng.NextBounded(s.size());
      switch (rng.NextBounded(3)) {
        case 0: s[pos] = kBases[rng.NextBounded(4)]; break;      // subst
        case 1: s.erase(pos, 1); break;                          // delete
        default: s.insert(pos, 1, kBases[rng.NextBounded(4)]);   // insert
      }
    }
    family.emplace_back(i, std::move(s));
  }
  return family;
}

using GeneClient =
    secure::GenericEncryptionClient<SequenceObject, EditDistance>;

struct GeneWorld {
  std::vector<SequenceObject> genes;
  std::unique_ptr<secure::EncryptedMIndexServer> server;
  std::unique_ptr<net::LoopbackTransport> transport;
  std::unique_ptr<GeneClient> client;
};

GeneWorld MakeGeneWorld(bool precise, uint64_t seed = 7) {
  GeneWorld world;
  world.genes = MakeGeneFamily(400, seed);

  Rng rng(seed + 1);
  std::vector<SequenceObject> pivots;
  for (size_t i = 0; i < 8; ++i) {
    pivots.push_back(world.genes[rng.NextBounded(world.genes.size())]);
  }

  mindex::MIndexOptions options;
  options.num_pivots = 8;
  options.bucket_capacity = 40;
  options.max_level = 3;
  auto server = secure::EncryptedMIndexServer::Create(options);
  EXPECT_TRUE(server.ok());
  world.server = std::move(server).value();
  world.transport =
      std::make_unique<net::LoopbackTransport>(world.server.get());

  auto cipher = crypto::Cipher::Create(Bytes(16, 0x33),
                                       crypto::CipherMode::kCbc);
  EXPECT_TRUE(cipher.ok());
  world.client = std::make_unique<GeneClient>(
      std::move(pivots), std::move(cipher).value(), EditDistance{},
      world.transport.get());
  EXPECT_TRUE(world.client->InsertBulk(world.genes, precise, 100).ok());
  return world;
}

TEST(GenericClientTest, EncryptedSequenceRangeSearchEqualsLinearScan) {
  GeneWorld world = MakeGeneWorld(/*precise=*/true);
  EditDistance distance;
  Rng rng(11);
  for (int iter = 0; iter < 5; ++iter) {
    const SequenceObject& query =
        world.genes[rng.NextBounded(world.genes.size())];
    const double radius = 4.0;

    std::vector<metric::Neighbor> exact;
    for (const auto& gene : world.genes) {
      const double d = distance(query, gene);
      if (d <= radius) exact.push_back({gene.id(), d});
    }
    std::sort(exact.begin(), exact.end());

    auto answer = world.client->RangeSearch(query, radius);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    ASSERT_EQ(answer->size(), exact.size()) << "iter " << iter;
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ((*answer)[i].id, exact[i].id);
      EXPECT_DOUBLE_EQ((*answer)[i].distance, exact[i].distance);
    }
  }
}

TEST(GenericClientTest, ApproxKnnFindsMutatedRelatives) {
  GeneWorld world = MakeGeneWorld(/*precise=*/false);
  const SequenceObject& query = world.genes[0];
  auto answer = world.client->ApproxKnn(query, 10, 120);
  ASSERT_TRUE(answer.ok());
  ASSERT_EQ(answer->size(), 10u);
  // Rank 0 is the query itself (distance 0); relatives are a handful of
  // edits away — far below the distance to another ancestor family.
  EXPECT_EQ((*answer)[0].id, query.id());
  EXPECT_DOUBLE_EQ((*answer)[0].distance, 0.0);
  EXPECT_LT((*answer)[9].distance, 30.0);
}

TEST(GenericClientTest, ServerSeesOnlyCiphertextAndPermutations) {
  GeneWorld world = MakeGeneWorld(/*precise=*/false);
  // White-box check on the server state: no payload byte sequence equals
  // any plaintext gene sequence.
  Status walk = world.server->index().ForEachEntry(
      [&](const mindex::Entry& entry, const Bytes& payload) -> Status {
        EXPECT_TRUE(entry.pivot_distances.empty());
        EXPECT_FALSE(entry.permutation.empty());
        const std::string payload_str(payload.begin(), payload.end());
        for (const auto& gene : world.genes) {
          EXPECT_EQ(payload_str.find(gene.sequence()), std::string::npos)
              << "plaintext leaked into stored payload";
        }
        return Status::OK();
      });
  EXPECT_TRUE(walk.ok());
}

TEST(GenericClientTest, ValidatesArguments) {
  GeneWorld world = MakeGeneWorld(/*precise=*/true);
  const SequenceObject& query = world.genes[0];
  EXPECT_FALSE(world.client->RangeSearch(query, -1.0).ok());
  EXPECT_FALSE(world.client->ApproxKnn(query, 0, 10).ok());
  EXPECT_FALSE(world.client->ApproxKnn(query, 20, 10).ok());
  EXPECT_FALSE(world.client->InsertBulk(world.genes, true, 0).ok());
}

}  // namespace
}  // namespace metric
}  // namespace simcloud
