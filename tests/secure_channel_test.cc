// Secure-channel subsystem tests: HKDF vectors, the PSK mutual
// handshake (wrong keys, tampered tags, replayed transcripts), the AEAD
// record layer (tamper/replay/reorder/truncation, deterministic
// rekeying), live TCP deployments in secure mode, downgrade attacks in
// both directions, and a sniffing relay that asserts NO protocol
// plaintext ever crosses the wire in secure mode (and that plaintext
// mode is still byte-transparent).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/serialize.h"
#include "crypto/hkdf.h"
#include "net/secure_channel.h"
#include "net/tcp.h"
#include "secure/client.h"
#include "secure/secret_key.h"
#include "secure/server.h"
#include "secure/session.h"
#include "tests/net_test_util.h"

namespace simcloud {
namespace net {
namespace {

Bytes FromHexOrDie(const std::string& hex) {
  auto bytes = FromHex(hex);
  EXPECT_TRUE(bytes.ok());
  return *bytes;
}

// ---------------------------------------------------------------------------
// HKDF-SHA256 (RFC 5869 test vectors).
// ---------------------------------------------------------------------------

TEST(HkdfTest, Rfc5869TestCase1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = FromHexOrDie("000102030405060708090a0b0c");
  const Bytes info = FromHexOrDie("f0f1f2f3f4f5f6f7f8f9");

  const Bytes prk = crypto::HkdfExtract(salt, ikm);
  EXPECT_EQ(ToHex(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");

  auto okm = crypto::HkdfExpand(prk, info, 42);
  ASSERT_TRUE(okm.ok());
  EXPECT_EQ(ToHex(*okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(HkdfTest, Rfc5869TestCase3EmptySaltAndInfo) {
  const Bytes ikm(22, 0x0b);
  const Bytes prk = crypto::HkdfExtract({}, ikm);
  EXPECT_EQ(ToHex(prk),
            "19ef24a32c717b167f33a91d6f648bdf96596776afdb6377ac434c1c293ccb04");
  auto okm = crypto::HkdfExpand(prk, {}, 42);
  ASSERT_TRUE(okm.ok());
  EXPECT_EQ(ToHex(*okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(HkdfTest, RejectsDegenerateParameters) {
  EXPECT_FALSE(crypto::HkdfExpand(Bytes(8, 1), {}, 32).ok());      // short PRK
  EXPECT_FALSE(crypto::HkdfExpand(Bytes(32, 1), {}, 0).ok());      // empty out
  EXPECT_FALSE(crypto::HkdfExpand(Bytes(32, 1), {}, 9000).ok());   // > 255*32
}

// ---------------------------------------------------------------------------
// Handshake state machines (in memory, no sockets).
// ---------------------------------------------------------------------------

SecureChannelOptions TestOptions(uint8_t fill = 0x42) {
  SecureChannelOptions options;
  options.psk = Bytes(32, fill);
  return options;
}

struct ChannelPair {
  std::unique_ptr<SecureChannel> client;
  std::unique_ptr<SecureChannel> server;
};

/// Runs the full handshake in memory; both options default to the same
/// PSK.
Result<ChannelPair> Handshake(const SecureChannelOptions& client_options,
                              const SecureChannelOptions& server_options) {
  SIMCLOUD_ASSIGN_OR_RETURN(ClientHandshake client,
                            ClientHandshake::Start(client_options));
  ServerHandshake server(server_options);
  Bytes server_hello;
  SIMCLOUD_ASSIGN_OR_RETURN(
      size_t consumed,
      server.Consume(client.hello().data(), client.hello().size(),
                     &server_hello));
  if (consumed != kClientHelloSize || server_hello.size() != kServerHelloSize) {
    return Status::Internal("unexpected handshake sizes");
  }
  ChannelPair pair;
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes finish,
                            client.Finish(server_hello, &pair.client));
  Bytes unused;
  SIMCLOUD_ASSIGN_OR_RETURN(
      consumed, server.Consume(finish.data(), finish.size(), &unused));
  if (consumed != kClientFinishSize || !server.done()) {
    return Status::Internal("server handshake did not finish");
  }
  pair.server = server.TakeChannel();
  return pair;
}

TEST(SecureHandshakeTest, CompletesWithSharedPsk) {
  auto pair = Handshake(TestOptions(), TestOptions());
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();

  // Both directions carry data.
  const Bytes ping = {1, 2, 3, 4};
  auto record = pair->client->Seal(ping);
  ASSERT_TRUE(record.ok());
  Bytes plain;
  size_t consumed = 0;
  ASSERT_TRUE(pair->server
                  ->Ingest(record->data(), record->size(), &consumed, &plain)
                  .ok());
  EXPECT_EQ(consumed, record->size());
  EXPECT_EQ(plain, ping);

  const Bytes pong = {9, 8, 7};
  record = pair->server->Seal(pong);
  ASSERT_TRUE(record.ok());
  plain.clear();
  ASSERT_TRUE(pair->client
                  ->Ingest(record->data(), record->size(), &consumed, &plain)
                  .ok());
  EXPECT_EQ(plain, pong);
}

TEST(SecureHandshakeTest, WrongPskFailsBothWays) {
  // Server holds a different PSK: the client must reject the server
  // hello (the server cannot forge the transcript tag).
  auto client = ClientHandshake::Start(TestOptions(0x42));
  ASSERT_TRUE(client.ok());
  ServerHandshake server(TestOptions(0x43));
  Bytes server_hello;
  auto consumed = server.Consume(client->hello().data(),
                                 client->hello().size(), &server_hello);
  ASSERT_TRUE(consumed.ok());
  std::unique_ptr<SecureChannel> channel;
  auto finish = client->Finish(server_hello, &channel);
  ASSERT_FALSE(finish.ok());
  EXPECT_EQ(finish.status().code(), StatusCode::kPermissionDenied);

  // Client holds a different PSK: the server must reject its finish.
  auto client2 = ClientHandshake::Start(TestOptions(0x44));
  ASSERT_TRUE(client2.ok());
  ServerHandshake server2(TestOptions(0x42));
  Bytes hello2;
  ASSERT_TRUE(server2
                  .Consume(client2->hello().data(), client2->hello().size(),
                           &hello2)
                  .ok());
  std::unique_ptr<SecureChannel> channel2;
  auto finish2 = client2->Finish(hello2, &channel2);
  ASSERT_FALSE(finish2.ok());  // client already notices the bad server tag
}

TEST(SecureHandshakeTest, TamperedServerTagIsRejected) {
  auto client = ClientHandshake::Start(TestOptions());
  ASSERT_TRUE(client.ok());
  ServerHandshake server(TestOptions());
  Bytes server_hello;
  ASSERT_TRUE(server
                  .Consume(client->hello().data(), client->hello().size(),
                           &server_hello)
                  .ok());
  for (const size_t index :
       {size_t{5}, server_hello.size() - 1, server_hello.size() - 32}) {
    Bytes tampered = server_hello;
    tampered[index] ^= 0x01;
    std::unique_ptr<SecureChannel> channel;
    auto finish = client->Finish(tampered, &channel);
    EXPECT_FALSE(finish.ok()) << "tampered byte " << index << " accepted";
    EXPECT_EQ(channel, nullptr);
  }
}

TEST(SecureHandshakeTest, TamperedClientFinishIsRejected) {
  auto client = ClientHandshake::Start(TestOptions());
  ASSERT_TRUE(client.ok());
  ServerHandshake server(TestOptions());
  Bytes server_hello;
  ASSERT_TRUE(server
                  .Consume(client->hello().data(), client->hello().size(),
                           &server_hello)
                  .ok());
  std::unique_ptr<SecureChannel> channel;
  auto finish = client->Finish(server_hello, &channel);
  ASSERT_TRUE(finish.ok());
  Bytes tampered = *finish;
  tampered[7] ^= 0x80;
  Bytes unused;
  auto consumed = server.Consume(tampered.data(), tampered.size(), &unused);
  ASSERT_FALSE(consumed.ok());
  EXPECT_EQ(consumed.status().code(), StatusCode::kPermissionDenied);
}

TEST(SecureHandshakeTest, ReplayedTranscriptFailsAgainstFreshServer) {
  // Record one complete legitimate handshake...
  auto client = ClientHandshake::Start(TestOptions());
  ASSERT_TRUE(client.ok());
  const Bytes hello = client->hello();
  ServerHandshake server(TestOptions());
  Bytes server_hello;
  ASSERT_TRUE(server.Consume(hello.data(), hello.size(), &server_hello).ok());
  std::unique_ptr<SecureChannel> channel;
  auto finish = client->Finish(server_hello, &channel);
  ASSERT_TRUE(finish.ok());

  // ...and replay hello + finish verbatim at a fresh server: its fresh
  // nonce makes the captured finish tag stale. Nonce reuse across
  // sessions is thereby useless to an attacker.
  ServerHandshake replay_target(TestOptions());
  Bytes unused;
  ASSERT_TRUE(
      replay_target.Consume(hello.data(), hello.size(), &unused).ok());
  auto replayed =
      replay_target.Consume(finish->data(), finish->size(), &unused);
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kPermissionDenied);
}

TEST(SecureHandshakeTest, NonHandshakeBytesAreHardRejected) {
  for (const Bytes& garbage :
       {Bytes{0x05, 0x00, 0x00, 0x00, 4},        // legacy plaintext frame
        Bytes{0x05, 0x00, 0x00, 0x80, 1, 0, 0},  // pipelined plaintext frame
        Bytes{'G', 'E', 'T', ' ', '/'},          // something else entirely
        Bytes{0xFF}}) {                          // even one wrong byte
    ServerHandshake server(TestOptions());
    Bytes unused;
    auto consumed = server.Consume(garbage.data(), garbage.size(), &unused);
    EXPECT_FALSE(consumed.ok());
  }
  // A torn hello prefix that matches the magic simply waits.
  ServerHandshake server(TestOptions());
  Bytes unused;
  auto consumed =
      server.Consume(kSecureChannelMagic, 3, &unused);
  ASSERT_TRUE(consumed.ok());
  EXPECT_EQ(*consumed, 0u);
  EXPECT_FALSE(server.done());
}

TEST(SecureHandshakeTest, SessionsDeriveDistinctKeys) {
  // Two handshakes under the same PSK must not produce interchangeable
  // channels (fresh nonces -> fresh keys): a record sealed on session A
  // must not open on session B.
  auto a = Handshake(TestOptions(), TestOptions());
  auto b = Handshake(TestOptions(), TestOptions());
  ASSERT_TRUE(a.ok() && b.ok());
  auto record = a->client->Seal(Bytes{1, 2, 3});
  ASSERT_TRUE(record.ok());
  Bytes plain;
  size_t consumed = 0;
  EXPECT_FALSE(
      b->server->Ingest(record->data(), record->size(), &consumed, &plain)
          .ok());
}

// ---------------------------------------------------------------------------
// Record layer.
// ---------------------------------------------------------------------------

class SecureRecordTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pair = Handshake(options_, options_);
    ASSERT_TRUE(pair.ok()) << pair.status().ToString();
    client_ = std::move(pair->client);
    server_ = std::move(pair->server);
  }

  SecureChannelOptions options_ = TestOptions();
  std::unique_ptr<SecureChannel> client_;
  std::unique_ptr<SecureChannel> server_;
};

TEST_F(SecureRecordTest, StreamOfRecordsRoundTripsAcrossPartialReads) {
  // Many records delivered in dribs and drabs reassemble into the exact
  // plaintext stream.
  Bytes wire;
  Bytes expected;
  for (int i = 0; i < 20; ++i) {
    Bytes frame(1 + (i * 37) % 300, static_cast<uint8_t>(i));
    expected.insert(expected.end(), frame.begin(), frame.end());
    auto record = client_->Seal(frame);
    ASSERT_TRUE(record.ok());
    wire.insert(wire.end(), record->begin(), record->end());
  }
  Bytes plain;
  Bytes buffer;
  size_t fed = 0;
  while (fed < wire.size()) {
    const size_t chunk = std::min<size_t>(13, wire.size() - fed);
    buffer.insert(buffer.end(), wire.begin() + fed, wire.begin() + fed + chunk);
    fed += chunk;
    size_t consumed = 0;
    ASSERT_TRUE(
        server_->Ingest(buffer.data(), buffer.size(), &consumed, &plain).ok());
    buffer.erase(buffer.begin(), buffer.begin() + consumed);
  }
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(plain, expected);
  EXPECT_EQ(server_->records_opened(), 20u);
}

TEST_F(SecureRecordTest, TamperedRecordKillsTheChannel) {
  auto record = client_->Seal(Bytes(64, 0xAA));
  ASSERT_TRUE(record.ok());
  Bytes tampered = *record;
  tampered[tampered.size() / 2] ^= 0x10;
  Bytes plain;
  size_t consumed = 0;
  EXPECT_FALSE(
      server_->Ingest(tampered.data(), tampered.size(), &consumed, &plain)
          .ok());
  EXPECT_TRUE(plain.empty());
  // The failure is sticky: even the untampered record is refused now.
  EXPECT_FALSE(
      server_->Ingest(record->data(), record->size(), &consumed, &plain)
          .ok());
}

TEST_F(SecureRecordTest, ReplayedRecordIsRejected) {
  auto record = client_->Seal(Bytes{1, 2, 3});
  ASSERT_TRUE(record.ok());
  Bytes plain;
  size_t consumed = 0;
  ASSERT_TRUE(
      server_->Ingest(record->data(), record->size(), &consumed, &plain).ok());
  // The same bytes again: the receive sequence has moved on, the tag no
  // longer verifies.
  EXPECT_FALSE(
      server_->Ingest(record->data(), record->size(), &consumed, &plain)
          .ok());
}

TEST_F(SecureRecordTest, ReorderedRecordsAreRejected) {
  auto first = client_->Seal(Bytes{1});
  auto second = client_->Seal(Bytes{2});
  ASSERT_TRUE(first.ok() && second.ok());
  Bytes plain;
  size_t consumed = 0;
  EXPECT_FALSE(
      server_->Ingest(second->data(), second->size(), &consumed, &plain)
          .ok());
}

TEST_F(SecureRecordTest, TruncatedStreamYieldsNothing) {
  auto record = client_->Seal(Bytes(100, 7));
  ASSERT_TRUE(record.ok());
  Bytes plain;
  size_t consumed = 0;
  // All but the last byte: no plaintext may be released.
  ASSERT_TRUE(
      server_->Ingest(record->data(), record->size() - 1, &consumed, &plain)
          .ok());
  EXPECT_EQ(consumed, 0u);
  EXPECT_TRUE(plain.empty());
}

TEST_F(SecureRecordTest, OversizedRecordLengthIsRejected) {
  Bytes bogus = {0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0};
  Bytes plain;
  size_t consumed = 0;
  EXPECT_FALSE(
      server_->Ingest(bogus.data(), bogus.size(), &consumed, &plain).ok());
}

TEST(SecureRekeyTest, EpochsAdvanceDeterministically) {
  SecureChannelOptions options = TestOptions();
  options.rekey_after_records = 4;  // tiny budget: rekey every 4 records
  auto pair = Handshake(options, options);
  ASSERT_TRUE(pair.ok());

  Bytes expected;
  Bytes plain;
  for (int i = 0; i < 11; ++i) {
    Bytes frame(32, static_cast<uint8_t>(i));
    expected.insert(expected.end(), frame.begin(), frame.end());
    auto record = pair->client->Seal(frame);
    ASSERT_TRUE(record.ok());
    size_t consumed = 0;
    ASSERT_TRUE(pair->server
                    ->Ingest(record->data(), record->size(), &consumed,
                             &plain)
                    .ok())
        << "record " << i << " failed across the rekey boundary";
  }
  EXPECT_EQ(plain, expected);
  // 11 records at 4 per epoch: epochs 0,1 exhausted, now in epoch 2.
  EXPECT_EQ(pair->client->send_epoch(), 2u);
  EXPECT_EQ(pair->server->recv_epoch(), 2u);
  // The reverse direction has its own schedule, still at epoch 0.
  EXPECT_EQ(pair->server->send_epoch(), 0u);
}

TEST(SecureRekeyTest, ByteBudgetTriggersRekeyToo) {
  SecureChannelOptions options = TestOptions();
  options.rekey_after_bytes = 1024;
  auto pair = Handshake(options, options);
  ASSERT_TRUE(pair.ok());
  Bytes plain;
  for (int i = 0; i < 5; ++i) {
    auto record = pair->client->Seal(Bytes(512, 3));
    ASSERT_TRUE(record.ok());
    size_t consumed = 0;
    ASSERT_TRUE(pair->server
                    ->Ingest(record->data(), record->size(), &consumed,
                             &plain)
                    .ok());
  }
  EXPECT_GE(pair->client->send_epoch(), 2u);
  EXPECT_EQ(pair->client->send_epoch(), pair->server->recv_epoch());
}

// ---------------------------------------------------------------------------
// Live TCP deployments.
// ---------------------------------------------------------------------------

/// Echoes the request back (thread-safe).
class EchoHandler : public RequestHandler {
 public:
  Result<Bytes> Handle(const Bytes& request) override {
    handled_.fetch_add(1);
    return request;
  }
  int handled() const { return handled_.load(); }

 private:
  std::atomic<int> handled_{0};
};

TcpServerOptions SecureServerOptions(uint8_t fill = 0x42) {
  TcpServerOptions options;
  options.channel_policy = ChannelPolicy::kSecure;
  options.secure_channel = TestOptions(fill);
  return options;
}

TEST(SecureTcpTest, CallAndPipelineOverSecureChannel) {
  EchoHandler handler;
  TcpServer server(&handler, SecureServerOptions());
  ASSERT_TRUE(server.Start(0).ok());

  auto transport = TcpTransport::Connect(
      "127.0.0.1", server.port(), ChannelPolicy::kSecure, TestOptions());
  ASSERT_TRUE(transport.ok()) << transport.status().ToString();

  // Synchronous calls.
  for (int i = 0; i < 5; ++i) {
    Bytes request(200 + i, static_cast<uint8_t>(i));
    auto response = (*transport)->Call(request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(*response, request);
  }
  // The first round trip implies the server finished the handshake
  // (Connect alone races the server's asynchronous ClientFinish
  // processing).
  EXPECT_EQ(server.handshakes_completed(), 1u);
  // Pipelined, collected out of order.
  std::vector<uint64_t> tickets;
  for (int i = 0; i < 16; ++i) {
    auto ticket = (*transport)->Submit(Bytes(64, static_cast<uint8_t>(i)));
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(*ticket);
  }
  for (int i = 15; i >= 0; --i) {
    auto response = (*transport)->Collect(tickets[i]);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(*response, Bytes(64, static_cast<uint8_t>(i)));
  }
  EXPECT_EQ(handler.handled(), 21);
  server.Stop();
}

TEST(SecureTcpTest, LargeMessagesCrossRekeyBoundaries) {
  EchoHandler handler;
  TcpServerOptions server_options = SecureServerOptions();
  server_options.secure_channel.rekey_after_records = 8;
  TcpServer server(&handler, server_options);
  ASSERT_TRUE(server.Start(0).ok());

  SecureChannelOptions client_options = TestOptions();
  client_options.rekey_after_records = 8;
  auto transport = TcpTransport::Connect(
      "127.0.0.1", server.port(), ChannelPolicy::kSecure, client_options);
  ASSERT_TRUE(transport.ok());

  for (int i = 0; i < 24; ++i) {
    Bytes request(1024 * (1 + i % 3), static_cast<uint8_t>(i * 7));
    auto response = (*transport)->Call(request);
    ASSERT_TRUE(response.ok()) << "call " << i << ": "
                               << response.status().ToString();
    EXPECT_EQ(*response, request);
  }
  server.Stop();
}

TEST(SecureTcpTest, WrongClientPskIsRejected) {
  EchoHandler handler;
  TcpServer server(&handler, SecureServerOptions(0x42));
  ASSERT_TRUE(server.Start(0).ok());
  auto transport = TcpTransport::Connect(
      "127.0.0.1", server.port(), ChannelPolicy::kSecure, TestOptions(0x43));
  EXPECT_FALSE(transport.ok());
  EXPECT_EQ(server.handshakes_completed(), 0u);
  server.Stop();
}

TEST(SecureTcpTest, SecureServerRequiresAPsk) {
  EchoHandler handler;
  TcpServerOptions options;
  options.channel_policy = ChannelPolicy::kSecure;  // no PSK configured
  TcpServer server(&handler, options);
  EXPECT_FALSE(server.Start(0).ok());
}

// ---------------------------------------------------------------------------
// Downgrade attacks.
// ---------------------------------------------------------------------------

TEST(DowngradeTest, PlaintextClientAgainstSecureServerIsClosed) {
  EchoHandler handler;
  TcpServer server(&handler, SecureServerOptions());
  ASSERT_TRUE(server.Start(0).ok());

  // A plaintext transport: the server must hard-close, the Call must
  // fail, and no handler must ever run.
  auto plain = TcpTransport::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(plain.ok());  // TCP connects; the violation comes with bytes
  auto response = (*plain)->Call(Bytes{1, 2, 3});
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(handler.handled(), 0);

  // A raw legacy frame (the pre-pipelining wire): same hard close.
  const int fd = RawConnect(server.port());
  const uint8_t legacy[] = {3, 0, 0, 0, 9, 9, 9};
  ASSERT_EQ(::send(fd, legacy, sizeof(legacy), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(legacy)));
  uint8_t sink[64];
  // recv returns 0 on the server's close (possibly after a moment).
  ssize_t n;
  do {
    n = ::recv(fd, sink, sizeof(sink), 0);
  } while (n < 0 && errno == EINTR);
  EXPECT_EQ(n, 0) << "secure server answered a plaintext frame";
  ::close(fd);
  EXPECT_EQ(handler.handled(), 0);

  // Secure clients still work fine afterwards.
  auto good = TcpTransport::Connect("127.0.0.1", server.port(),
                                    ChannelPolicy::kSecure, TestOptions());
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE((*good)->Call(Bytes{5}).ok());
  server.Stop();
}

TEST(DowngradeTest, SecureClientAgainstPlaintextServerFailsCleanly) {
  EchoHandler handler;
  TcpServer server(&handler);  // plaintext policy
  ASSERT_TRUE(server.Start(0).ok());
  auto transport = TcpTransport::Connect(
      "127.0.0.1", server.port(), ChannelPolicy::kSecure, TestOptions());
  ASSERT_FALSE(transport.ok());
  // The magic parses as an oversized plaintext frame, so the server
  // closes and the client reports a handshake failure, not a hang.
  EXPECT_EQ(transport.status().code(), StatusCode::kNetworkError);
  // Plaintext clients are unaffected.
  auto plain = TcpTransport::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE((*plain)->Call(Bytes{1}).ok());
  server.Stop();
}

// ---------------------------------------------------------------------------
// The sniffer: a recording relay between client and server.
// ---------------------------------------------------------------------------

/// Accepts ONE connection, connects to `target_port`, and pumps bytes
/// both ways while recording them. Join() after the client closes.
class SniffRelay {
 public:
  explicit SniffRelay(uint16_t target_port) : target_port_(target_port) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                            &len),
              0);
    port_ = ntohs(addr.sin_port);
    EXPECT_EQ(::listen(listen_fd_, 1), 0);
    acceptor_ = std::thread([this] { Pump(); });
  }

  ~SniffRelay() {
    Join();
    ::close(listen_fd_);
  }

  uint16_t port() const { return port_; }

  void Join() {
    if (acceptor_.joinable()) acceptor_.join();
  }

  const Bytes& client_to_server() const { return c2s_; }
  const Bytes& server_to_client() const { return s2c_; }

 private:
  void Pump() {
    const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    ASSERT_GE(client_fd, 0);
    const int server_fd = net::RawConnect(target_port_);
    std::thread up([&] { Copy(client_fd, server_fd, &c2s_); });
    std::thread down([&] { Copy(server_fd, client_fd, &s2c_); });
    up.join();
    // The upstream copy ends when the client closed; shut the server
    // side down so the downstream copy drains and ends too.
    ::shutdown(server_fd, SHUT_RDWR);
    down.join();
    ::close(client_fd);
    ::close(server_fd);
  }

  static void Copy(int from, int to, Bytes* capture) {
    uint8_t buf[16 * 1024];
    for (;;) {
      const ssize_t n = ::recv(from, buf, sizeof(buf), 0);
      if (n <= 0) {
        ::shutdown(to, SHUT_WR);
        return;
      }
      capture->insert(capture->end(), buf, buf + n);
      size_t done = 0;
      while (done < static_cast<size_t>(n)) {
        const ssize_t w =
            ::send(to, buf + done, static_cast<size_t>(n) - done,
                   MSG_NOSIGNAL);
        if (w <= 0) return;
        done += static_cast<size_t>(w);
      }
    }
  }

  uint16_t target_port_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::thread acceptor_;
  Bytes c2s_;
  Bytes s2c_;
};

bool ContainsSubsequence(const Bytes& haystack, const Bytes& needle) {
  return std::search(haystack.begin(), haystack.end(), needle.begin(),
                     needle.end()) != haystack.end();
}

/// Walks `capture` from `offset` as a sequence of secure records;
/// returns true when it parses exactly to the end.
bool IsPureRecordStream(const Bytes& capture, size_t offset) {
  while (offset < capture.size()) {
    if (capture.size() - offset < 4) return false;
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<uint32_t>(capture[offset + i]) << (8 * i);
    }
    if (len < crypto::AeadCipher::kIvSize + crypto::AeadCipher::kTagSize) {
      return false;
    }
    if (capture.size() - offset - 4 < len) return false;
    offset += 4 + len;
  }
  return true;
}

TEST(SniffTest, SecureWireCarriesOnlyHandshakeAndRecords) {
  EchoHandler handler;
  TcpServer server(&handler, SecureServerOptions());
  ASSERT_TRUE(server.Start(0).ok());

  // A marker no encrypted stream should ever reproduce by accident.
  Bytes marker;
  for (int i = 0; i < 48; ++i) marker.push_back(static_cast<uint8_t>(0xC3));
  for (int i = 0; i < 16; ++i) marker.push_back(static_cast<uint8_t>(i));

  Bytes c2s, s2c;
  {
    SniffRelay relay(server.port());
    auto transport = TcpTransport::Connect(
        "127.0.0.1", relay.port(), ChannelPolicy::kSecure, TestOptions());
    ASSERT_TRUE(transport.ok()) << transport.status().ToString();
    auto response = (*transport)->Call(marker);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(*response, marker);
    auto ticket = (*transport)->Submit(marker);
    ASSERT_TRUE(ticket.ok());
    ASSERT_TRUE((*transport)->Collect(*ticket).ok());
    transport->reset();  // closes the client socket; the relay drains
    relay.Join();
    c2s = relay.client_to_server();
    s2c = relay.server_to_client();
  }

  // The marker crossed the wire 4 times in plaintext terms — and must
  // appear in NEITHER captured direction.
  EXPECT_FALSE(ContainsSubsequence(c2s, marker));
  EXPECT_FALSE(ContainsSubsequence(s2c, marker));

  // Every byte after the TCP accept is handshake or AEAD record:
  // c2s = ClientHello || ClientFinish || records,
  // s2c = ServerHello || records.
  ASSERT_GE(c2s.size(), kClientHelloSize + kClientFinishSize);
  EXPECT_EQ(0, std::memcmp(c2s.data(), kSecureChannelMagic, 4));
  EXPECT_TRUE(
      IsPureRecordStream(c2s, kClientHelloSize + kClientFinishSize));
  ASSERT_GE(s2c.size(), kServerHelloSize);
  EXPECT_EQ(0, std::memcmp(s2c.data(), kSecureChannelMagic, 4));
  EXPECT_TRUE(IsPureRecordStream(s2c, kServerHelloSize));
  server.Stop();
}

TEST(SniffTest, PlaintextModeStaysByteTransparent) {
  // Control experiment: the same traffic in plaintext mode IS visible,
  // proving the sniffer would catch a leak.
  EchoHandler handler;
  TcpServer server(&handler);
  ASSERT_TRUE(server.Start(0).ok());
  Bytes marker(64, 0xC3);
  Bytes c2s, s2c;
  {
    SniffRelay relay(server.port());
    auto transport = TcpTransport::Connect("127.0.0.1", relay.port());
    ASSERT_TRUE(transport.ok());
    auto response = (*transport)->Call(marker);
    ASSERT_TRUE(response.ok());
    transport->reset();
    relay.Join();
    c2s = relay.client_to_server();
    s2c = relay.server_to_client();
  }
  EXPECT_TRUE(ContainsSubsequence(c2s, marker));
  EXPECT_TRUE(ContainsSubsequence(s2c, marker));
  server.Stop();
}

// ---------------------------------------------------------------------------
// The full encrypted-search stack over a secure channel.
// ---------------------------------------------------------------------------

TEST(SecureSessionTest, EncryptionClientWorksOverSecureChannel) {
  // A real EncryptedMIndexServer in secure mode, with the PSK derived
  // from the index secret on both ends (secure/session.h).
  metric::VectorObject pivot1(9001, {0.0f, 0.0f});
  metric::VectorObject pivot2(9002, {10.0f, 10.0f});
  mindex::PivotSet pivots({pivot1, pivot2});
  auto key = secure::SecretKey::Create(pivots, Bytes(16, 0x5E));
  ASSERT_TRUE(key.ok());

  mindex::MIndexOptions index_options;
  index_options.num_pivots = 2;
  auto handler = secure::EncryptedMIndexServer::Create(index_options);
  ASSERT_TRUE(handler.ok());

  TcpServerOptions server_options;
  server_options.channel_policy = ChannelPolicy::kSecure;
  server_options.secure_channel = secure::SecureSessionOptions(*key);
  TcpServer server(handler->get(), server_options);
  ASSERT_TRUE(server.Start(0).ok());

  auto transport = secure::ConnectSecure("127.0.0.1", server.port(), *key);
  ASSERT_TRUE(transport.ok()) << transport.status().ToString();
  auto metric_fn = std::make_shared<metric::L2Distance>();
  secure::EncryptionClient client(*key, metric_fn, transport->get());

  std::vector<metric::VectorObject> objects;
  for (int i = 0; i < 40; ++i) {
    objects.emplace_back(i, std::vector<float>{static_cast<float>(i % 7),
                                               static_cast<float>(i % 5)});
  }
  ASSERT_TRUE(
      client.InsertBulk(objects, secure::InsertStrategy::kPrecise, 10).ok());
  ASSERT_TRUE(client.Ping().ok());

  auto result = client.RangeSearch(objects[3], 0.5);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  bool found_self = false;
  for (const auto& neighbor : *result) {
    if (neighbor.id == objects[3].id()) found_self = true;
  }
  EXPECT_TRUE(found_self);

  auto stats = client.GetServerStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->object_count, objects.size());
  server.Stop();
}

}  // namespace
}  // namespace net
}  // namespace simcloud
